use crate::agenda::AgendaScheduler;
use crate::constraint::{Activation, ConstraintData, ConstraintKind};
use crate::ids::{ConstraintId, VarId};
use crate::justification::{DependencyRecord, Justification};
use crate::par::{self, ParStats, SlotsView};
use crate::plan::{PlanOp, PlanParDetail, PlanSlot, PlanStatus, PropPlan};
use crate::value::Value;
use crate::variable::{Overwrite, PlainKind, VariableData, VariableKind};
use crate::violation::Violation;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A variable's current value and justification (`lastSetBy`), stored in a
/// dense arena parallel to the variable arena. Kept separate from
/// [`VariableData`] because this pair is `Send + Sync` (values use `Arc`,
/// justifications carry no `Rc`), which lets the parallel replay path hand
/// worker threads a raw view of exactly the state they write — and nothing
/// of the `Rc`-laden variable/constraint metadata.
#[derive(Debug, Clone)]
pub(crate) struct ValueSlot {
    pub(crate) value: Value,
    pub(crate) justification: Justification,
}

/// Result of one propagated assignment ([`Network::propagate_set`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetStatus {
    /// The value was assigned and activations were queued.
    Changed,
    /// The variable already held the propagated value — a termination
    /// criterion of §4.2.2.
    Unchanged,
    /// The variable kind kept its current value silently (Fig. 7.4); the
    /// final satisfaction sweep decides whether that is a conflict.
    Ignored,
}

/// Counters accumulated across propagation cycles, used by the benchmark
/// harness to verify the efficiency claims of §5.1 (hierarchical networks
/// propagate shared internals once) and §9.2.3 (complexity ∝ Σ_v
/// #constraints(v)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Completed `set` cycles.
    pub cycles: u64,
    /// Variable assignments performed (external + propagated).
    pub assignments: u64,
    /// Constraint activations dispatched (`propagateVariable:` sends).
    pub activations: u64,
    /// `infer` executions (immediate + scheduled).
    pub inferences: u64,
    /// Agenda enqueue attempts that added a new entry.
    pub schedules: u64,
    /// Entries popped from agendas and run.
    pub scheduled_runs: u64,
    /// Violations raised.
    pub violations: u64,
    /// Propagation plans compiled ([`Network::plan_status`]), including
    /// compilations that concluded the cone is uncompilable.
    pub plan_compiles: u64,
    /// `set` calls served by a cached propagation plan instead of the
    /// agenda engine.
    pub plan_cache_hits: u64,
    /// Cached plan entries discarded because a structural edit bumped the
    /// network's generation.
    pub plan_cache_invalidations: u64,
    /// Domain narrowings that landed: a domain propagator's write that
    /// actually shrank an interval or finite-set value.
    pub domain_tightenings: u64,
    /// Dispatches (agenda or plan replay) skipped because the constraint
    /// was runtime-marked subsumed ([`Network::mark_subsumed`]).
    pub subsumed_pruned: u64,
    /// Domain wipeouts raised (`PropagateOutcome::DomainWipeout` → batch
    /// abort with journal rollback).
    pub wipeouts: u64,
}

/// Saved pre-propagation state of a visited variable, for restoration on
/// violation (the global `VisitedConstraintsAndVariables` dictionary of
/// §4.2.2).
#[derive(Debug, Clone)]
struct SavedVar {
    value: Value,
    justification: Justification,
}

/// Per-cycle propagation state.
#[derive(Debug, Default)]
struct PropState {
    visited_vars: HashMap<VarId, SavedVar>,
    /// Non-Nil value changes per variable this cycle, for the (optionally
    /// relaxed) one-value-change rule.
    change_counts: HashMap<VarId, u32>,
    visited_constraints: Vec<ConstraintId>,
    visited_cset: std::collections::HashSet<ConstraintId>,
    /// Depth-first activation stack for immediate constraints.
    pending: Vec<(ConstraintId, VarId)>,
    /// Propagation steps (activations + scheduled inferences) performed
    /// this cycle, checked against [`Network::set_step_limit`].
    steps: u64,
    /// Violation handlers are suppressed for tentative probes.
    silent: bool,
    /// Compiled straight-line execution: activations are not queued
    /// (`run_compiled`).
    compiled: bool,
    /// Plan-driven execution: the cone is statically single-writer, so
    /// `propagate_set` records visited pre-images in the flat
    /// `visited_list` and skips the revisit/change-count bookkeeping.
    planned: bool,
    /// Visited pre-images for plan-driven cycles. Single-writer plans
    /// guarantee each variable appears at most once, so a flat vector
    /// (pushed in write order, no hashing) replaces `visited_vars`.
    visited_list: Vec<(VarId, SavedVar)>,
    /// Epoch for the planned-cycle mark tables below; bumped once per
    /// planned cycle, so "clearing" them is a counter increment.
    mark_epoch: u32,
    /// Per-variable: epoch of the planned cycle in which the variable
    /// last actually changed. Plan replay skips any step whose trigger
    /// variable is unmarked — the interpreter's value pruning, statically
    /// unrolled.
    var_marks: Vec<u32>,
    /// Per-constraint: epoch of the first live dispatch this planned
    /// cycle, deduplicating `visited_constraints` without hashing.
    cid_marks: Vec<u32>,
    /// Per plan agenda entry: epoch of the first live schedule sighting,
    /// gating the matching drain-phase run.
    entry_marks: Vec<u32>,
}

impl PropState {
    /// Empties the per-cycle collections while keeping their allocated
    /// capacity, so the pooled instance starts the next cycle without
    /// touching the heap (steady-state propagation is allocation-free).
    fn recycle(&mut self) {
        self.visited_vars.clear();
        self.change_counts.clear();
        self.visited_constraints.clear();
        self.visited_cset.clear();
        self.pending.clear();
        self.steps = 0;
        self.silent = false;
        self.compiled = false;
        self.planned = false;
        self.visited_list.clear();
    }
}

/// One undo record in the change journal (newest last; rollback replays in
/// reverse).
#[derive(Debug)]
enum JournalEntry {
    /// Pre-image of a variable's first write since `begin_journal`.
    Value {
        var: VarId,
        value: Value,
        justification: Justification,
    },
    /// A variable was appended to the arena (undo: pop it).
    VarAdded,
    /// A constraint slot was appended and wired (undo: pop and unwire).
    ConstraintAdded,
    /// One constraint's individual enable flag changed.
    EnabledChanged { cid: ConstraintId, was: bool },
    /// The per-cycle value-change limit changed.
    LimitChanged { was: u32 },
    /// A constraint was removed (undo: re-wire it). `positions[i]` is the
    /// index `cid` held in `args[i]`'s constraint list — `retain` preserves
    /// order, so re-inserting at the recorded index reconstructs the exact
    /// pre-removal wiring (activation order depends on it). The erasure
    /// cascade's value changes are journaled separately as `Value` entries.
    ConstraintRemoved {
        cid: ConstraintId,
        args: Vec<VarId>,
        positions: Vec<u32>,
    },
    /// A constraint's runtime subsumption mark flipped (undo: restore
    /// `was`). Non-structural: marks gate dispatch, not connectivity.
    SubsumedChanged { cid: ConstraintId, was: bool },
}

/// The change journal: variable pre-images (first write wins) plus
/// structural add/toggle records, accumulated between
/// [`Network::begin_journal`] and commit/rollback. Undoing a batch replays
/// the journal in reverse — O(touched set), not O(network) like
/// [`Network::snapshot`].
#[derive(Debug, Default)]
struct Journal {
    entries: Vec<JournalEntry>,
    /// Flag per variable index: pre-image already recorded. A flat vector
    /// beats a hash set on the write path (one indexed load per write);
    /// clearing walks the entries, so it stays O(touched), and the buffer
    /// itself is pooled across transactions via `spare_journal`.
    seen: Vec<bool>,
}

impl Journal {
    /// Clears for reuse, keeping both buffers' capacity. O(touched).
    fn recycle(&mut self) {
        for e in self.entries.drain(..) {
            if let JournalEntry::Value { var, .. } = e {
                self.seen[var.index()] = false;
            }
        }
    }
}

/// Callback invoked (after state restoration) whenever a propagation cycle
/// ends in a violation — the violation-handler hook of §4.2.3/5.2.
pub type ViolationHandler = dyn Fn(&Network, &Violation);

/// A full checkpoint of variable values and justifications
/// ([`Network::snapshot`] / [`Network::restore_snapshot`]).
#[derive(Debug, Clone)]
pub struct ValueSnapshot {
    entries: Vec<(Value, Justification)>,
}

impl ValueSnapshot {
    /// Number of variables captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A constraint network: the arena of variable and constraint objects plus
/// the propagation engine of thesis chapter 4.
///
/// # Example: the network of Fig. 4.5
///
/// ```
/// use stem_core::{Network, Value, Justification};
/// use stem_core::kinds::{Equality, Functional};
///
/// let mut net = Network::new();
/// let v1 = net.add_variable("V1");
/// let v2 = net.add_variable("V2");
/// let v3 = net.add_variable("V3");
/// let v4 = net.add_variable("V4");
/// net.add_constraint(Equality::new(), [v1, v2]).unwrap();
/// // V4 = max(V2, V3); the result variable is last.
/// net.add_constraint(Functional::uni_maximum(), [v2, v3, v4]).unwrap();
///
/// net.set(v3, Value::Int(7), Justification::User).unwrap();
/// net.set(v1, Value::Int(9), Justification::User).unwrap();
/// assert_eq!(net.value(v2), &Value::Int(9));
/// assert_eq!(net.value(v4), &Value::Int(9));
/// ```
pub struct Network {
    vars: Vec<VariableData>,
    /// Value + justification per variable, index-aligned with `vars`.
    slots: Vec<ValueSlot>,
    constraints: Vec<ConstraintData>,
    scheduler: AgendaScheduler,
    state: Option<PropState>,
    /// Retired cycle state, reused by the next cycle (capacity pooling).
    spare_state: PropState,
    /// Active change journal, when one is open ([`Network::begin_journal`]).
    journal: Option<Journal>,
    /// Retired journal, reused by the next `begin_journal`.
    spare_journal: Journal,
    /// The global `CPSwitch` of §5.3: when `false`, assignments are plain
    /// stores without propagation or checking.
    enabled: bool,
    /// Maximum non-Nil value changes per variable per cycle. 1 is the
    /// thesis's one-value-change rule; larger values are the relaxation
    /// suggested in §9.2.3 for reconvergent fanouts.
    value_change_limit: u32,
    /// Per-cycle propagation step budget; `None` is unlimited.
    step_limit: Option<u64>,
    handlers: Vec<Rc<ViolationHandler>>,
    stats: Stats,
    /// Compiled propagation plans, dense-indexed by root variable; grown
    /// on demand by [`Network::set`]. Negative results are cached too
    /// ([`PlanSlot::Uncompilable`]).
    plans: Vec<PlanSlot>,
    /// Bumped by every structural edit (constraint add/remove/toggle, arg
    /// attach/detach, agenda redefinition, structural journal rollback);
    /// a cached plan is valid only while its recorded generation matches.
    structure_generation: u64,
    /// Master switch for plan-cached propagation
    /// ([`Network::set_plan_caching`]); on by default.
    plan_caching: bool,
    /// Worker count for parallel plan replay
    /// ([`Network::set_parallel_threads`]); 1 (the default) keeps every
    /// replay on the sequential path and compiles no partition metadata.
    parallel_threads: usize,
    /// Minimum executing plan steps (immediate + scheduled inferences)
    /// before a plan is worth partitioning — small cones must not pay
    /// pool hand-off latency ([`Network::set_parallel_min_steps`]).
    par_min_exec_steps: usize,
    /// Minimum executing steps in a partitioned plan's costliest pool
    /// task before a replay engages the worker pool; below the floor the
    /// kernels run inline on the calling thread
    /// ([`Network::set_parallel_cone_min_steps`]).
    par_cone_min_steps: usize,
    /// Per variable: `(root index, token)` plan subscriptions — the
    /// compiled (or refused) plans whose footprint includes the
    /// variable. A structural edit evicts exactly the subscribed roots
    /// of its touched variables ([`Network::invalidate_plans_touching`]),
    /// making recompilation O(touched) instead of global.
    plan_subs: Vec<Vec<(u32, u64)>>,
    /// Per root: token of its live subscription (0 = none). A stale
    /// token in `plan_subs` is ignored and dropped lazily.
    plan_tokens: Vec<u64>,
    /// Token generator for `plan_tokens`; starts at 1 so 0 means "none".
    next_plan_token: u64,
    /// Counters for the parallel replay path, kept separate from [`Stats`]
    /// so core propagation statistics stay byte-identical across thread
    /// counts (the differential test's invariant).
    par_stats: ParStats,
    /// Times `snapshot()` was taken — observability for rollback-path
    /// audits (the engine's journal path must never take one).
    snapshots_taken: std::cell::Cell<u64>,
    /// Times this network (or an ancestor it was cloned from) was cloned.
    clones_taken: std::cell::Cell<u64>,
    /// Owner-declared durability regime, for inspection only — the
    /// network itself never touches disk. The engine stamps its sessions;
    /// standalone networks keep the volatile default.
    durability_label: &'static str,
    /// Runtime subsumption mark per constraint index: a marked constraint
    /// is entailed by current domains, so dispatch and plan replay skip
    /// it ([`Network::mark_subsumed`]). Grown lazily on first mark.
    subsumed: Vec<bool>,
    /// Count of set bits in `subsumed` — the hot paths' fast gate: zero
    /// means every subsumption branch short-circuits.
    n_subsumed: usize,
    /// Marks flipped inside the current cycle, replayed in reverse by
    /// `restore()` on violation (the journal handles batch rollback).
    subsumed_flips: Vec<(ConstraintId, bool)>,
    /// Pooled scratch for `revalidate_subsumed_watchers`.
    subsumed_scratch: Vec<ConstraintId>,
    /// Master switch for subsumption pruning
    /// ([`Network::set_subsumption`]); on by default.
    subsumption_enabled: bool,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("variables", &self.vars.len())
            .field("constraints", &self.constraints.len())
            .field("enabled", &self.enabled)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

/// Cloning a quiescent network duplicates variables, connectivity and
/// counters; constraint/variable *kinds*, recalc hooks and violation
/// handlers are shared (they are immutable behaviour). This is the cheap
/// fork primitive transactional services build on: apply speculative edits
/// to the clone, swap it in on success, drop it on failure.
///
/// # Panics
///
/// Panics if called during an active propagation cycle.
impl Clone for Network {
    fn clone(&self) -> Self {
        assert!(self.state.is_none(), "cannot clone mid-propagation");
        self.clones_taken.set(self.clones_taken.get() + 1);
        Network {
            vars: self.vars.clone(),
            slots: self.slots.clone(),
            constraints: self.constraints.clone(),
            scheduler: self.scheduler.clone(),
            state: None,
            spare_state: PropState::default(),
            journal: None,
            spare_journal: Journal::default(),
            enabled: self.enabled,
            value_change_limit: self.value_change_limit,
            step_limit: self.step_limit,
            handlers: self.handlers.clone(),
            stats: self.stats,
            // Plans survive the fork: their step kinds are shared `Rc`
            // handles, so this is connectivity-sized, not value-sized.
            plans: self.plans.clone(),
            structure_generation: self.structure_generation,
            plan_caching: self.plan_caching,
            parallel_threads: self.parallel_threads,
            par_min_exec_steps: self.par_min_exec_steps,
            par_cone_min_steps: self.par_cone_min_steps,
            plan_subs: self.plan_subs.clone(),
            plan_tokens: self.plan_tokens.clone(),
            next_plan_token: self.next_plan_token,
            par_stats: self.par_stats,
            snapshots_taken: self.snapshots_taken.clone(),
            clones_taken: self.clones_taken.clone(),
            durability_label: self.durability_label,
            subsumed: self.subsumed.clone(),
            n_subsumed: self.n_subsumed,
            subsumed_flips: Vec::new(),
            subsumed_scratch: Vec::new(),
            subsumption_enabled: self.subsumption_enabled,
        }
    }
}

impl Network {
    /// Creates an empty network with propagation enabled and the default
    /// agendas declared.
    pub fn new() -> Self {
        Network {
            vars: Vec::new(),
            slots: Vec::new(),
            constraints: Vec::new(),
            scheduler: AgendaScheduler::new(),
            state: None,
            spare_state: PropState::default(),
            journal: None,
            spare_journal: Journal::default(),
            enabled: true,
            value_change_limit: 1,
            step_limit: None,
            handlers: Vec::new(),
            stats: Stats::default(),
            plans: Vec::new(),
            structure_generation: 0,
            plan_caching: true,
            parallel_threads: 1,
            par_min_exec_steps: 256,
            par_cone_min_steps: 128,
            plan_subs: Vec::new(),
            plan_tokens: Vec::new(),
            next_plan_token: 1,
            par_stats: ParStats::default(),
            snapshots_taken: std::cell::Cell::new(0),
            clones_taken: std::cell::Cell::new(0),
            durability_label: "volatile (in-memory only)",
            subsumed: Vec::new(),
            n_subsumed: 0,
            subsumed_flips: Vec::new(),
            subsumed_scratch: Vec::new(),
            subsumption_enabled: true,
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a plain variable (value `Nil`, justification `Unset`).
    pub fn add_variable(&mut self, name: impl Into<String>) -> VarId {
        self.add_variable_with(name, None, Rc::new(PlainKind))
    }

    /// Adds a variable with an owner path (its "parent" for display) and a
    /// behaviour kind.
    pub fn add_variable_with(
        &mut self,
        name: impl Into<String>,
        owner: Option<Arc<str>>,
        kind: Rc<dyn VariableKind>,
    ) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VariableData::new(name.into(), owner, kind));
        self.slots.push(ValueSlot {
            value: Value::Nil,
            justification: Justification::Unset,
        });
        if let Some(j) = &mut self.journal {
            j.entries.push(JournalEntry::VarAdded);
        }
        id
    }

    /// Installs a lazy recalculation hook on `var` (thesis Fig. 6.1). The
    /// hook runs from [`Network::value_or_recalc`] when the value is `Nil`;
    /// it should compute and [`set`](Network::set) the value itself.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_recalc(&mut self, var: VarId, f: impl Fn(&mut Network, VarId) + 'static) {
        self.vars[var.index()].recalc = Some(Rc::new(f));
    }

    /// Adds a constraint over `args` and re-initialises it by propagating
    /// the arguments' existing values along it in precedence order
    /// (Fig. 4.13): user-specified first, then constraint-dependent, then
    /// other independents.
    ///
    /// # Errors
    ///
    /// If re-initialisation raises a violation, every visited variable is
    /// restored, the constraint is removed again, and the violation is
    /// returned — the NIL validity feedback of §5.2.
    ///
    /// # Panics
    ///
    /// Panics if any argument id is out of range or if called during an
    /// active propagation cycle.
    pub fn add_constraint(
        &mut self,
        kind: impl ConstraintKind + 'static,
        args: impl IntoIterator<Item = VarId>,
    ) -> Result<ConstraintId, Violation> {
        self.add_constraint_rc(Rc::new(kind), args)
    }

    /// [`add_constraint`](Network::add_constraint) for pre-shared kinds.
    pub fn add_constraint_rc(
        &mut self,
        kind: Rc<dyn ConstraintKind>,
        args: impl IntoIterator<Item = VarId>,
    ) -> Result<ConstraintId, Violation> {
        assert!(self.state.is_none(), "cannot edit network mid-propagation");
        let cid = self.add_constraint_quiet_rc(kind, args);
        if !self.enabled {
            return Ok(cid);
        }
        match self.reinitialize(cid) {
            Ok(()) => Ok(cid),
            Err(v) => {
                self.remove_constraint_quiet(cid);
                Err(v)
            }
        }
    }

    /// Adds a constraint without re-initialising (bulk construction; also
    /// what happens implicitly while propagation is disabled).
    pub fn add_constraint_quiet(
        &mut self,
        kind: impl ConstraintKind + 'static,
        args: impl IntoIterator<Item = VarId>,
    ) -> ConstraintId {
        self.add_constraint_quiet_rc(Rc::new(kind), args)
    }

    /// [`add_constraint_quiet`](Network::add_constraint_quiet) for
    /// pre-shared kinds.
    pub fn add_constraint_quiet_rc(
        &mut self,
        kind: Rc<dyn ConstraintKind>,
        args: impl IntoIterator<Item = VarId>,
    ) -> ConstraintId {
        let args: Vec<VarId> = args.into_iter().collect();
        for &a in &args {
            assert!(a.index() < self.vars.len(), "argument {a} out of range");
        }
        let cid = ConstraintId(self.constraints.len() as u32);
        for &a in &args {
            self.vars[a.index()].constraints.push(cid);
        }
        // O(touched) invalidation: only plans whose footprint includes an
        // argument of the new constraint can change shape.
        self.invalidate_plans_touching(&args);
        self.constraints.push(ConstraintData {
            kind,
            args,
            active: true,
            enabled: true,
        });
        if let Some(j) = &mut self.journal {
            j.entries.push(JournalEntry::ConstraintAdded);
        }
        cid
    }

    /// Removes a constraint (Fig. 4.14 generalised to the whole
    /// constraint): every value propagated by it — and every consequence of
    /// those values — is erased to `Nil`, then the constraint is unwired.
    ///
    /// Journalable: with a journal open, the erasure cascade records value
    /// pre-images as usual and the unwiring records a
    /// [`JournalEntry::ConstraintRemoved`] undo entry, so a rollback
    /// re-wires the constraint in its exact pre-removal position — still
    /// O(touched set).
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn remove_constraint(&mut self, cid: ConstraintId) {
        assert!(self.state.is_none(), "cannot edit network mid-propagation");
        if !self.constraints[cid.index()].active {
            return;
        }
        // Clear any subsumption mark first (journaled): rollback replays in
        // reverse, so the re-wire entry pushed below restores connectivity
        // before this entry restores the mark.
        self.set_subsumed_bit(cid, false);
        if self.enabled {
            let mut to_reset: Vec<VarId> = Vec::new();
            for i in 0..self.constraints[cid.index()].args.len() {
                let arg = self.constraints[cid.index()].args[i];
                if self.slots[arg.index()].justification.source_constraint() == Some(cid) {
                    for v in self.consequences(arg) {
                        if !to_reset.contains(&v) {
                            to_reset.push(v);
                        }
                    }
                }
            }
            for v in to_reset {
                self.reset(v);
            }
        }
        if self.journal.is_some() {
            let args = self.constraints[cid.index()].args.clone();
            let mut positions = Vec::with_capacity(args.len());
            for (i, &a) in args.iter().enumerate() {
                // `args` may list a variable twice; match the i-th
                // occurrence of `cid` in its constraint list so rollback
                // re-inserts each wire where it came from.
                let occurrence = args[..i].iter().filter(|&&p| p == a).count();
                let pos = self.vars[a.index()]
                    .constraints
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == cid)
                    .nth(occurrence)
                    .map(|(ix, _)| ix as u32)
                    .expect("constraint wired to its argument");
                positions.push(pos);
            }
            if let Some(j) = &mut self.journal {
                j.entries.push(JournalEntry::ConstraintRemoved {
                    cid,
                    args,
                    positions,
                });
            }
        }
        self.remove_constraint_quiet(cid);
    }

    /// Unwires and tombstones a constraint without any erasure.
    fn remove_constraint_quiet(&mut self, cid: ConstraintId) {
        // Safety net for unjournaled callers: a tombstoned slot must not
        // keep a stale subsumption mark.
        if self.subsumed.get(cid.index()) == Some(&true) {
            self.subsumed[cid.index()] = false;
            self.n_subsumed -= 1;
        }
        let args = std::mem::take(&mut self.constraints[cid.index()].args);
        for &a in &args {
            self.vars[a.index()].constraints.retain(|&c| c != cid);
        }
        self.constraints[cid.index()].active = false;
        self.invalidate_plans_touching(&args);
    }

    /// Detaches one argument from a constraint (`removeConstraint:` on a
    /// variable, Fig. 4.14): erases values that depended on the pair, then
    /// re-initialises the constraint over its remaining arguments.
    ///
    /// # Errors
    ///
    /// Propagates any violation raised by the re-initialisation (values are
    /// restored; the detachment itself stands).
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn detach_arg(&mut self, cid: ConstraintId, var: VarId) -> Result<(), Violation> {
        assert!(self.state.is_none(), "cannot edit network mid-propagation");
        assert!(
            self.journal.is_none(),
            "detach_arg is not journalable; commit or roll back first"
        );
        if !self.constraints[cid.index()].args.contains(&var) {
            return Ok(());
        }
        if self.enabled {
            if self.slots[var.index()].justification.source_constraint() == Some(cid) {
                // My value was last set by this constraint: reset me and all
                // my consequences.
                for v in self.consequences(var) {
                    self.reset(v);
                }
            } else {
                // Reset all variables that are consequences of me
                // propagating through this constraint.
                let mut out = Vec::new();
                self.constraint_consequences(cid, var, &mut out);
                for v in out {
                    self.reset(v);
                }
            }
        }
        // `var` is still among the args here, so the clone covers it.
        let touched = self.constraints[cid.index()].args.clone();
        self.constraints[cid.index()].args.retain(|&a| a != var);
        self.vars[var.index()].constraints.retain(|&c| c != cid);
        self.invalidate_plans_touching(&touched);
        if self.enabled && !self.constraints[cid.index()].args.is_empty() {
            self.reinitialize(cid)
        } else {
            Ok(())
        }
    }

    /// Attaches an additional argument to an existing constraint
    /// (`addConstraint:` on a variable, Fig. 4.13) and re-initialises.
    ///
    /// # Errors
    ///
    /// On violation the attachment is rolled back and the violation
    /// returned.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn attach_arg(&mut self, cid: ConstraintId, var: VarId) -> Result<(), Violation> {
        assert!(self.state.is_none(), "cannot edit network mid-propagation");
        assert!(
            self.journal.is_none(),
            "attach_arg is not journalable; commit or roll back first"
        );
        assert!(self.constraints[cid.index()].active, "constraint removed");
        if self.constraints[cid.index()].args.contains(&var) {
            return Ok(());
        }
        self.constraints[cid.index()].args.push(var);
        self.vars[var.index()].constraints.push(cid);
        let touched = self.constraints[cid.index()].args.clone();
        self.invalidate_plans_touching(&touched);
        if !self.enabled {
            return Ok(());
        }
        match self.reinitialize(cid) {
            Ok(()) => Ok(()),
            Err(v) => {
                self.constraints[cid.index()].args.retain(|&a| a != var);
                self.vars[var.index()].constraints.retain(|&c| c != cid);
                Err(v)
            }
        }
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Current value of `var`.
    pub fn value(&self, var: VarId) -> &Value {
        &self.slots[var.index()].value
    }

    /// Current value, running the lazy recalculation hook first when the
    /// value is `Nil` (implicit invocation, Fig. 6.1). Returns a borrow —
    /// the recalc hook (if any) has already finished by then, so no clone
    /// is needed; callers that must own the value clone at the call site.
    pub fn value_or_recalc(&mut self, var: VarId) -> &Value {
        let d = &self.vars[var.index()];
        if self.slots[var.index()].value.is_nil() && !d.evaluating {
            if let Some(f) = d.recalc.clone() {
                self.vars[var.index()].evaluating = true;
                f(self, var);
                self.vars[var.index()].evaluating = false;
            }
        }
        &self.slots[var.index()].value
    }

    /// Justification of `var`'s current value (`lastSetBy`).
    pub fn justification(&self, var: VarId) -> &Justification {
        &self.slots[var.index()].justification
    }

    /// Declared name of `var`.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.index()].name
    }

    /// `owner.name` display path of `var` (§4.1.1).
    pub fn var_path(&self, var: VarId) -> String {
        self.vars[var.index()].path()
    }

    /// Kind label of `var`.
    pub fn var_kind_name(&self, var: VarId) -> String {
        self.vars[var.index()].kind.kind_name().to_string()
    }

    /// Constraints referencing `var`.
    pub fn constraints_of(&self, var: VarId) -> &[ConstraintId] {
        &self.vars[var.index()].constraints
    }

    /// Argument list of `cid`.
    pub fn args(&self, cid: ConstraintId) -> &[VarId] {
        &self.constraints[cid.index()].args
    }

    /// Kind label of `cid`.
    pub fn constraint_kind_name(&self, cid: ConstraintId) -> String {
        self.constraints[cid.index()].kind.kind_name().to_string()
    }

    /// The arguments `cid`'s kind may assign during inference
    /// ([`ConstraintKind::outputs`]), used by network compilation.
    pub fn constraint_outputs(&self, cid: ConstraintId) -> Vec<VarId> {
        self.constraints[cid.index()].kind.outputs(self, cid)
    }

    /// The strength of `cid`'s kind ([`ConstraintKind::strength`]).
    pub fn constraint_strength(&self, cid: ConstraintId) -> u8 {
        self.constraints[cid.index()].kind.strength()
    }

    /// Whether `cid` is still installed.
    pub fn is_active(&self, cid: ConstraintId) -> bool {
        self.constraints[cid.index()].active
    }

    /// Whether `var` carries the default ([`PlainKind`]) behaviour —
    /// cone partitioning admits only plain write targets, because the
    /// off-thread overwrite rule is `PlainKind`'s.
    pub(crate) fn var_is_plain(&self, var: VarId) -> bool {
        self.vars[var.index()].plain_kind
    }

    /// Strength of every constraint slot (tombstoned included), indexed
    /// by [`ConstraintId::index`] — snapshotted into cone partitions so
    /// overwrite arbitration runs off-thread without the `Rc` kinds.
    pub(crate) fn constraint_slot_strengths(&self) -> Vec<u8> {
        self.constraints.iter().map(|c| c.kind.strength()).collect()
    }

    /// Whether `cid` is currently satisfied by its arguments' values.
    pub fn is_satisfied(&self, cid: ConstraintId) -> bool {
        let d = &self.constraints[cid.index()];
        !d.active || !d.enabled || d.kind.is_satisfied(self, cid)
    }

    /// Number of variables ever created.
    pub fn n_variables(&self) -> usize {
        self.vars.len()
    }

    /// Number of active constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.iter().filter(|c| c.active).count()
    }

    /// Number of constraint slots ever allocated, including removed
    /// (tombstoned) ones — the exclusive upper bound on valid
    /// [`ConstraintId`] indices. Lets services validate client-supplied
    /// ids without risking an out-of-range panic.
    pub fn n_constraint_slots(&self) -> usize {
        self.constraints.len()
    }

    /// Iterator over all variable ids.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Iterator over all active constraint ids.
    pub fn all_constraints(&self) -> impl Iterator<Item = ConstraintId> + '_ {
        (0..self.constraints.len() as u32)
            .map(ConstraintId)
            .filter(move |c| self.constraints[c.index()].active)
    }

    /// Sweeps every active constraint for violations — useful after
    /// re-enabling propagation, which the thesis notes has "no support …
    /// for recovery from constraint inconsistency" (§5.3); this sweep is
    /// that recovery aid.
    pub fn check_all(&self) -> Vec<Violation> {
        self.all_constraints()
            .filter(|&c| !self.is_satisfied(c))
            .map(|c| Violation::unsatisfied(c).with_kind_name(self.constraint_kind_name(c)))
            .collect()
    }

    /// Accumulated engine counters.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// How many times [`Network::snapshot`] has run on this network (or an
    /// ancestor it was cloned from) — lets rollback-path audits prove the
    /// O(network) checkpoint was never taken.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken.get()
    }

    /// How many times this network (or an ancestor) was cloned.
    pub fn clones_taken(&self) -> u64 {
        self.clones_taken.get()
    }

    /// Resets the engine counters (including the parallel-replay
    /// counters of [`Network::par_stats`]).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
        self.par_stats = ParStats::default();
    }

    /// Accumulated parallel-replay counters ([`crate::par`]). Always
    /// zero while [`Network::parallel_threads`] is 1.
    pub fn par_stats(&self) -> ParStats {
        self.par_stats
    }

    /// The `CPSwitch` (§5.3): enables or disables constraint propagation
    /// globally. While disabled, `set` performs plain assignments.
    pub fn set_propagation_enabled(&mut self, enabled: bool) {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        self.enabled = enabled;
    }

    /// Whether propagation is enabled.
    pub fn is_propagation_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables one constraint — the finer-grained control of
    /// thesis §9.3: a disabled constraint neither propagates nor
    /// participates in satisfaction checks, but stays wired and can be
    /// re-enabled.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn set_constraint_enabled(&mut self, cid: ConstraintId, enabled: bool) {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        let was = self.constraints[cid.index()].enabled;
        if was != enabled {
            if let Some(j) = &mut self.journal {
                j.entries.push(JournalEntry::EnabledChanged { cid, was });
            }
            let touched = self.constraints[cid.index()].args.clone();
            self.invalidate_plans_touching(&touched);
        }
        self.constraints[cid.index()].enabled = enabled;
    }

    /// Whether a constraint is individually enabled.
    pub fn is_constraint_enabled(&self, cid: ConstraintId) -> bool {
        self.constraints[cid.index()].enabled
    }

    /// Enables or disables every active constraint whose kind label equals
    /// `kind_name` (§9.3: "specified types of constraints"). Returns how
    /// many constraints were toggled.
    pub fn set_kind_enabled(&mut self, kind_name: &str, enabled: bool) -> usize {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        let mut n = 0;
        let mut touched: Vec<VarId> = Vec::new();
        for (ix, d) in self.constraints.iter_mut().enumerate() {
            if d.active && d.kind.kind_name() == kind_name {
                if d.enabled != enabled {
                    touched.extend_from_slice(&d.args);
                    if let Some(j) = &mut self.journal {
                        j.entries.push(JournalEntry::EnabledChanged {
                            cid: ConstraintId(ix as u32),
                            was: d.enabled,
                        });
                    }
                }
                d.enabled = enabled;
                n += 1;
            }
        }
        if !touched.is_empty() {
            self.invalidate_plans_touching(&touched);
        }
        n
    }

    /// Sets the maximum number of non-`Nil` value changes a variable may
    /// undergo per propagation cycle. `1` (the default) is the thesis's
    /// one-value-change rule; §9.2.3 suggests relaxing it "to allow N
    /// value changes in each propagation cycle" for reconvergent fanouts.
    ///
    /// # Panics
    ///
    /// Panics for `limit == 0` or if called during an active cycle.
    pub fn set_value_change_limit(&mut self, limit: u32) {
        assert!(limit >= 1, "the change limit must be at least 1");
        assert!(self.state.is_none(), "cannot change mid-propagation");
        if self.value_change_limit != limit {
            if let Some(j) = &mut self.journal {
                j.entries.push(JournalEntry::LimitChanged {
                    was: self.value_change_limit,
                });
            }
        }
        self.value_change_limit = limit;
    }

    /// The current per-cycle value-change limit.
    pub fn value_change_limit(&self) -> u32 {
        self.value_change_limit
    }

    /// Caps the number of propagation steps (constraint activations plus
    /// scheduled inferences) any single cycle may perform. When a wave
    /// exhausts the budget it aborts through the normal violation path —
    /// every visited variable is restored and
    /// [`ViolationKind::BudgetExceeded`](crate::ViolationKind::BudgetExceeded)
    /// is returned — so a runaway wave cannot wedge the caller. `None`
    /// (the default) is unlimited.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn set_step_limit(&mut self, limit: Option<u64>) {
        assert!(self.state.is_none(), "cannot change mid-propagation");
        self.step_limit = limit;
    }

    /// The current per-cycle propagation step budget.
    pub fn step_limit(&self) -> Option<u64> {
        self.step_limit
    }

    /// Aborts an in-flight propagation cycle, restoring every visited
    /// variable and clearing the agendas. A no-op when no cycle is active.
    ///
    /// The engine normally finishes cycles itself; this hook exists for
    /// supervisors that catch a panic unwinding out of a constraint kind
    /// (via `catch_unwind`) and need the network returned to its pre-cycle
    /// state instead of being poisoned mid-cycle.
    pub fn abort_cycle(&mut self) {
        if let Some(state) = self.state.take() {
            self.restore(&state);
            self.scheduler.clear();
            self.stats.violations += 1;
            self.retire_state(state);
        }
    }

    /// Executes a pre-compiled constraint order (thesis §9.3's "simple
    /// topological sorts of the constraint networks"): each constraint is
    /// inferred exactly once, in the given order, with no activation
    /// discovery, then the executed constraints are checked.
    ///
    /// Build the order with [`compile_functional`](crate::compile_functional).
    ///
    /// # Errors
    ///
    /// On violation every visited variable is restored and the violation
    /// returned, exactly as for [`Network::set`].
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly.
    pub fn run_compiled(&mut self, order: &[ConstraintId]) -> Result<(), Violation> {
        assert!(self.state.is_none(), "run_compiled is not re-entrant");
        if !self.enabled {
            return Ok(());
        }
        self.begin_cycle(false);
        self.state.as_mut().expect("cycle active").compiled = true;
        let mut result = Ok(());
        for &cid in order {
            let d = &self.constraints[cid.index()];
            if !d.active || !d.enabled {
                continue;
            }
            {
                let st = self.state.as_mut().expect("cycle active");
                if st.visited_cset.insert(cid) {
                    st.visited_constraints.push(cid);
                }
            }
            let kind = self.constraints[cid.index()].kind.clone();
            self.stats.inferences += 1;
            result = kind.infer(self, cid, None);
            if result.is_err() {
                break;
            }
        }
        self.finish_cycle(result)
    }

    /// Registers a violation handler, called after restoration whenever a
    /// non-tentative cycle aborts (§4.2.3).
    pub fn add_violation_handler(&mut self, f: impl Fn(&Network, &Violation) + 'static) {
        self.handlers.push(Rc::new(f));
    }

    /// Declares (or re-prioritises) a scheduling agenda (§4.2.1).
    pub fn define_agenda(&mut self, name: &'static str, priority: i32) {
        self.scheduler.define(name, priority);
        // Priorities reorder the drain phase, which compiled plans bake in.
        self.structure_generation += 1;
    }

    // ------------------------------------------------------------------
    // Assignment & propagation
    // ------------------------------------------------------------------

    /// Erases `var` to `Nil`/`Unset` without propagation — the dependency
    /// erasure primitive of Fig. 4.14.
    pub fn reset(&mut self, var: VarId) {
        self.journal_record_value(var);
        let s = &mut self.slots[var.index()];
        s.value = Value::Nil;
        s.justification = Justification::Unset;
        // Nil is the widest domain: entailment witnesses watching this
        // variable no longer hold.
        if self.n_subsumed != 0 {
            self.revalidate_subsumed_watchers(var);
        }
    }

    /// Captures every variable's value and justification — a checkpoint
    /// for search procedures that tentatively commit whole candidate
    /// combinations (joint module selection) and for the editor's
    /// "restore all visited variables" function (§5.4) generalised.
    ///
    /// Cost is O(network); transactional callers that touch few variables
    /// should prefer the change journal ([`Network::begin_journal`]),
    /// whose cost is O(touched set).
    pub fn snapshot(&self) -> ValueSnapshot {
        self.snapshots_taken.set(self.snapshots_taken.get() + 1);
        ValueSnapshot {
            entries: self
                .slots
                .iter()
                .map(|s| (s.value.clone(), s.justification.clone()))
                .collect(),
        }
    }

    /// Restores a snapshot taken on this network: plain stores, no
    /// propagation (the network returns to a state that was consistent
    /// when captured). Variables created after the snapshot keep their
    /// current values.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn restore_snapshot(&mut self, snapshot: &ValueSnapshot) {
        assert!(self.state.is_none(), "cannot restore mid-propagation");
        for (i, (value, justification)) in snapshot.entries.iter().enumerate() {
            if i >= self.vars.len() {
                break;
            }
            self.journal_record_value(VarId(i as u32));
            let s = &mut self.slots[i];
            s.value = value.clone();
            s.justification = justification.clone();
        }
        // Values reverted wholesale to an older state, under which a
        // runtime subsumption mark's entailment witness may no longer
        // hold. Wipe every mark (journaled); absence is always correct.
        if self.n_subsumed != 0 {
            for ix in 0..self.subsumed.len() {
                if self.subsumed[ix] {
                    self.set_subsumed_bit(ConstraintId(ix as u32), false);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Change journal
    // ------------------------------------------------------------------

    /// Opens a change journal. Until [`Network::commit_journal`] or
    /// [`Network::rollback_journal`], every variable write records its
    /// pre-image (value + justification) on first touch, and journalable
    /// structural edits (variable/constraint additions, enable toggles,
    /// change-limit updates) record undo entries. Rolling back replays the
    /// journal in reverse — cost proportional to the touched set, not the
    /// network, unlike [`Network::snapshot`]/[`Network::restore_snapshot`].
    ///
    /// Constraint removals are journalable too
    /// ([`JournalEntry::ConstraintRemoved`]). The remaining non-journalable
    /// edits ([`Network::detach_arg`], [`Network::attach_arg`]) panic while
    /// a journal is open; callers needing them must fall back to a clone or
    /// snapshot transaction.
    ///
    /// # Panics
    ///
    /// Panics if a journal is already open or a propagation cycle is
    /// active.
    pub fn begin_journal(&mut self) {
        assert!(self.journal.is_none(), "a journal is already open");
        assert!(
            self.state.is_none(),
            "cannot open a journal mid-propagation"
        );
        let j = std::mem::take(&mut self.spare_journal);
        debug_assert!(j.entries.is_empty() && !j.seen.contains(&true));
        self.journal = Some(j);
    }

    /// Whether a change journal is currently open.
    pub fn is_journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Declares the durability regime this network's owner runs it under;
    /// purely informational — the network itself never touches disk. The
    /// engine stamps its sessions' networks; the inspector's dump prints
    /// the label ("what would be lost on crash").
    pub fn set_durability_label(&mut self, label: &'static str) {
        self.durability_label = label;
    }

    /// The owner-declared durability label; `"volatile (in-memory only)"`
    /// unless [`Network::set_durability_label`] was called.
    pub fn durability_label(&self) -> &'static str {
        self.durability_label
    }

    /// Number of undo entries in the open journal (0 when none is open).
    /// Proportional to the touched set — the O(touched) guarantee is
    /// testable through this.
    pub fn journal_len(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.entries.len())
    }

    /// Closes the journal, keeping every change.
    ///
    /// # Panics
    ///
    /// Panics if no journal is open.
    pub fn commit_journal(&mut self) {
        let mut j = self.journal.take().expect("no journal open");
        j.recycle();
        self.spare_journal = j;
    }

    /// Closes the journal, undoing every journaled change by replaying the
    /// entries newest-first: variable pre-images are re-stored, added
    /// variables and constraints are popped from the arenas (and unwired),
    /// removed constraints are re-wired, and toggles are reverted.
    ///
    /// # Panics
    ///
    /// Panics if no journal is open or a propagation cycle is active
    /// (abort the cycle first — see [`Network::abort_cycle`]).
    pub fn rollback_journal(&mut self) {
        assert!(self.state.is_none(), "cannot roll back mid-propagation");
        let mut j = self.journal.take().expect("no journal open");
        let mut entries = std::mem::take(&mut j.entries);
        let mut structural = false;
        for entry in entries.drain(..).rev() {
            match entry {
                JournalEntry::Value {
                    var,
                    value,
                    justification,
                } => {
                    j.seen[var.index()] = false;
                    let s = &mut self.slots[var.index()];
                    s.value = value;
                    s.justification = justification;
                }
                JournalEntry::VarAdded => {
                    // Constraints wired to it were added later, hence
                    // already popped by their own entries. Popping recycles
                    // the id, so any plan cache keyed on it is stale.
                    self.vars.pop().expect("journal out of sync with arena");
                    self.slots.pop().expect("journal out of sync with arena");
                    structural = true;
                }
                JournalEntry::ConstraintAdded => {
                    let d = self
                        .constraints
                        .pop()
                        .expect("journal out of sync with arena");
                    let cid = ConstraintId(self.constraints.len() as u32);
                    // `d.args` is empty if the slot was already tombstoned
                    // (e.g. by add_constraint's own violation cleanup).
                    for a in d.args {
                        self.vars[a.index()].constraints.retain(|&c| c != cid);
                    }
                    // Any mark the popped constraint still held: its
                    // SubsumedChanged entries replayed before this pop (they
                    // were journaled later), so a remaining set bit can only
                    // come from an unjournaled flip — drop it with the slot.
                    if self.subsumed.get(cid.index()) == Some(&true) {
                        self.subsumed[cid.index()] = false;
                        self.n_subsumed -= 1;
                    }
                    structural = true;
                }
                JournalEntry::ConstraintRemoved {
                    cid,
                    args,
                    positions,
                } => {
                    // Re-wire in argument order: recorded positions are
                    // ascending per variable, so earlier insertions leave
                    // later recorded indices exact.
                    for (&a, &pos) in args.iter().zip(positions.iter()) {
                        self.vars[a.index()].constraints.insert(pos as usize, cid);
                    }
                    let d = &mut self.constraints[cid.index()];
                    d.args = args;
                    d.active = true;
                    structural = true;
                }
                JournalEntry::EnabledChanged { cid, was } => {
                    self.constraints[cid.index()].enabled = was;
                    structural = true;
                }
                JournalEntry::LimitChanged { was } => {
                    self.value_change_limit = was;
                }
                JournalEntry::SubsumedChanged { cid, was } => {
                    // Idempotent under double-replay with the cycle-level
                    // flip log: only adjust when the bit actually differs.
                    let ix = cid.index();
                    if self.subsumed.get(ix).copied().unwrap_or(false) != was {
                        self.subsumed[ix] = was;
                        if was {
                            self.n_subsumed += 1;
                        } else {
                            self.n_subsumed -= 1;
                        }
                    }
                }
            }
        }
        if structural {
            self.structure_generation += 1;
        }
        j.entries = entries;
        self.spare_journal = j;
    }

    /// Records `var`'s pre-image in the open journal, once per variable.
    /// Must run before the write. A single branch when no journal is open.
    #[inline]
    fn journal_record_value(&mut self, var: VarId) {
        if let Some(j) = &mut self.journal {
            let ix = var.index();
            if j.seen.len() <= ix {
                j.seen.resize(ix + 1, false);
            }
            if !j.seen[ix] {
                j.seen[ix] = true;
                let s = &self.slots[ix];
                j.entries.push(JournalEntry::Value {
                    var,
                    value: s.value.clone(),
                    justification: s.justification.clone(),
                });
            }
        }
    }

    /// External assignment (`setTo:justification:`, Fig. 4.2): assigns
    /// `value` to `var`, triggers full constraint propagation, drains the
    /// agendas, and finally checks every visited constraint (Fig. 4.6).
    ///
    /// While propagation is disabled (§5.3) this is a plain store.
    ///
    /// # Errors
    ///
    /// On violation, every visited variable (including `var`) is restored
    /// to its pre-call state, handlers run, and the violation is returned.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside a constraint kind; kinds
    /// must use [`Network::propagate_set`].
    pub fn set(
        &mut self,
        var: VarId,
        value: Value,
        justification: Justification,
    ) -> Result<(), Violation> {
        assert!(
            self.state.is_none(),
            "Network::set is not re-entrant; constraint kinds must use propagate_set"
        );
        if let Justification::Propagated { constraint, .. } = &justification {
            // External setters use the symbolic justifications; forged
            // propagated records would corrupt dependency analysis (and an
            // id from another arena could index out of bounds).
            assert!(
                constraint.index() < self.constraints.len(),
                "Propagated justification references an unknown constraint; \
                 external assignments should use User/Application/… instead"
            );
        }
        if !self.enabled {
            self.assign_raw(var, value, justification);
            return Ok(());
        }
        // Fast path: replay this root's compiled propagation plan instead of
        // pumping the agenda machinery. A step budget forces the agenda path
        // (budget accounting is a per-step interpreter concern).
        if self.plan_caching && self.step_limit.is_none() {
            if let Some(mut plan) = self.plan_for(var) {
                if self.parallel_threads > 1 {
                    if plan.par.is_some()
                        && self.run_plan_parallel(var, &value, &justification, &mut plan)
                    {
                        self.plans[var.index()] = PlanSlot::Ready(plan);
                        return Ok(());
                    }
                    // No partition was admitted at compile time, or the
                    // parallel attempt aborted (overwrite denial, final-check
                    // violation): the sequential replay below is the ground
                    // truth and reproduces the exact outcome.
                    self.par_stats.parallel_fallbacks += 1;
                }
                return self.run_plan(var, value, justification, plan);
            }
        }
        self.begin_cycle(false);
        self.save_visited(var);
        self.pin_root(var);
        self.assign_raw(var, value, justification);
        self.push_activations(var, None);
        let result = self.run_cycle();
        self.finish_cycle(result)
    }

    /// Tentative validity probe (`canBeSetTo:`, Fig. 8.2): assigns `value`
    /// with [`Justification::Tentative`], propagates, then restores all
    /// visited variables unconditionally. Returns whether propagation
    /// completed without violation. Handlers are not notified.
    ///
    /// While propagation is disabled this always returns `true`.
    pub fn can_be_set_to(&mut self, var: VarId, value: Value) -> bool {
        assert!(self.state.is_none(), "can_be_set_to is not re-entrant");
        if !self.enabled {
            return true;
        }
        self.begin_cycle(true);
        self.save_visited(var);
        self.pin_root(var);
        self.assign_raw(var, value, Justification::Tentative);
        self.push_activations(var, None);
        let mut result = self.run_cycle();
        if result.is_ok() {
            result = self.final_check();
        }
        // Always restore (Fig. 8.2: "propagate, then restore prev values").
        let state = self.state.take().expect("cycle active");
        self.restore(&state);
        self.scheduler.clear();
        self.retire_state(state);
        if result.is_err() {
            self.stats.violations += 1;
        }
        result.is_ok()
    }

    /// Overwrite arbitration for one propagated write. Variables carrying
    /// the default behaviour take a statically dispatched fast path (the
    /// cached `plain_kind` verdict); custom kinds go through the virtual
    /// call — without cloning the kind handle, since `overwrite` only
    /// needs a shared borrow.
    fn overwrite_decision(&self, var: VarId, value: &Value, source: ConstraintId) -> Overwrite {
        let d = &self.vars[var.index()];
        if d.plain_kind {
            PlainKind.overwrite(self, var, value, Some(source))
        } else {
            d.kind.overwrite(self, var, value, Some(source))
        }
    }

    /// Propagated assignment (`setTo:constraint:justification:`, Fig. 4.3),
    /// called by constraint kinds from `infer`. Applies the termination
    /// criteria of §4.2.2:
    ///
    /// 1. equal value → [`SetStatus::Unchanged`], propagation stops here;
    /// 2. already visited with a different value → revisit violation
    ///    (the one-value-change rule);
    /// 3. the variable kind may `Deny` (violation) or `Ignore` (silent
    ///    keep) the overwrite;
    ///
    /// otherwise the value is assigned and the variable's other constraints
    /// are activated.
    ///
    /// # Errors
    ///
    /// Returns the violation for cases 2 and 3; the caller should abort
    /// (`?`) so the engine can restore.
    ///
    /// # Panics
    ///
    /// Panics if no propagation cycle is active.
    pub fn propagate_set(
        &mut self,
        var: VarId,
        value: Value,
        source: ConstraintId,
        record: DependencyRecord,
    ) -> Result<SetStatus, Violation> {
        let planned = self
            .state
            .as_ref()
            .expect("propagate_set outside a propagation cycle")
            .planned;
        let current_is_nil = {
            let current = &self.slots[var.index()].value;
            if *current == value {
                return Ok(SetStatus::Unchanged);
            }
            current.is_nil()
        };
        if planned {
            // Plan-driven cycle: the cone is statically single-writer and
            // the root is never a write target, so the revisit rule cannot
            // trigger — skip its hash-map bookkeeping. Overwrite arbitration
            // still applies (it guards justification strength, not
            // revisits).
            if !current_is_nil {
                match self.overwrite_decision(var, &value, source) {
                    Overwrite::Deny => {
                        return Err(Violation::overwrite_denied(var, Some(source), value))
                    }
                    Overwrite::Ignore => return Ok(SetStatus::Ignored),
                    Overwrite::Allow => {}
                }
            }
            // A non-refining (widening) write may break the entailment
            // witness of a subsumption mark watching this variable; decide
            // before the borrow below takes `slots`.
            let must_revalidate = self.n_subsumed != 0
                && !crate::domain::refines(&self.slots[var.index()].value, &value);
            // Single split borrow for the whole write: pre-image save,
            // journal record, assignment, and the change mark that makes
            // downstream plan steps live. (Unchanged/Ignored outcomes
            // return above and leave the mark unset — that is the value
            // pruning.) No discovery: the plan already fixed the
            // activation order.
            let Network {
                slots,
                state,
                journal,
                stats,
                ..
            } = self;
            let st = state.as_mut().expect("cycle active");
            let s = &mut slots[var.index()];
            st.visited_list.push((
                var,
                SavedVar {
                    value: s.value.clone(),
                    justification: s.justification.clone(),
                },
            ));
            st.var_marks[var.index()] = st.mark_epoch;
            if let Some(j) = journal {
                let ix = var.index();
                if j.seen.len() <= ix {
                    j.seen.resize(ix + 1, false);
                }
                if !j.seen[ix] {
                    j.seen[ix] = true;
                    j.entries.push(JournalEntry::Value {
                        var,
                        value: s.value.clone(),
                        justification: s.justification.clone(),
                    });
                }
            }
            s.value = value;
            s.justification = Justification::Propagated {
                constraint: source,
                record,
            };
            stats.assignments += 1;
            if must_revalidate {
                self.revalidate_subsumed_watchers(var);
            }
            return Ok(SetStatus::Changed);
        }
        // Domain refinement is exempt from the one-value-change rule: a
        // fixpoint propagator narrows a variable many times per cycle, and
        // termination holds anyway because every refining write strictly
        // shrinks a finite domain (equal values return `Unchanged` above).
        let refining = crate::domain::refines(&self.slots[var.index()].value, &value);
        // One-value-change rule: a visited variable may not change its
        // (non-Nil) value again — or, when the limit is relaxed per §9.2.3,
        // not more than `value_change_limit` times. Filling in a Nil is a
        // first assignment, not a change — variables "can change value to
        // or from NIL freely" (Fig. 7.4), which is also what lets
        // re-initialisation (Fig. 4.13) seed all arguments as visited
        // before propagating them.
        if !current_is_nil && !refining {
            let st = self.state.as_ref().expect("cycle active");
            if st.visited_vars.contains_key(&var) {
                let changes = st.change_counts.get(&var).copied().unwrap_or(0);
                if changes >= self.value_change_limit {
                    return Err(Violation::revisit(var, source, value));
                }
            }
        }
        if !current_is_nil {
            match self.overwrite_decision(var, &value, source) {
                Overwrite::Deny => {
                    return Err(Violation::overwrite_denied(var, Some(source), value))
                }
                Overwrite::Ignore => return Ok(SetStatus::Ignored),
                Overwrite::Allow => {}
            }
        }
        self.save_visited(var);
        if !current_is_nil && !refining {
            *self
                .state
                .as_mut()
                .expect("cycle active")
                .change_counts
                .entry(var)
                .or_insert(0) += 1;
        }
        self.assign_raw(
            var,
            value,
            Justification::Propagated {
                constraint: source,
                record,
            },
        );
        self.push_activations(var, Some(source));
        Ok(SetStatus::Changed)
    }

    // ------------------------------------------------------------------
    // Propagation plans (network compilation of the dynamic path, §9.3)
    // ------------------------------------------------------------------

    /// Enables or disables plan-cached propagation. Disabling also drops
    /// every cached plan, so a re-enable starts cold — the knob the
    /// differential tests use to force the agenda ground truth.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn set_plan_caching(&mut self, on: bool) {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        self.plan_caching = on;
        if !on {
            self.drop_all_plans();
        }
    }

    /// Whether plan-cached propagation is enabled.
    pub fn is_plan_caching(&self) -> bool {
        self.plan_caching
    }

    /// Sets the replay thread budget. `1` (the default) keeps every
    /// replay sequential; above 1, plan compilation additionally
    /// partitions each plan into independent cones ([`crate::par`]) and
    /// replay executes them on a shared worker pool when profitable.
    /// Values are clamped to at least 1. Changing the budget drops all
    /// cached plans so partitions are (re)built consistently.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn set_parallel_threads(&mut self, threads: usize) {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        let threads = threads.max(1);
        if threads != self.parallel_threads {
            self.parallel_threads = threads;
            self.drop_all_plans();
        }
    }

    /// The replay thread budget ([`Network::set_parallel_threads`]).
    pub fn parallel_threads(&self) -> usize {
        self.parallel_threads
    }

    /// Sets the minimum number of *executing* plan steps (immediate and
    /// drain-phase inferences) below which a plan is never partitioned:
    /// small cones replay sequentially faster than any pool handoff.
    /// Changing the threshold drops all cached plans.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn set_parallel_min_steps(&mut self, min_steps: usize) {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        if min_steps != self.par_min_exec_steps {
            self.par_min_exec_steps = min_steps;
            self.drop_all_plans();
        }
    }

    /// The partition size threshold ([`Network::set_parallel_min_steps`]).
    pub fn parallel_min_steps(&self) -> usize {
        self.par_min_exec_steps
    }

    /// Sets the per-task cost floor for the replay-time pool admission:
    /// a partitioned plan whose costliest single task (biggest cone, or
    /// widest wavefront layer) has fewer executing steps than this runs
    /// its kernels inline on the calling thread instead of paying pool
    /// hand-off — the shape where `parallel/64` used to lose to
    /// `par_seq/64`. The partition itself is kept (inline replay still
    /// uses the kernelized cones, which beat interpreted dispatch), so
    /// changing the floor does not drop cached plans. Default 128.
    ///
    /// # Panics
    ///
    /// Panics if called during an active propagation cycle.
    pub fn set_parallel_cone_min_steps(&mut self, min_steps: usize) {
        assert!(self.state.is_none(), "cannot toggle mid-propagation");
        self.par_cone_min_steps = min_steps;
    }

    /// The per-task pool admission floor
    /// ([`Network::set_parallel_cone_min_steps`]).
    pub fn parallel_cone_min_steps(&self) -> usize {
        self.par_cone_min_steps
    }

    /// Number of cones in `var`'s cached parallel partition: `None` if
    /// there is no current plan or the plan has no partition (below the
    /// size threshold, single connected component, or a kind without a
    /// parallel kernel). Exposed for tests and benches to assert which
    /// path a replay takes.
    pub fn plan_parallel_cones(&self, var: VarId) -> Option<usize> {
        match self.plans.get(var.index()) {
            Some(PlanSlot::Ready(p)) if p.generation == self.structure_generation => {
                p.par.as_ref().map(|pp| match &pp.exec {
                    crate::par::ParExec::Cones(cones) => cones.len(),
                    // A wavefront is one cone, pipelined.
                    crate::par::ParExec::Wave(_) => 1,
                })
            }
            _ => None,
        }
    }

    /// Diagnostic detail for `var`'s cached parallel partition, for the
    /// inspector: cone count, wavefront layer depth (1 for independent
    /// cones), the executing-step width of the costliest pool task, and
    /// how many tasks were stolen during the most recent committed
    /// parallel replay. `None` when there is no current partitioned plan.
    pub fn plan_par_detail(&self, var: VarId) -> Option<PlanParDetail> {
        match self.plans.get(var.index()) {
            Some(PlanSlot::Ready(p)) if p.generation == self.structure_generation => {
                p.par.as_ref().map(|pp| {
                    let (cones, layers) = match &pp.exec {
                        crate::par::ParExec::Cones(cones) => (cones.len(), 1),
                        crate::par::ParExec::Wave(w) => (1, w.layers.len()),
                    };
                    PlanParDetail {
                        cones,
                        layers,
                        max_task_exec: pp.max_task_exec as usize,
                        last_stolen: pp.last_stolen,
                    }
                })
            }
            _ => None,
        }
    }

    /// The plan-cache entry for `var`, accounting for staleness: a stale
    /// entry (compiled under an older structure generation) reads as
    /// [`PlanStatus::NotCompiled`].
    pub fn plan_status(&self, var: VarId) -> PlanStatus {
        match self.plans.get(var.index()) {
            Some(PlanSlot::Ready(p)) if p.generation == self.structure_generation => {
                PlanStatus::Ready {
                    steps: p.ops.len(),
                    checks: p.n_checks as usize,
                }
            }
            Some(PlanSlot::Uncompilable(g)) if *g == self.structure_generation => {
                PlanStatus::Uncompilable
            }
            _ => PlanStatus::NotCompiled,
        }
    }

    /// Monotone counter of structural edits; a compiled plan is valid only
    /// while this matches the generation it was compiled under. Exposed for
    /// invalidation tests.
    pub fn structure_generation(&self) -> u64 {
        self.structure_generation
    }

    /// Drops every cached plan and subscription without counting
    /// invalidations — the knob-change path (thread budget, size floor,
    /// caching off), where the drop is a reconfiguration, not a
    /// structural edit.
    fn drop_all_plans(&mut self) {
        self.plans.clear();
        self.plan_subs.clear();
        self.plan_tokens.clear();
    }

    /// Evicts the cached plan (or `Uncompilable` memo) of every root
    /// subscribed to any of `touched` — the O(touched) replacement for
    /// the global generation bump on structural edits. The whole
    /// subscription list of a touched variable drains: every live
    /// subscriber must die, and stale tokens are garbage to drop anyway.
    fn invalidate_plans_touching(&mut self, touched: &[VarId]) {
        if !self.plan_caching {
            return;
        }
        for &v in touched {
            let Some(list) = self.plan_subs.get_mut(v.index()) else {
                continue;
            };
            for (root, token) in std::mem::take(list) {
                let rix = root as usize;
                if self.plan_tokens.get(rix).copied() != Some(token) {
                    continue; // stale subscription from an evicted plan
                }
                self.plan_tokens[rix] = 0;
                if let Some(slot @ (PlanSlot::Ready(_) | PlanSlot::Uncompilable(_))) =
                    self.plans.get_mut(rix)
                {
                    *slot = PlanSlot::Absent;
                    self.stats.plan_cache_invalidations += 1;
                }
            }
        }
    }

    /// Registers `root`'s freshly compiled (or refused) plan against its
    /// footprint, so a structural edit touching any footprint variable
    /// evicts it. Per-variable lists dedup by root, bounding their length
    /// by the number of live subscribing roots.
    fn subscribe_plan(&mut self, root: VarId, footprint: &mut Vec<VarId>) {
        let token = self.next_plan_token;
        self.next_plan_token += 1;
        let rix = root.index();
        if self.plan_tokens.len() <= rix {
            self.plan_tokens.resize(rix + 1, 0);
        }
        self.plan_tokens[rix] = token;
        footprint.sort_unstable();
        footprint.dedup();
        for &v in footprint.iter() {
            let ix = v.index();
            if self.plan_subs.len() <= ix {
                self.plan_subs.resize_with(ix + 1, Vec::new);
            }
            let list = &mut self.plan_subs[ix];
            match list.iter_mut().find(|(r, _)| *r as usize == rix) {
                Some(e) => e.1 = token,
                None => list.push((rix as u32, token)),
            }
        }
    }

    /// Looks up (or compiles) the propagation plan for `var`, moving a
    /// ready plan out of its slot — [`Network::run_plan`] puts it back.
    /// `None` means the cone is uncompilable: take the agenda path.
    fn plan_for(&mut self, var: VarId) -> Option<Box<PropPlan>> {
        let ix = var.index();
        if ix >= self.plans.len() {
            self.plans.resize_with(ix + 1, || PlanSlot::Absent);
        }
        match &self.plans[ix] {
            PlanSlot::Uncompilable(g) if *g == self.structure_generation => return None,
            PlanSlot::Ready(p) if p.generation == self.structure_generation => {
                self.stats.plan_cache_hits += 1;
                let PlanSlot::Ready(p) = std::mem::replace(&mut self.plans[ix], PlanSlot::Absent)
                else {
                    unreachable!("matched Ready above");
                };
                return Some(p);
            }
            PlanSlot::Absent => {}
            _ => {
                // A cached verdict from an older generation (an agenda
                // redefinition or structural rollback bumped the global
                // counter): discard it.
                self.stats.plan_cache_invalidations += 1;
                self.plans[ix] = PlanSlot::Absent;
                if let Some(t) = self.plan_tokens.get_mut(ix) {
                    *t = 0;
                }
            }
        }
        self.stats.plan_compiles += 1;
        let (plan, mut footprint) = self.compile_plan(var);
        // Subscribe even a refusal: an edit touching what the simulation
        // dispatched may flip the verdict, so the memo must die with it.
        self.subscribe_plan(var, &mut footprint);
        match plan {
            // A fresh compile is not a cache hit; the plan lands in the
            // slot after this first execution.
            Some(plan) => Some(Box::new(plan)),
            None => {
                self.plans[ix] = PlanSlot::Uncompilable(self.structure_generation);
                None
            }
        }
    }

    /// Compiles the consequence-closure of `root` into a flat plan by
    /// simulating the agenda interpreter's discovery under the all-change
    /// assumption (every planned write is treated as a value change).
    ///
    /// Refuses (`None`) whenever replay could diverge from the interpreter:
    ///
    /// - a dispatched kind does not implement
    ///   [`ConstraintKind::planned_writes`] (write-set unknown statically);
    /// - a write targets the root or an already-written variable
    ///   (multi-writer cones re-order under runtime value pruning, and the
    ///   root pin / one-value-change rule needs per-step bookkeeping);
    /// - a duplicate schedule attempt occurs after the drain phase has
    ///   begun (cross-scheduled dataflow: runtime pruning could change
    ///   which sighting wins the dedup, re-ordering the drain);
    /// - the simulation exceeds a safety cap on steps.
    ///
    /// Alongside the verdict, returns the *footprint*: the root plus the
    /// arguments of every constraint the simulation dispatched — the
    /// variables a structural edit must touch to change this plan's
    /// shape. Collected on refusals too (the partial footprint covers
    /// everything the refusal depended on), with one conservative gap:
    /// a cap-exceeded refusal can also be flipped by *growing* the
    /// network elsewhere (the cap scales with constraint count), which
    /// no footprint captures; such a memo persists until a footprint
    /// edit or a global bump — a missed optimization, never an error.
    fn compile_plan(&self, root: VarId) -> (Option<PropPlan>, Vec<VarId>) {
        let mut footprint = vec![root];
        let plan = self.compile_plan_inner(root, &mut footprint);
        (plan, footprint)
    }

    fn compile_plan_inner(&self, root: VarId, footprint: &mut Vec<VarId>) -> Option<PropPlan> {
        let cap = 64 + 8 * self.constraints.len();
        let mut ops: Vec<PlanOp> = Vec::new();
        let mut cids: Vec<ConstraintId> = Vec::new();
        let mut changed: Vec<Option<VarId>> = Vec::new();
        let mut kinds: Vec<Rc<dyn ConstraintKind>> = Vec::new();
        let mut entry_of: Vec<u32> = Vec::new();
        // Simulated agenda entries, mirroring the scheduler's dedup domain:
        // a sighting dedups only against a *queued* (un-popped) entry with
        // the same `(constraint, variable)` key; once popped, a later
        // sighting opens a fresh entry with its own liveness index.
        let mut entries: Vec<((ConstraintId, Option<VarId>), bool)> = Vec::new();
        let live_entry = |entries: &[((ConstraintId, Option<VarId>), bool)],
                          key: (ConstraintId, Option<VarId>)| {
            entries.iter().rposition(|(k, popped)| *k == key && !popped)
        };
        let mut checks_seen: std::collections::HashSet<ConstraintId> =
            std::collections::HashSet::new();
        // Footprint dedup: a constraint's args enter the footprint once,
        // on its first sighting — a fan-in hub is encountered once per
        // input, and extending per encounter would cost O(fan²) pushes.
        let mut fp_seen = vec![false; self.constraints.len()];
        let mut written: Vec<VarId> = vec![root];
        let mut pending: Vec<(ConstraintId, VarId)> = Vec::new();
        // The cloned scheduler is empty (agendas never leak between
        // cycles) but keeps the declared priorities, so the simulated
        // drain order matches the interpreter's exactly.
        let mut sched = self.scheduler.clone();
        let mut ran_scheduled = false;
        for &cid in self.vars[root.index()].constraints.iter().rev() {
            pending.push((cid, root));
        }
        loop {
            if ops.len() > cap {
                return None;
            }
            // Mirror `run_cycle`: drain the depth-first stack, then the
            // agendas by priority.
            if let Some((cid, cvar)) = pending.pop() {
                // Mirror `dispatch`.
                let d = &self.constraints[cid.index()];
                if !d.active || !d.enabled {
                    continue;
                }
                if !std::mem::replace(&mut fp_seen[cid.index()], true) {
                    footprint.extend_from_slice(&d.args);
                }
                let kind = Rc::clone(&d.kind);
                let writes = kind.planned_writes(self, cid, Some(cvar))?;
                checks_seen.insert(cid);
                if !kind.should_activate(self, cid, cvar) {
                    ops.push(PlanOp::NoActivate);
                    cids.push(cid);
                    changed.push(Some(cvar));
                    kinds.push(kind);
                    entry_of.push(u32::MAX);
                    continue;
                }
                match kind.activation() {
                    Activation::Immediate => {
                        ops.push(PlanOp::Immediate);
                        cids.push(cid);
                        changed.push(Some(cvar));
                        kinds.push(Rc::clone(&kind));
                        entry_of.push(u32::MAX);
                        for &w in &writes {
                            if w == root || written.contains(&w) {
                                return None; // multi-writer cone
                            }
                            written.push(w);
                            for &c2 in self.vars[w.index()].constraints.iter().rev() {
                                if c2 != cid {
                                    pending.push((c2, w));
                                }
                            }
                        }
                    }
                    Activation::Scheduled(agenda) => {
                        let entry_var = kind.schedules_with_variable().then_some(cvar);
                        let key = (cid, entry_var);
                        if sched.schedule(agenda, cid, entry_var) {
                            ops.push(PlanOp::ScheduleNew);
                            entries.push((key, false));
                            entry_of.push((entries.len() - 1) as u32);
                        } else {
                            if ran_scheduled {
                                return None; // cross-scheduled dataflow
                            }
                            ops.push(PlanOp::ScheduleDup);
                            let e = live_entry(&entries, key).expect("dup implies queued entry");
                            entry_of.push(e as u32);
                        }
                        cids.push(cid);
                        changed.push(Some(cvar));
                        kinds.push(kind);
                    }
                }
            } else if let Some((cid, entry_var)) = sched.pop_highest() {
                // Constraints stay active/enabled mid-simulation (edits are
                // barred mid-cycle and invalidate the plan otherwise), so
                // the interpreter's liveness re-check is vacuous here.
                ran_scheduled = true;
                if !std::mem::replace(&mut fp_seen[cid.index()], true) {
                    footprint.extend_from_slice(&self.constraints[cid.index()].args);
                }
                let kind = Rc::clone(&self.constraints[cid.index()].kind);
                let writes = kind.planned_writes(self, cid, entry_var)?;
                let e = live_entry(&entries, (cid, entry_var)).expect("pop implies queued entry");
                entries[e].1 = true;
                ops.push(PlanOp::RunScheduled);
                cids.push(cid);
                changed.push(entry_var);
                kinds.push(kind);
                entry_of.push(e as u32);
                for &w in &writes {
                    if w == root || written.contains(&w) {
                        return None;
                    }
                    written.push(w);
                    for &c2 in self.vars[w.index()].constraints.iter().rev() {
                        if c2 != cid {
                            pending.push((c2, w));
                        }
                    }
                }
            } else {
                break;
            }
        }
        let mut plan = PropPlan {
            generation: self.structure_generation,
            ops,
            cids,
            changed,
            kinds,
            entry_of,
            n_entries: entries.len() as u32,
            n_checks: checks_seen.len() as u32,
            par: None,
        };
        if self.parallel_threads > 1 {
            // Cone partitioning is only worth the compile cost when a
            // worker pool exists to exploit it; the sequential plan is
            // complete without it.
            plan.par = par::build_par(self, root, &plan, self.par_min_exec_steps);
        }
        Some(plan)
    }

    /// Executes a compiled plan: assigns the root, replays the recorded
    /// steps (no discovery, no queues, no hashing), sweeps the visited
    /// constraints, and commits or restores — observationally equivalent
    /// to the agenda path on plannable cones, including the statistics.
    ///
    /// The plan is the *all-change* superset of the interpreter's work;
    /// replay recovers the interpreter's value pruning exactly through the
    /// epoch-stamped change marks: a step runs only if its trigger
    /// variable actually changed this cycle (for drain-phase runs, only if
    /// some schedule sighting of its agenda entry was live). A region the
    /// interpreter would never have reached — e.g. one holding a
    /// pre-existing inconsistency behind an unchanged variable — is
    /// skipped here too, neither re-propagated nor swept.
    fn run_plan(
        &mut self,
        var: VarId,
        value: Value,
        justification: Justification,
        plan: Box<PropPlan>,
    ) -> Result<(), Violation> {
        self.begin_cycle(false);
        let epoch = {
            // `planned` routes `propagate_set` to the flat bookkeeping;
            // `compiled` suppresses activation discovery.
            let n_vars = self.vars.len();
            let n_cids = self.constraints.len();
            let st = self.state.as_mut().expect("cycle active");
            st.planned = true;
            st.compiled = true;
            st.mark_epoch = st.mark_epoch.wrapping_add(1);
            if st.mark_epoch == 0 {
                // Epoch wrapped: stale stamps could read as current, so
                // reset the tables once every 2^32 planned cycles.
                st.var_marks.iter_mut().for_each(|m| *m = 0);
                st.cid_marks.iter_mut().for_each(|m| *m = 0);
                st.entry_marks.iter_mut().for_each(|m| *m = 0);
                st.mark_epoch = 1;
            }
            // Growth-only resizes: allocation happens while the tables
            // warm up to the network's size, then never again.
            if st.var_marks.len() < n_vars {
                st.var_marks.resize(n_vars, 0);
            }
            if st.cid_marks.len() < n_cids {
                st.cid_marks.resize(n_cids, 0);
            }
            if st.entry_marks.len() < plan.n_entries as usize {
                st.entry_marks.resize(plan.n_entries as usize, 0);
            }
            st.mark_epoch
        };
        self.save_visited_planned(var);
        self.assign_raw(var, value, justification);
        {
            // The externally assigned root always dispatches its cone
            // (`set` pushes activations unconditionally, equal value or
            // not), so it is live by fiat.
            let st = self.state.as_mut().expect("cycle active");
            st.var_marks[var.index()] = epoch;
        }
        let mut result = Ok(());
        // Zipped slice walk: the plan is owned (moved out of its slot), so
        // iterating it borrows nothing from `self` and the per-step
        // arena-style indexing — and its bounds checks — disappears.
        let steps = plan
            .ops
            .iter()
            .zip(&plan.cids)
            .zip(&plan.changed)
            .zip(&plan.kinds)
            .zip(&plan.entry_of);
        for ((((&op, &cid), &chg), kind), &entry) in steps {
            if op == PlanOp::RunScheduled {
                let st = self.state.as_mut().expect("cycle active");
                if st.entry_marks[entry as usize] != epoch {
                    continue; // never actually scheduled this cycle
                }
                // Marked subsumed after its schedule sighting: prune at
                // drain time, mirroring the agenda pop-arm skip.
                if self.n_subsumed != 0 && self.subsumed.get(cid.index()).copied().unwrap_or(false)
                {
                    self.stats.subsumed_pruned += 1;
                    continue;
                }
                self.stats.scheduled_runs += 1;
                self.stats.inferences += 1;
                result = kind.infer(self, cid, chg);
            } else {
                let trigger = chg.expect("activation steps carry their trigger");
                let st = self.state.as_mut().expect("cycle active");
                if st.var_marks[trigger.index()] != epoch {
                    continue; // value-pruned: the interpreter never dispatches
                }
                // Runtime-subsumed: prune before the visited record and
                // activation count, exactly where `dispatch` prunes.
                if self.n_subsumed != 0 && self.subsumed.get(cid.index()).copied().unwrap_or(false)
                {
                    self.stats.subsumed_pruned += 1;
                    continue;
                }
                let st = self.state.as_mut().expect("cycle active");
                let cix = cid.index();
                if st.cid_marks[cix] != epoch {
                    st.cid_marks[cix] = epoch;
                    st.visited_constraints.push(cid);
                }
                self.stats.activations += 1;
                match op {
                    PlanOp::Immediate => {
                        self.stats.inferences += 1;
                        result = kind.infer(self, cid, Some(trigger));
                    }
                    PlanOp::NoActivate => {}
                    _ => {
                        // Schedule sighting: the first live one per agenda
                        // entry is the enqueue (and unlocks the entry's
                        // drain-phase run); later live ones are dedups.
                        if st.entry_marks[entry as usize] != epoch {
                            st.entry_marks[entry as usize] = epoch;
                            self.stats.schedules += 1;
                        }
                    }
                }
            }
            if result.is_err() {
                break;
            }
        }
        let result = result.and_then(|()| self.final_check());
        let state = self.state.take().expect("cycle active");
        let out = match result {
            Ok(()) => Ok(()),
            Err(v) => {
                self.restore(&state);
                // Nothing was queued, so the agendas need no clearing.
                self.stats.violations += 1;
                if !state.silent {
                    let handlers = self.handlers.clone();
                    for h in &handlers {
                        h(self, &v);
                    }
                }
                Err(v)
            }
        };
        self.retire_state(state);
        self.plans[var.index()] = PlanSlot::Ready(plan);
        out
    }

    /// Records `var`'s pre-image on the flat planned-cycle list. Plans are
    /// single-writer, so each variable is pushed at most once — no probe,
    /// no hashing.
    fn save_visited_planned(&mut self, var: VarId) {
        let Network { slots, state, .. } = self;
        let st = state.as_mut().expect("cycle active");
        let s = &slots[var.index()];
        st.visited_list.push((
            var,
            SavedVar {
                value: s.value.clone(),
                justification: s.justification.clone(),
            },
        ));
    }

    /// Replays `plan`'s parallel body concurrently: writes the root,
    /// launches its cones (or its wavefront layers) on the worker pool
    /// ([`crate::par`]), merges the final-check sets in sequential visit
    /// order, and commits (journal entries, statistics) on success.
    /// Returns `false` — with *every* write restored — whenever the
    /// replay would deviate from the sequential outcome (an overwrite
    /// denial inside a cone, or an unsatisfied visited constraint): the
    /// caller then falls back to [`Network::run_plan`], which reproduces
    /// the violation, its statistics and its handler calls exactly.
    ///
    /// Replay-time cost gate: when the plan's costliest pool task
    /// executes fewer steps than [`Network::set_parallel_cone_min_steps`],
    /// the kernels run inline on this thread (`threads = 1` to the pool)
    /// — same code path, same counters, no hand-off latency.
    fn run_plan_parallel(
        &mut self,
        root: VarId,
        value: &Value,
        justification: &Justification,
        plan: &mut PropPlan,
    ) -> bool {
        debug_assert!(self.state.is_none(), "parallel replay outside a cycle");
        // Root pre-image and write, mirroring `assign_raw`'s journal-first
        // order. The root entry is harmless if we abort: its pre-image is
        // exact, and the sequential rerun's first-write dedup skips it.
        self.journal_record_value(root);
        let (root_pre_value, root_pre_just) = {
            let s = &mut self.slots[root.index()];
            (
                std::mem::replace(&mut s.value, value.clone()),
                std::mem::replace(&mut s.justification, justification.clone()),
            )
        };
        let par_plan = plan.par.as_mut().expect("caller checked partition");
        let threads = if (par_plan.max_task_exec as usize) < self.par_cone_min_steps {
            1
        } else {
            self.parallel_threads
        };
        let view = SlotsView::new(self.slots.as_mut_ptr(), self.slots.len());
        let strengths: &[u8] = &par_plan.strengths;
        let is_wave;
        let n_cones;
        let stolen;
        let failed;
        let mut visited: Vec<(u32, ConstraintId)> = Vec::new();
        match &mut par_plan.exec {
            par::ParExec::Cones(cones) => {
                is_wave = false;
                n_cones = cones.len() as u64;
                {
                    let tasks: Vec<par::ConeTask> = cones
                        .iter_mut()
                        .map(|c| par::ConeTask::new(c, strengths))
                        .collect();
                    // SAFETY: each task index runs exactly once; cones
                    // have disjoint write sets and the main thread stays
                    // out of the slot arena while the pool holds the view.
                    stolen =
                        par::pool_run(tasks.len(), threads, &|t| unsafe { tasks[t].run(&view) });
                }
                failed = cones.iter().any(|c| c.scratch.failed);
                if !failed {
                    // Merged final check in the sequential replay's visit
                    // order (cones record each constraint's first live
                    // sighting with its plan index; the sort restores the
                    // global order).
                    visited.extend(cones.iter().flat_map(|c| c.scratch.visited.iter().copied()));
                }
            }
            par::ParExec::Wave(wave) => {
                is_wave = true;
                n_cones = 1;
                // SAFETY: layer barriers inside `run_wave` order the
                // chunks; the main thread stays out of the slot arena.
                stolen = par::run_wave(wave, &view, strengths, threads);
                failed = wave.failed();
                if !failed {
                    wave.collect_visited(&mut visited);
                }
            }
        }
        let mut ok = !failed;
        if ok {
            visited.sort_unstable_by_key(|&(ix, _)| ix);
            ok = visited.iter().all(|&(_, cid)| {
                let d = &self.constraints[cid.index()];
                !d.active || !d.enabled || d.kind.is_satisfied(self, cid)
            });
        }
        let par_plan = plan.par.as_mut().expect("checked above");
        if !ok {
            let slots = &mut self.slots;
            for (_, pre) in par_plan.tasks_mut() {
                for (wvar, wvalue, wjust) in pre.drain(..) {
                    let s = &mut slots[wvar.index()];
                    s.value = wvalue;
                    s.justification = wjust;
                }
            }
            let s = &mut slots[root.index()];
            s.value = root_pre_value;
            s.justification = root_pre_just;
            return false;
        }
        // Commit: drain the pre-images into the journal in plan order
        // (cone order for a partition, chunk order for a wavefront —
        // both are plan order; first-write-wins, the same inline
        // journaling `propagate_set` performs) and fold the counters
        // into the statistics at the same totals the sequential replay
        // would have produced.
        let mut assignments = 1; // the root write
        let mut counters = crate::par::ConeCounters::default();
        for (c, pre) in par_plan.tasks_mut() {
            counters.activations += c.activations;
            counters.inferences += c.inferences;
            counters.schedules += c.schedules;
            counters.scheduled_runs += c.scheduled_runs;
            assignments += c.assignments;
            for (wvar, wvalue, wjust) in pre.drain(..) {
                if let Some(j) = &mut self.journal {
                    let ix = wvar.index();
                    if j.seen.len() <= ix {
                        j.seen.resize(ix + 1, false);
                    }
                    if !j.seen[ix] {
                        j.seen[ix] = true;
                        j.entries.push(JournalEntry::Value {
                            var: wvar,
                            value: wvalue,
                            justification: wjust,
                        });
                    }
                }
            }
        }
        self.stats.activations += counters.activations;
        self.stats.inferences += counters.inferences;
        self.stats.schedules += counters.schedules;
        self.stats.scheduled_runs += counters.scheduled_runs;
        self.stats.assignments += assignments;
        self.stats.cycles += 1;
        self.par_stats.plan_replays_parallel += 1;
        self.par_stats.cones_executed += n_cones;
        if is_wave {
            self.par_stats.plan_replays_wavefront += 1;
        }
        self.par_stats.cones_stolen += stolen;
        par_plan.last_stolen = stolen;
        true
    }

    /// Applies a sequence of external assignments in order. With
    /// parallel replay enabled ([`Network::set_parallel_threads`]),
    /// *consecutive* roots whose cached partitioned plans touch
    /// pairwise-disjoint variable sets are replayed overlapped — all
    /// their cones interleave on one worker-pool job — which is
    /// observationally identical to applying them one at a time
    /// (disjointness leaves no write order to observe).
    ///
    /// # Errors
    ///
    /// On a violation, returns the index of the offending assignment
    /// with the violation; assignments before it stay committed, exactly
    /// as a sequential loop of [`Network::set`] calls would leave them.
    pub fn set_all(
        &mut self,
        mut sets: Vec<(VarId, Value, Justification)>,
    ) -> Result<(), (usize, Violation)> {
        let mut i = 0;
        while i < sets.len() {
            if self.parallel_threads > 1 && sets.len() - i >= 2 {
                let n = self.try_overlapped(&sets[i..]);
                if n >= 2 {
                    i += n;
                    continue;
                }
            }
            let (var, value, justification) =
                std::mem::replace(&mut sets[i], (VarId(0), Value::Nil, Justification::Unset));
            self.set(var, value, justification).map_err(|v| (i, v))?;
            i += 1;
        }
        Ok(())
    }

    /// Admits a maximal prefix of `window` for overlapped replay and
    /// runs it; returns how many assignments were committed (0 = the
    /// group did not form or aborted — the caller's sequential loop
    /// takes over and reproduces the exact per-root outcomes).
    fn try_overlapped(&mut self, window: &[(VarId, Value, Justification)]) -> usize {
        if !self.enabled || !self.plan_caching || self.step_limit.is_some() {
            return 0;
        }
        debug_assert!(self.state.is_none(), "overlapped replay outside a cycle");
        // Plans are *peeked*, not `plan_for`'d: cache-hit accounting
        // happens only if the group commits (an aborted group's
        // sequential rerun counts its own hits).
        let mut group: Vec<(VarId, Box<PropPlan>)> = Vec::new();
        let mut footprint: Vec<u32> = Vec::new();
        for (var, _, justification) in window {
            if matches!(justification, Justification::Propagated { .. }) {
                break; // leave forged-record validation to the sequential path
            }
            let ix = var.index();
            // Only cone partitions overlap: a wavefront plan's layer
            // barriers would serialize the whole group, so its root
            // replays alone via the single-root path.
            let ready = matches!(
                self.plans.get(ix),
                Some(PlanSlot::Ready(p))
                    if p.generation == self.structure_generation
                        && matches!(
                            p.par.as_deref(),
                            Some(par::ParPlan { exec: par::ParExec::Cones(_), .. })
                        )
            );
            if !ready {
                break;
            }
            {
                let PlanSlot::Ready(p) = &self.plans[ix] else {
                    unreachable!("matched Ready above");
                };
                let refs = &p.par.as_ref().expect("matched partition above").refs;
                // A duplicate root also fails here: every plan's refs
                // include its root.
                if !par::ParPlan::refs_disjoint(&footprint, refs) {
                    break;
                }
                par::ParPlan::merge_refs(&mut footprint, refs);
            }
            let PlanSlot::Ready(p) = std::mem::replace(&mut self.plans[ix], PlanSlot::Absent)
            else {
                unreachable!("matched Ready above");
            };
            group.push((*var, p));
        }
        if group.len() < 2 {
            for (var, p) in group {
                self.plans[var.index()] = PlanSlot::Ready(p);
            }
            return 0;
        }
        let k = group.len();
        // Root pre-images and writes (journal first, like `assign_raw`).
        let mut root_pre: Vec<(Value, Justification)> = Vec::with_capacity(k);
        for (j, (var, _)) in group.iter().enumerate() {
            let (_, value, justification) = &window[j];
            self.journal_record_value(*var);
            let s = &mut self.slots[var.index()];
            root_pre.push((
                std::mem::replace(&mut s.value, value.clone()),
                std::mem::replace(&mut s.justification, justification.clone()),
            ));
        }
        // Replay-time cost gate over the whole group: if even the
        // costliest task in the group is below the floor, run the
        // merged job inline (the group still commits as one batch).
        let group_max_exec = group
            .iter()
            .map(|(_, p)| {
                p.par
                    .as_ref()
                    .expect("admitted with partition")
                    .max_task_exec
            })
            .max()
            .unwrap_or(0);
        let threads = if (group_max_exec as usize) < self.par_cone_min_steps {
            1
        } else {
            self.parallel_threads
        };
        let view = SlotsView::new(self.slots.as_mut_ptr(), self.slots.len());
        let stolen;
        {
            let tasks: Vec<par::ConeTask> = group
                .iter_mut()
                .flat_map(|(_, plan)| {
                    let par::ParPlan {
                        exec, strengths, ..
                    } = &mut **plan.par.as_mut().expect("admitted with partition");
                    let par::ParExec::Cones(cones) = exec else {
                        unreachable!("admitted cone partitions only");
                    };
                    let strengths: &[u8] = strengths;
                    cones
                        .iter_mut()
                        .map(move |c| par::ConeTask::new(c, strengths))
                })
                .collect();
            // SAFETY: pairwise-disjoint refs extend the per-plan cone
            // disjointness across the whole group.
            stolen = par::pool_run(tasks.len(), threads, &|t| unsafe { tasks[t].run(&view) });
        }
        fn group_cones(plan: &PropPlan) -> &Vec<par::ParCone> {
            let par::ParExec::Cones(cones) =
                &plan.par.as_ref().expect("admitted with partition").exec
            else {
                unreachable!("admitted cone partitions only");
            };
            cones
        }
        let mut ok = !group
            .iter()
            .any(|(_, plan)| group_cones(plan).iter().any(|c| c.scratch.failed));
        if ok {
            let mut visited: Vec<(u32, ConstraintId)> = Vec::new();
            'plans: for (_, plan) in &group {
                visited.clear();
                for c in group_cones(plan) {
                    visited.extend(c.scratch.visited.iter().copied());
                }
                visited.sort_unstable_by_key(|&(ix, _)| ix);
                for &(_, cid) in &visited {
                    let d = &self.constraints[cid.index()];
                    if d.active && d.enabled && !d.kind.is_satisfied(self, cid) {
                        ok = false;
                        break 'plans;
                    }
                }
            }
        }
        if !ok {
            // Unwind the whole group; the caller's sequential loop
            // reproduces the exact per-root outcomes (statistics,
            // violation index, handler calls). Non-violating roots will
            // typically re-commit via the single-root parallel path.
            for (_, plan) in group.iter_mut() {
                let p = plan.par.as_mut().expect("admitted with partition");
                for (_, pre) in p.tasks_mut() {
                    for (wvar, wvalue, wjust) in pre.drain(..) {
                        let s = &mut self.slots[wvar.index()];
                        s.value = wvalue;
                        s.justification = wjust;
                    }
                }
            }
            for ((var, _), (value, justification)) in group.iter().zip(root_pre) {
                let s = &mut self.slots[var.index()];
                s.value = value;
                s.justification = justification;
            }
            for (var, p) in group {
                self.plans[var.index()] = PlanSlot::Ready(p);
            }
            return 0;
        }
        // Commit every root: same journal entries and statistics as k
        // sequential cached replays.
        for (_, plan) in group.iter_mut() {
            let n_cones = group_cones(plan).len() as u64;
            let p = plan.par.as_mut().expect("admitted with partition");
            p.last_stolen = stolen; // group total: the job was merged
            let mut assignments = 1; // the root write
            let mut counters = crate::par::ConeCounters::default();
            for (c, pre) in p.tasks_mut() {
                counters.activations += c.activations;
                counters.inferences += c.inferences;
                counters.schedules += c.schedules;
                counters.scheduled_runs += c.scheduled_runs;
                assignments += c.assignments;
                for (wvar, wvalue, wjust) in pre.drain(..) {
                    if let Some(j) = &mut self.journal {
                        let ix = wvar.index();
                        if j.seen.len() <= ix {
                            j.seen.resize(ix + 1, false);
                        }
                        if !j.seen[ix] {
                            j.seen[ix] = true;
                            j.entries.push(JournalEntry::Value {
                                var: wvar,
                                value: wvalue,
                                justification: wjust,
                            });
                        }
                    }
                }
            }
            self.stats.activations += counters.activations;
            self.stats.inferences += counters.inferences;
            self.stats.schedules += counters.schedules;
            self.stats.scheduled_runs += counters.scheduled_runs;
            self.stats.assignments += assignments;
            self.stats.cycles += 1;
            self.stats.plan_cache_hits += 1;
            self.par_stats.plan_replays_parallel += 1;
            self.par_stats.cones_executed += n_cones;
        }
        self.par_stats.cones_stolen += stolen;
        for (var, p) in group {
            self.plans[var.index()] = PlanSlot::Ready(p);
        }
        k
    }

    // ------------------------------------------------------------------
    // Engine internals
    // ------------------------------------------------------------------

    fn assign_raw(&mut self, var: VarId, value: Value, justification: Justification) {
        self.journal_record_value(var);
        // A non-refining (widening) write may break the entailment witness
        // of a subsumption mark watching this variable.
        let widened =
            self.n_subsumed != 0 && !crate::domain::refines(&self.slots[var.index()].value, &value);
        let s = &mut self.slots[var.index()];
        s.value = value;
        s.justification = justification;
        self.stats.assignments += 1;
        if widened {
            self.revalidate_subsumed_watchers(var);
        }
    }

    /// Marks the externally assigned root of a cycle as having consumed
    /// its full change budget: propagation must never overwrite the value
    /// the user just set (this is what turns the Fig. 4.9 cycle into a
    /// violation at the first wrap-around).
    fn pin_root(&mut self, var: VarId) {
        let limit = self.value_change_limit;
        self.state
            .as_mut()
            .expect("cycle active")
            .change_counts
            .insert(var, limit);
    }

    /// Charges one propagation step against the cycle's budget.
    fn charge_step(&mut self) -> Result<(), Violation> {
        let st = self.state.as_mut().expect("cycle active");
        st.steps += 1;
        match self.step_limit {
            Some(limit) if st.steps > limit => Err(Violation::budget_exceeded(limit)),
            _ => Ok(()),
        }
    }

    fn save_visited(&mut self, var: VarId) {
        // Split borrow: the saved pre-image reads `vars` while the visited
        // map lives in `state`; probing before building the entry keeps
        // re-visits clone-free.
        let Network { slots, state, .. } = self;
        let st = state.as_mut().expect("cycle active");
        if st.visited_vars.contains_key(&var) {
            return;
        }
        let s = &slots[var.index()];
        st.visited_vars.insert(
            var,
            SavedVar {
                value: s.value.clone(),
                justification: s.justification.clone(),
            },
        );
    }

    /// Pushes `(constraint, var)` activations for every constraint of
    /// `var` except `exclude` (the source that just set it, Fig. 4.3), in
    /// reverse list order so the stack pops them first-to-last — the
    /// depth-first traversal of §4.2.
    fn push_activations(&mut self, var: VarId, exclude: Option<ConstraintId>) {
        // Split borrow: read the variable's constraint list straight out of
        // `vars` while pushing onto the stack in `state` — no clone of the
        // list on this per-assignment path.
        let Network { vars, state, .. } = self;
        let st = state.as_mut().expect("cycle active");
        if st.compiled {
            // Straight-line compiled execution evaluates constraints in a
            // precomputed order; no discovery.
            return;
        }
        for &cid in vars[var.index()].constraints.iter().rev() {
            if Some(cid) != exclude {
                st.pending.push((cid, var));
            }
        }
    }

    fn begin_cycle(&mut self, silent: bool) {
        debug_assert!(self.scheduler.is_empty(), "agendas leaked between cycles");
        // Reuse the previous cycle's (recycled) state so steady-state
        // propagation never reallocates its hash maps and stacks.
        let mut st = std::mem::take(&mut self.spare_state);
        st.silent = silent;
        self.state = Some(st);
        // The flip log is cycle-scoped: `restore` un-flips exactly the
        // subsumption marks this cycle records.
        self.subsumed_flips.clear();
        self.stats.cycles += 1;
    }

    /// Returns a finished cycle's state to the pool, dropping its contents
    /// but keeping allocated capacity for the next cycle.
    fn retire_state(&mut self, mut state: PropState) {
        state.recycle();
        self.spare_state = state;
    }

    /// Drains the depth-first stack, then the agendas by priority, until
    /// both are exhausted (the loop of Fig. 4.8).
    fn run_cycle(&mut self) -> Result<(), Violation> {
        loop {
            let next = self.state.as_mut().expect("cycle active").pending.pop();
            if let Some((cid, var)) = next {
                self.dispatch(cid, var)?;
            } else if let Some((cid, var)) = self.scheduler.pop_highest() {
                {
                    let d = &self.constraints[cid.index()];
                    if !d.active || !d.enabled {
                        continue;
                    }
                }
                // Subsumed after being scheduled: prune at pop time, the
                // same point the planned drain phase prunes.
                if self.n_subsumed != 0 && self.subsumed.get(cid.index()).copied().unwrap_or(false)
                {
                    self.stats.subsumed_pruned += 1;
                    continue;
                }
                self.charge_step()?;
                self.stats.scheduled_runs += 1;
                self.stats.inferences += 1;
                let kind = Rc::clone(&self.constraints[cid.index()].kind);
                kind.infer(self, cid, var)?;
            } else {
                return Ok(());
            }
        }
    }

    /// Delivers one `propagateVariable:` activation.
    fn dispatch(&mut self, cid: ConstraintId, changed: VarId) -> Result<(), Violation> {
        {
            let d = &self.constraints[cid.index()];
            if !d.active || !d.enabled {
                return Ok(());
            }
        }
        // Runtime-subsumed constraints are entailed: skip before any
        // step/activation accounting so planned replay (which prunes at
        // the same point) reports byte-identical statistics.
        if self.n_subsumed != 0 && self.subsumed.get(cid.index()).copied().unwrap_or(false) {
            self.stats.subsumed_pruned += 1;
            return Ok(());
        }
        self.charge_step()?;
        self.stats.activations += 1;
        {
            let st = self.state.as_mut().expect("cycle active");
            if st.visited_cset.insert(cid) {
                st.visited_constraints.push(cid);
            }
        }
        // `Rc::clone` of the kind handle: a refcount bump, not a clone of
        // the kind object — it detaches the borrow so `infer` can take
        // `&mut self`. The hot loop performs no allocating clones.
        let kind = Rc::clone(&self.constraints[cid.index()].kind);
        if !kind.should_activate(self, cid, changed) {
            return Ok(());
        }
        match kind.activation() {
            Activation::Immediate => {
                self.stats.inferences += 1;
                kind.infer(self, cid, Some(changed))
            }
            Activation::Scheduled(agenda) => {
                let entry_var = kind.schedules_with_variable().then_some(changed);
                if self.scheduler.schedule(agenda, cid, entry_var) {
                    self.stats.schedules += 1;
                }
                Ok(())
            }
        }
    }

    /// Final satisfaction sweep plus commit/restore (Figs. 4.6 and 4.10).
    fn finish_cycle(&mut self, result: Result<(), Violation>) -> Result<(), Violation> {
        let result = result.and_then(|()| self.final_check());
        let state = self.state.take().expect("cycle active");
        let out = match result {
            Ok(()) => Ok(()),
            Err(v) => {
                self.restore(&state);
                self.scheduler.clear();
                self.stats.violations += 1;
                if !state.silent {
                    let handlers = self.handlers.clone();
                    for h in &handlers {
                        h(self, &v);
                    }
                }
                Err(v)
            }
        };
        self.retire_state(state);
        out
    }

    fn final_check(&self) -> Result<(), Violation> {
        let st = self.state.as_ref().expect("cycle active");
        for &cid in &st.visited_constraints {
            let d = &self.constraints[cid.index()];
            if d.active && d.enabled && !d.kind.is_satisfied(self, cid) {
                let name = d.kind.kind_name().to_string();
                return Err(Violation::unsatisfied(cid).with_kind_name(name));
            }
        }
        Ok(())
    }

    fn restore(&mut self, state: &PropState) {
        for (&var, saved) in &state.visited_vars {
            // Keep the journal coherent even for variables that were only
            // seeded as visited, never written (no-op for written ones,
            // whose pre-image is already recorded).
            self.journal_record_value(var);
            let s = &mut self.slots[var.index()];
            s.value = saved.value.clone();
            s.justification = saved.justification.clone();
        }
        // Plan-driven cycles record pre-images on the flat list instead
        // (each variable at most once, so order is irrelevant).
        for (var, saved) in &state.visited_list {
            self.journal_record_value(*var);
            let s = &mut self.slots[var.index()];
            s.value = saved.value.clone();
            s.justification = saved.justification.clone();
        }
        // Un-flip every subsumption mark the failed cycle recorded, newest
        // first. `set_subsumed_bit` journals the restoration and skips
        // already-correct bits, so double replay (here and in batch
        // rollback) stays coherent.
        if !self.subsumed_flips.is_empty() {
            let mut flips = std::mem::take(&mut self.subsumed_flips);
            for &(cid, was) in flips.iter().rev() {
                self.set_subsumed_bit(cid, was);
            }
            flips.clear();
            self.subsumed_flips = flips;
        }
    }

    // ------------------------------------------------------------------
    // Runtime subsumption (domain propagators, DESIGN.md §5j)
    // ------------------------------------------------------------------

    /// Marks `cid` as runtime-subsumed: its propagator reported
    /// [`PropagateOutcome::Subsumed`](crate::PropagateOutcome), meaning the
    /// constraint is entailed by the current domains and can neither
    /// propagate nor fail again while they hold. Agenda dispatch and
    /// compiled-plan replay prune marked constraints (counted in
    /// [`Stats::subsumed_pruned`]); any watched variable widening clears
    /// the mark via [`ConstraintKind::still_subsumed`]. A no-op while
    /// subsumption is disabled ([`Network::set_subsumption`]).
    pub fn mark_subsumed(&mut self, cid: ConstraintId) {
        if !self.subsumption_enabled {
            return;
        }
        self.set_subsumed_bit(cid, true);
    }

    /// Whether `cid` currently carries a runtime subsumption mark.
    pub fn is_subsumed(&self, cid: ConstraintId) -> bool {
        self.subsumed.get(cid.index()).copied().unwrap_or(false)
    }

    /// Number of constraints currently marked subsumed.
    pub fn subsumed_count(&self) -> usize {
        self.n_subsumed
    }

    /// Enables or disables the runtime-subsumption machinery (enabled by
    /// default). Disabling clears every existing mark — journaled, so a
    /// batch rollback restores them — and makes later
    /// [`Network::mark_subsumed`] calls no-ops; benchmark twins use this
    /// to measure replay without pruning.
    pub fn set_subsumption(&mut self, on: bool) {
        self.subsumption_enabled = on;
        if !on && self.n_subsumed != 0 {
            for ix in 0..self.subsumed.len() {
                if self.subsumed[ix] {
                    self.set_subsumed_bit(ConstraintId(ix as u32), false);
                }
            }
        }
    }

    /// Flips one subsumption bit: lazily grows the bit table, maintains
    /// the population count, records the flip on the cycle-scoped log
    /// (for [`Network::restore`]) and in the open journal (for batch
    /// rollback). Idempotent: already-correct bits are left untouched.
    fn set_subsumed_bit(&mut self, cid: ConstraintId, to: bool) {
        let ix = cid.index();
        if ix >= self.subsumed.len() {
            if !to {
                return;
            }
            self.subsumed.resize(ix + 1, false);
        }
        let was = self.subsumed[ix];
        if was == to {
            return;
        }
        self.subsumed[ix] = to;
        if to {
            self.n_subsumed += 1;
        } else {
            self.n_subsumed -= 1;
        }
        self.subsumed_flips.push((cid, was));
        if let Some(j) = &mut self.journal {
            j.entries.push(JournalEntry::SubsumedChanged { cid, was });
        }
    }

    /// Re-checks every subsumed watcher of `var` after a non-refining
    /// (widening) write: each marked, active constraint is asked
    /// [`ConstraintKind::still_subsumed`] and unmarked when entailment no
    /// longer holds. Runs only when marks exist, on the pooled scratch
    /// list so the hot path never allocates in steady state.
    fn revalidate_subsumed_watchers(&mut self, var: VarId) {
        let mut scratch = std::mem::take(&mut self.subsumed_scratch);
        scratch.clear();
        scratch.extend(
            self.vars[var.index()]
                .constraints
                .iter()
                .copied()
                .filter(|&cid| self.is_subsumed(cid) && self.constraints[cid.index()].active),
        );
        for &cid in &scratch {
            let kind = Rc::clone(&self.constraints[cid.index()].kind);
            if !kind.still_subsumed(self, cid) {
                self.set_subsumed_bit(cid, false);
            }
        }
        self.subsumed_scratch = scratch;
    }

    /// Statistics hook for domain propagators: one successful domain
    /// tightening landed ([`Stats::domain_tightenings`]).
    pub(crate) fn count_domain_tightening(&mut self) {
        self.stats.domain_tightenings += 1;
    }

    /// Statistics hook for domain propagators: one domain wiped out to
    /// empty ([`Stats::wipeouts`]).
    pub(crate) fn count_wipeout(&mut self) {
        self.stats.wipeouts += 1;
    }

    /// Re-initialises an edited constraint (`reInitializeVariables` /
    /// `rePropagate`, Fig. 4.13): arguments are grouped as user-specified,
    /// constraint-dependent and other-independent, then each yet-unvisited
    /// argument asserts its value along the edited constraint, in that
    /// precedence order.
    fn reinitialize(&mut self, cid: ConstraintId) -> Result<(), Violation> {
        self.begin_cycle(false);
        // Three precedence passes over the (stable: edits are barred
        // mid-cycle) argument list, instead of cloning it and partitioning.
        let nargs = self.constraints[cid.index()].args.len();
        let mut ordered: Vec<VarId> = Vec::with_capacity(nargs);
        for wanted in 0..3u8 {
            for i in 0..nargs {
                let a = self.constraints[cid.index()].args[i];
                let class = match self.slots[a.index()].justification {
                    Justification::User => 0,
                    Justification::Propagated { .. } => 1,
                    _ => 2,
                };
                if class == wanted {
                    ordered.push(a);
                }
            }
        }
        let mut result = Ok(());
        for arg in ordered {
            let fresh = !self
                .state
                .as_ref()
                .expect("cycle active")
                .visited_vars
                .contains_key(&arg);
            if fresh {
                self.save_visited(arg);
                result = self.dispatch(cid, arg).and_then(|()| self.run_cycle());
                if result.is_err() {
                    break;
                }
            }
        }
        self.finish_cycle(result)
    }

    // ------------------------------------------------------------------
    // Dependency analysis (§4.2.4, Figs. 4.11–4.12)
    // ------------------------------------------------------------------

    /// All variables and constraints responsible for `var`'s current value:
    /// a backward traversal of the dependency graph (`antecedents:`,
    /// Fig. 4.11). The result includes `var` itself, in discovery order.
    pub fn antecedents(&self, var: VarId) -> (Vec<VarId>, Vec<ConstraintId>) {
        let mut vars = Vec::new();
        let mut cons = Vec::new();
        let mut seen_vars = std::collections::HashSet::new();
        let mut seen_cons = std::collections::HashSet::new();
        // Explicit work stack: dependency chains can be as deep as the
        // network is long, so recursion would overflow (see tests/scale.rs).
        let mut work = vec![var];
        while let Some(var) = work.pop() {
            if !seen_vars.insert(var) {
                continue;
            }
            vars.push(var);
            let just = &self.slots[var.index()].justification;
            if let Justification::Propagated { constraint, record } = just {
                let cid = *constraint;
                if seen_cons.insert(cid) {
                    cons.push(cid);
                }
                let kind = self.constraints[cid.index()].kind.clone();
                let record = record.clone();
                for &arg in self.constraints[cid.index()].args.iter().rev() {
                    if arg != var && kind.depends_on(self, cid, &record, arg) {
                        work.push(arg);
                    }
                }
            }
        }
        (vars, cons)
    }

    /// All variables whose values depend on `var`'s current value: a
    /// forward traversal of the dependency graph (`consequences:`,
    /// Fig. 4.12). Includes `var` itself, in discovery order.
    pub fn consequences(&self, var: VarId) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        self.consequences_iterative(vec![var], &mut out, &mut seen);
        out
    }

    /// Iterative forward walk (explicit stack; chains can be arbitrarily
    /// deep, see tests/scale.rs).
    fn consequences_iterative(
        &self,
        mut work: Vec<VarId>,
        out: &mut Vec<VarId>,
        seen: &mut std::collections::HashSet<VarId>,
    ) {
        while let Some(var) = work.pop() {
            if !seen.insert(var) {
                continue;
            }
            out.push(var);
            for &cid in self.vars[var.index()].constraints.iter() {
                if !self.constraints[cid.index()].active {
                    continue;
                }
                let kind = self.constraints[cid.index()].kind.clone();
                for &arg in self.constraints[cid.index()].args.iter().rev() {
                    if arg == var {
                        continue;
                    }
                    let just = &self.slots[arg.index()].justification;
                    if let Justification::Propagated { constraint, record } = just {
                        if *constraint == cid && kind.depends_on(self, cid, record, var) {
                            work.push(arg);
                        }
                    }
                }
            }
        }
    }

    /// Consequences of `source` flowing through one constraint
    /// (`consequences:ofVariable:`, Fig. 4.12): arguments last set by this
    /// constraint whose dependency record contains `source`.
    fn constraint_consequences(&self, cid: ConstraintId, source: VarId, out: &mut Vec<VarId>) {
        if !self.constraints[cid.index()].active {
            return;
        }
        let mut seen: std::collections::HashSet<VarId> = out.iter().copied().collect();
        let kind = self.constraints[cid.index()].kind.clone();
        let mut work = Vec::new();
        for &arg in self.constraints[cid.index()].args.iter() {
            if arg == source {
                continue;
            }
            let just = &self.slots[arg.index()].justification;
            if let Justification::Propagated { constraint, record } = just {
                if *constraint == cid && kind.depends_on(self, cid, record, source) {
                    work.push(arg);
                }
            }
        }
        self.consequences_iterative(work, out, &mut seen);
    }
}
