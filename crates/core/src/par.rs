//! Parallel plan replay — cone-partitioned execution of compiled
//! propagation plans on an in-tree scoped worker pool.
//!
//! A compiled [`PropPlan`](crate::plan::PropPlan) is a straight-line
//! recording of the agenda interpreter's work for one root change. After
//! the root write, its steps form a dependency forest: steps sharing no
//! variable (and hence no constraint) are *independent* — per Apt's
//! chaotic-iteration result (PAPERS.md, "The Essence of Constraint
//! Propagation"), any fair schedule of the same monotone inference
//! functions reaches the same fixpoint, so the connected components
//! ("cones") may run concurrently. This module
//!
//! 1. partitions a plan's steps into cones at compile time
//!    ([`build_par`]), refusing whenever a step's effect cannot be
//!    replicated off-thread (no [`ParKernel`], a non-plain write target,
//!    or a plan below the size threshold); a plan that collapses into a
//!    *single* cone is levelized instead ([`build_wave`]): its steps are
//!    sorted into dependency layers (writer-before-reader, including
//!    write-after-read anti-dependencies) so one giant cone executes
//!    layer by layer across workers — the wavefront pipeline;
//! 2. executes cones on a lazily spawned global worker pool
//!    ([`pool_run`]) against a raw, `Send + Sync` view of the value
//!    slots ([`SlotsView`]) — safe because the compile-time partition
//!    proves every variable is written by at most one cone and read
//!    only by cones that also own it. The pool schedules by work
//!    stealing: each executor owns a deque filled at submit time, pops
//!    it LIFO, and steals FIFO from the others when it runs dry, so one
//!    unbalanced cone no longer serializes the replay;
//! 3. mirrors the sequential replay's statistics exactly
//!    ([`run_cone`]), so a successful parallel replay is byte-identical
//!    to [`run_plan`](crate::Network) — and any deviation (overwrite
//!    denial, unsatisfied constraint) aborts the attempt, restores every
//!    write, and falls back to the sequential path, which *is* the
//!    ground truth.
//!
//! The pool is hermetic (std threads + `Mutex`/`Condvar`, no
//! dependencies) and global: engine workers share it, submitting jobs
//! whose tasks helpers and submitter drain cooperatively.

use crate::ids::{ConstraintId, VarId};
use crate::justification::{DependencyRecord, Justification};
use crate::network::{Network, ValueSlot};
use crate::plan::{PlanOp, PropPlan};
use crate::value::Value;
use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

// The whole design rests on value state crossing threads; fail the build,
// not the race detector, if that ever regresses.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Value>();
    assert_send_sync::<Justification>();
};

/// Counters for the parallel replay path, kept separate from
/// [`Stats`](crate::Stats) so the core propagation statistics stay
/// byte-identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStats {
    /// Planned replays served by the parallel path (cones executed on the
    /// worker pool, including overlapped batch replays).
    pub plan_replays_parallel: u64,
    /// Total cones executed across all parallel replays.
    pub cones_executed: u64,
    /// Planned replays that wanted the parallel path but ran sequentially:
    /// the plan has no partition (single unlayerable cone, below
    /// threshold, or an unkernelable step), or the parallel attempt
    /// aborted (violation).
    pub parallel_fallbacks: u64,
    /// Committed parallel replays that executed as a levelized wavefront
    /// (one giant cone pipelined layer-by-layer) rather than as
    /// independent cones. Deterministic for a fixed op sequence.
    pub plan_replays_wavefront: u64,
    /// Pool tasks (cones or wavefront chunks) claimed by an executor
    /// other than the owner of their deque, summed over committed
    /// replays. Schedule-dependent: this counter varies run to run and
    /// is excluded from determinism digests and differential stats.
    pub cones_stolen: u64,
}

/// A pure value computation mirroring the built-in
/// [`FunctionalOp`](crate::kinds::FunctionalOp) arms — the `Send`-safe
/// subset a [`ParKernel::Apply`] may evaluate off-thread. The fold
/// semantics replicate `FunctionalOp::apply` bit for bit (same `Nil`
/// short-circuits, same numeric promotion), which the differential test
/// pins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PureOp {
    /// Sum of inputs.
    Sum,
    /// Maximum of inputs.
    Max,
    /// Minimum of inputs.
    Min,
    /// Product of inputs (float).
    Product,
    /// Affine map of a single input: `gain * x + offset`.
    Scale {
        /// Multiplier.
        gain: f64,
        /// Addend.
        offset: f64,
    },
}

impl PureOp {
    /// Applies the operation to the input values. `None` means "cannot
    /// compute" (non-numeric input, wrong arity) — the constraint simply
    /// does not fire, exactly like `FunctionalOp::apply`.
    pub fn apply<'a, I: Iterator<Item = &'a Value>>(&self, mut inputs: I) -> Option<Value> {
        match self {
            PureOp::Sum => inputs.try_fold(Value::Int(0), |acc, v| acc.numeric_add(v)),
            PureOp::Max => {
                let first = inputs.next()?.clone();
                inputs.try_fold(first, |acc, v| acc.numeric_max(v))
            }
            PureOp::Min => {
                let first = inputs.next()?.clone();
                inputs.try_fold(first, |acc, v| acc.numeric_min(v))
            }
            PureOp::Product => inputs
                .try_fold(1.0_f64, |acc, v| v.as_f64().map(|x| acc * x))
                .map(Value::Float),
            PureOp::Scale { gain, offset } => {
                let x = inputs.next()?.as_f64()?;
                if inputs.next().is_some() {
                    return None;
                }
                Some(Value::Float(gain * x + offset))
            }
        }
    }
}

/// A thread-safe description of one constraint's `infer` effect, returned
/// by [`ConstraintKind::par_kernel`](crate::ConstraintKind::par_kernel).
/// The kernel must produce exactly the `propagate_set` calls `infer`
/// would make — same targets, same order, same values, same dependency
/// records.
#[derive(Debug, Clone)]
pub enum ParKernel {
    /// `infer` assigns nothing (check-only kinds); the satisfaction test
    /// still runs in the sequential final sweep.
    Check,
    /// Copy the source argument's value to every target, in order, each
    /// with a [`DependencyRecord::Single`] record; a `Nil` source
    /// propagates nothing (equality-style kinds).
    Copy {
        /// The changed argument whose value spreads.
        source: VarId,
        /// The other arguments, in argument order.
        targets: Vec<VarId>,
    },
    /// Evaluate `op` over the inputs and assign the result with a
    /// [`DependencyRecord::All`] record; any `Nil` input (or an
    /// uncomputable op) propagates nothing (functional kinds).
    Apply {
        /// The pure computation.
        op: PureOp,
        /// Input arguments, in argument order.
        inputs: Vec<VarId>,
        /// The result argument.
        result: VarId,
    },
}

/// A write target resolved against a cone's local mark table: the global
/// slot index plus the cone-local liveness index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParWrite {
    pub(crate) var: VarId,
    /// Index into the owning cone's `var_marks`.
    pub(crate) local: u32,
}

/// A [`ParKernel`] with its write targets resolved to cone-local indices.
#[derive(Debug, Clone)]
pub(crate) enum ConeKernel {
    Check,
    Copy {
        source: VarId,
        targets: Vec<ParWrite>,
    },
    Apply {
        op: PureOp,
        inputs: Vec<VarId>,
        result: ParWrite,
    },
}

/// One plan step assigned to a cone. `plan_idx` preserves the step's
/// position in the sequential plan so the final-check order can be
/// reconstructed by merging cones.
#[derive(Debug, Clone)]
pub(crate) struct ParStep {
    pub(crate) plan_idx: u32,
    pub(crate) op: PlanOp,
    pub(crate) cid: ConstraintId,
    /// Cone-local index of the trigger variable for activation steps;
    /// `u32::MAX` for [`PlanOp::RunScheduled`] (entry-gated instead).
    pub(crate) trigger: u32,
    /// Cone-local agenda-entry index for `Schedule*`/`RunScheduled`
    /// steps; `u32::MAX` elsewhere.
    pub(crate) entry: u32,
    /// Cone-local constraint index, deduplicating the visited sweep.
    pub(crate) cid_local: u32,
    pub(crate) kernel: ConeKernel,
}

/// Per-replay counter deltas accumulated by one cone, merged into
/// [`Stats`](crate::Stats) on commit so totals match the sequential
/// replay exactly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ConeCounters {
    pub(crate) activations: u64,
    pub(crate) inferences: u64,
    pub(crate) schedules: u64,
    pub(crate) scheduled_runs: u64,
    pub(crate) assignments: u64,
}

/// A cone's mutable replay state. Owned by the cone (inside the cached
/// plan), so repeated replays reuse the allocations — the parallel
/// analogue of the sequential path's pooled `PropState`.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConeScratch {
    /// Epoch for the mark tables below; bumped once per replay.
    epoch: u32,
    /// Per cone-local variable: epoch of the replay in which it last
    /// changed (index 0 is the root, live by fiat).
    var_marks: Vec<u32>,
    /// Per cone-local constraint: epoch of its first live dispatch.
    cid_marks: Vec<u32>,
    /// Per cone-local agenda entry: epoch of its first live sighting.
    entry_marks: Vec<u32>,
    /// Pre-images of this replay's writes (each variable at most once:
    /// plans are single-writer). Drained into the journal on commit,
    /// written back on abort.
    pub(crate) pre: Vec<(VarId, Value, Justification)>,
    /// Constraints dispatched live this replay, tagged with the plan
    /// index of their first sighting for cross-cone order recovery.
    pub(crate) visited: Vec<(u32, ConstraintId)>,
    pub(crate) counters: ConeCounters,
    /// An overwrite was denied mid-cone: the sequential interpreter
    /// would have raised a violation here, so the whole parallel attempt
    /// must abort and fall back.
    pub(crate) failed: bool,
}

/// One independent component of a plan's post-root dependency graph.
#[derive(Debug, Clone)]
pub(crate) struct ParCone {
    pub(crate) steps: Vec<ParStep>,
    pub(crate) scratch: ConeScratch,
}

/// How a plan's parallel body executes: as independent cones, or as one
/// levelized cone pipelined layer-by-layer.
#[derive(Debug, Clone)]
pub(crate) enum ParExec {
    /// Two or more independent cones, one pool task each.
    Cones(Vec<ParCone>),
    /// A single connected cone whose steps were levelized into
    /// dependency layers; each layer fans out across chunk tasks.
    Wave(WavePlan),
}

/// The cone partition of one compiled plan, stored alongside the
/// sequential step vectors inside [`PropPlan`] — so the plan's
/// generation counter covers the partition metadata too, and a
/// structural edit invalidates both at once.
#[derive(Debug, Clone)]
pub(crate) struct ParPlan {
    /// Sorted, deduplicated indices of every variable any step touches
    /// (arguments of every stepped constraint, plus the root). Two plans
    /// with disjoint `refs` may replay concurrently.
    pub(crate) refs: Vec<u32>,
    /// Strength of every constraint slot (tombstoned included —
    /// justifications may still reference them), indexed by
    /// `ConstraintId::index`. Snapshotted at compile time so overwrite
    /// arbitration runs off-thread without touching the `Rc` kinds.
    pub(crate) strengths: Vec<u8>,
    /// Executing-step count of the costliest single pool task (the
    /// biggest cone, or the widest wavefront layer). The replay-time
    /// admission heuristic compares this against
    /// `Network::set_parallel_cone_min_steps`: when every task is below
    /// the floor, pool hand-off costs more than it buys and the replay
    /// runs the kernels inline on one thread instead.
    pub(crate) max_task_exec: u32,
    /// Pool tasks stolen during the most recent committed replay of
    /// this plan (diagnostic only — surfaced by the inspector).
    pub(crate) last_stolen: u64,
    pub(crate) exec: ParExec,
}

/// One task's committed scratch: its counter block plus the pre-image
/// buffer the commit/abort paths drain.
pub(crate) type TaskScratchRef<'a> = (ConeCounters, &'a mut Vec<(VarId, Value, Justification)>);

impl ParPlan {
    /// Whether this plan's variable set is disjoint from `other` (both
    /// sorted): the admission test for overlapping two roots' replays.
    pub(crate) fn refs_disjoint(a: &[u32], b: &[u32]) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Merges sorted `src` into sorted `dst` (used to accumulate a
    /// batch group's combined footprint).
    pub(crate) fn merge_refs(dst: &mut Vec<u32>, src: &[u32]) {
        let mut merged = Vec::with_capacity(dst.len() + src.len());
        let (mut i, mut j) = (0, 0);
        while i < dst.len() && j < src.len() {
            match dst[i].cmp(&src[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(dst[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(src[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(dst[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&dst[i..]);
        merged.extend_from_slice(&src[j..]);
        *dst = merged;
    }

    /// Per-task `(counters, pre-image buffer)` pairs in plan order —
    /// cone order for a partition, chunk order for a wavefront; both
    /// orders are plan order, so a first-write-wins drain over them
    /// journals exactly what the sequential replay would.
    pub(crate) fn tasks_mut(&mut self) -> Box<dyn Iterator<Item = TaskScratchRef<'_>> + '_> {
        match &mut self.exec {
            ParExec::Cones(cones) => Box::new(
                cones
                    .iter_mut()
                    .map(|c| (c.scratch.counters, &mut c.scratch.pre)),
            ),
            ParExec::Wave(w) => Box::new(
                w.chunks
                    .iter_mut()
                    .map(|c| (c.scratch.counters, &mut c.scratch.pre)),
            ),
        }
    }
}

// ----------------------------------------------------------------------
// Raw slot view
// ----------------------------------------------------------------------

/// A raw, thread-shareable view of the network's value-slot arena.
///
/// # Safety
///
/// Soundness comes entirely from the compile-time partition:
///
/// - every variable is *written* by at most one cone (plans are
///   single-writer and cones partition the write set);
/// - every variable a cone *reads* is either written by that same cone,
///   the root (written by the main thread before launch, read-only
///   during), or written by no cone at all — a variable read by cone A
///   and written by cone B would be an argument of constraints in both,
///   forcing A and B into the same component;
/// - for overlapped roots, plans run together only when their `refs`
///   sets are pairwise disjoint.
///
/// The view must not outlive the replay that created it, and the main
/// thread must not touch the slot vector while workers hold the view.
pub(crate) struct SlotsView {
    ptr: *mut ValueSlot,
    len: usize,
}

unsafe impl Send for SlotsView {}
unsafe impl Sync for SlotsView {}

impl SlotsView {
    pub(crate) fn new(ptr: *mut ValueSlot, len: usize) -> Self {
        SlotsView { ptr, len }
    }

    /// # Safety
    ///
    /// Caller must uphold the partition discipline documented on the
    /// type: no other thread writes `ix` while the borrow lives.
    unsafe fn get(&self, ix: usize) -> &ValueSlot {
        debug_assert!(ix < self.len);
        &*self.ptr.add(ix)
    }

    /// # Safety
    ///
    /// Caller must own `ix`'s write partition exclusively.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, ix: usize) -> &mut ValueSlot {
        debug_assert!(ix < self.len);
        &mut *self.ptr.add(ix)
    }
}

/// One pool task: a cone paired with its plan's strength table. The
/// `UnsafeCell` hands each worker exclusive `&mut` access to its cone —
/// sound because [`pool_run`] dispatches every task index to exactly one
/// executor.
pub(crate) struct ConeTask<'a> {
    cone: UnsafeCell<&'a mut ParCone>,
    strengths: &'a [u8],
}

unsafe impl Sync for ConeTask<'_> {}

impl<'a> ConeTask<'a> {
    pub(crate) fn new(cone: &'a mut ParCone, strengths: &'a [u8]) -> Self {
        ConeTask {
            cone: UnsafeCell::new(cone),
            strengths,
        }
    }

    /// # Safety
    ///
    /// Must be called at most once per replay, by the one worker that
    /// claimed this task index.
    pub(crate) unsafe fn run(&self, slots: &SlotsView) {
        let cone: &mut ParCone = &mut **self.cone.get();
        run_cone(cone, slots, self.strengths);
    }
}

// ----------------------------------------------------------------------
// Cone execution
// ----------------------------------------------------------------------

/// Outcome of the overwrite arbitration a propagated write must pass.
enum WriteGate {
    /// Perform the write.
    Proceed,
    /// Silently keep the existing value (equal value, or a stronger
    /// propagation already holds the slot).
    Skip,
    /// The sequential interpreter would raise `overwrite_denied` (or the
    /// slot's state is outside this plan's compile-time snapshot): abort
    /// the parallel attempt and let the sequential fallback reproduce
    /// the outcome exactly.
    Deny,
}

/// The planned branch of `propagate_set` plus the [`PlainKind`]
/// overwrite rule (build-time admission guarantees every target is
/// plain): equal value → skip (the value pruning); user-justified →
/// deny; weaker propagation → skip; else proceed. A justification whose
/// constraint lies outside the compile-time strength snapshot denies
/// too — per-root invalidation makes that unreachable (any edit
/// touching a plan's footprint evicts it), but the fallback is always
/// correct, so refuse rather than trust the index.
///
/// [`PlainKind`]: crate::PlainKind
fn arbitrate_write(
    s: &ValueSlot,
    value: &Value,
    strengths: &[u8],
    source: ConstraintId,
) -> WriteGate {
    if s.value == *value {
        return WriteGate::Skip; // Unchanged: downstream steps stay pruned
    }
    if !s.value.is_nil() {
        match &s.justification {
            j if j.is_user() => return WriteGate::Deny,
            Justification::Propagated { constraint, .. } => {
                match strengths.get(constraint.index()) {
                    Some(&held) if strengths[source.index()] < held => {
                        return WriteGate::Skip; // Ignored: weaker propagation yields
                    }
                    Some(_) => {}
                    None => return WriteGate::Deny,
                }
            }
            _ => {}
        }
    }
    WriteGate::Proceed
}

/// One propagated write against the raw slot view: arbitrate, then
/// write, saving the pre-image and marking the target live.
unsafe fn write_slot(
    scratch: &mut ConeScratch,
    slots: &SlotsView,
    strengths: &[u8],
    target: ParWrite,
    value: Value,
    source: ConstraintId,
    record: DependencyRecord,
) {
    let s = slots.get_mut(target.var.index());
    match arbitrate_write(s, &value, strengths, source) {
        WriteGate::Skip => return,
        WriteGate::Deny => {
            scratch.failed = true;
            return;
        }
        WriteGate::Proceed => {}
    }
    let pre_value = std::mem::replace(&mut s.value, value);
    let pre_just = std::mem::replace(
        &mut s.justification,
        Justification::Propagated {
            constraint: source,
            record,
        },
    );
    scratch.pre.push((target.var, pre_value, pre_just));
    scratch.var_marks[target.local as usize] = scratch.epoch;
    scratch.counters.assignments += 1;
}

/// Replays one cone against the slot view, mirroring the sequential
/// `run_plan` walk: per-step liveness gating via the epoch marks, the
/// same counter increments at the same sites, and the same first-live
/// constraint visit order (recorded with plan indices for the merged
/// final check).
pub(crate) fn run_cone(cone: &mut ParCone, slots: &SlotsView, strengths: &[u8]) {
    let scratch = &mut cone.scratch;
    scratch.epoch = scratch.epoch.wrapping_add(1);
    if scratch.epoch == 0 {
        scratch.var_marks.iter_mut().for_each(|m| *m = 0);
        scratch.cid_marks.iter_mut().for_each(|m| *m = 0);
        scratch.entry_marks.iter_mut().for_each(|m| *m = 0);
        scratch.epoch = 1;
    }
    scratch.pre.clear();
    scratch.visited.clear();
    scratch.counters = ConeCounters::default();
    scratch.failed = false;
    let epoch = scratch.epoch;
    // The root (local index 0) is live by fiat: `set` dispatches its cone
    // unconditionally, equal value or not.
    scratch.var_marks[0] = epoch;
    for step in &cone.steps {
        if step.op == PlanOp::RunScheduled {
            if scratch.entry_marks[step.entry as usize] != epoch {
                continue; // never actually scheduled this replay
            }
            scratch.counters.scheduled_runs += 1;
            scratch.counters.inferences += 1;
            run_kernel(scratch, slots, strengths, step);
        } else {
            if scratch.var_marks[step.trigger as usize] != epoch {
                continue; // value-pruned
            }
            if scratch.cid_marks[step.cid_local as usize] != epoch {
                scratch.cid_marks[step.cid_local as usize] = epoch;
                scratch.visited.push((step.plan_idx, step.cid));
            }
            scratch.counters.activations += 1;
            match step.op {
                PlanOp::Immediate => {
                    scratch.counters.inferences += 1;
                    run_kernel(scratch, slots, strengths, step);
                }
                PlanOp::NoActivate => {}
                _ => {
                    if scratch.entry_marks[step.entry as usize] != epoch {
                        scratch.entry_marks[step.entry as usize] = epoch;
                        scratch.counters.schedules += 1;
                    }
                }
            }
        }
        if scratch.failed {
            break;
        }
    }
}

fn run_kernel(scratch: &mut ConeScratch, slots: &SlotsView, strengths: &[u8], step: &ParStep) {
    match &step.kernel {
        ConeKernel::Check => {}
        ConeKernel::Copy { source, targets } => {
            // SAFETY: `source` is cone-owned or the root (read-only
            // during replay); targets are this cone's exclusive writes.
            let new_value = unsafe { slots.get(source.index()) }.value.clone();
            if new_value.is_nil() {
                return; // a Nil change propagates nothing
            }
            for &t in targets {
                unsafe {
                    write_slot(
                        scratch,
                        slots,
                        strengths,
                        t,
                        new_value.clone(),
                        step.cid,
                        DependencyRecord::Single(*source),
                    );
                }
                if scratch.failed {
                    return;
                }
            }
        }
        ConeKernel::Apply { op, inputs, result } => {
            // SAFETY: inputs are cone-owned, the root, or written by no
            // cone; the result is this cone's exclusive write.
            let computed = unsafe {
                if inputs.iter().any(|&v| slots.get(v.index()).value.is_nil()) {
                    None
                } else {
                    op.apply(inputs.iter().map(|&v| &slots.get(v.index()).value))
                }
            };
            let Some(value) = computed else {
                return; // no information: the constraint does not fire
            };
            unsafe {
                write_slot(
                    scratch,
                    slots,
                    strengths,
                    *result,
                    value,
                    step.cid,
                    DependencyRecord::All,
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// Wavefront execution (one giant cone, pipelined layer-by-layer)
// ----------------------------------------------------------------------

/// Minimum executing steps per wavefront chunk — below this, splitting a
/// layer finer only adds hand-off latency.
const WAVE_CHUNK_MIN_EXEC: usize = 4;

/// Maximum chunks one layer fans out into.
const MAX_WAVE_CHUNKS: usize = 8;

/// Replay state shared by every chunk of a wavefront: the liveness mark
/// tables become atomic because chunks of the *same* layer race on them
/// (value slots never race — levelization separates a variable's writer
/// from all of its readers, in both directions).
#[derive(Debug, Default)]
pub(crate) struct WaveMarks {
    /// Epoch for the mark tables; bumped once per replay.
    epoch: u32,
    /// Per cone-local variable: epoch of the replay in which it last
    /// changed (index 0 is the root, live by fiat). Written by the
    /// variable's single writer step, read by strictly later layers.
    var_marks: Vec<AtomicU32>,
    /// Per cone-local agenda entry: epoch of its first live sighting.
    /// `swap` makes the schedules counter exactly-once across chunks.
    entry_marks: Vec<AtomicU32>,
    /// Per cone-local constraint: minimum plan index of a live dispatch
    /// this replay (`u32::MAX` = none). `fetch_min` makes the merged
    /// visited order deterministic — the minimum is the first dispatch
    /// in plan order, exactly what the sequential replay records —
    /// regardless of which chunk got there first in wall time.
    cid_first: Vec<AtomicU32>,
    /// An overwrite was denied somewhere: stop dispatching layers and
    /// abort the attempt.
    failed: AtomicBool,
}

impl Clone for WaveMarks {
    fn clone(&self) -> Self {
        let load = |v: &[AtomicU32]| {
            v.iter()
                .map(|m| AtomicU32::new(m.load(Ordering::Relaxed)))
                .collect()
        };
        WaveMarks {
            epoch: self.epoch,
            var_marks: load(&self.var_marks),
            entry_marks: load(&self.entry_marks),
            cid_first: load(&self.cid_first),
            failed: AtomicBool::new(self.failed.load(Ordering::Relaxed)),
        }
    }
}

/// A chunk's private replay state: pre-images of its writes and its
/// share of the counter deltas.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkScratch {
    pub(crate) pre: Vec<(VarId, Value, Justification)>,
    pub(crate) counters: ConeCounters,
}

/// A contiguous plan-order slice of one dependency layer, executed as
/// one pool task. Static chunking keeps the journal drain order (chunk
/// order = plan order) deterministic under any steal schedule.
#[derive(Debug, Clone)]
pub(crate) struct WaveChunk {
    steps: Vec<ParStep>,
    pub(crate) scratch: ChunkScratch,
}

/// A levelized single-cone plan: `chunks` grouped into `layers`, each
/// layer a barrier — layer `k+1` launches only after every chunk of
/// layer `k` completed (the pool join provides the happens-before).
#[derive(Debug, Clone)]
pub(crate) struct WavePlan {
    pub(crate) chunks: Vec<WaveChunk>,
    /// Half-open chunk index ranges, one per layer.
    pub(crate) layers: Vec<(u32, u32)>,
    pub(crate) marks: WaveMarks,
    /// Cone-local constraint index → global id, for reconstructing the
    /// visited list from `cid_first` on commit.
    cid_of: Vec<ConstraintId>,
}

impl WavePlan {
    pub(crate) fn failed(&self) -> bool {
        self.marks.failed.load(Ordering::Relaxed)
    }

    /// Reconstructs the first-live-dispatch list in plan order.
    pub(crate) fn collect_visited(&self, out: &mut Vec<(u32, ConstraintId)>) {
        for (local, first) in self.marks.cid_first.iter().enumerate() {
            let first = first.load(Ordering::Relaxed);
            if first != u32::MAX {
                out.push((first, self.cid_of[local]));
            }
        }
    }
}

/// One wavefront pool task: a chunk plus the shared mark tables.
pub(crate) struct WaveTask<'a> {
    chunk: UnsafeCell<&'a mut WaveChunk>,
    marks: &'a WaveMarks,
    strengths: &'a [u8],
}

unsafe impl Sync for WaveTask<'_> {}

impl<'a> WaveTask<'a> {
    pub(crate) fn new(chunk: &'a mut WaveChunk, marks: &'a WaveMarks, strengths: &'a [u8]) -> Self {
        WaveTask {
            chunk: UnsafeCell::new(chunk),
            marks,
            strengths,
        }
    }

    /// # Safety
    ///
    /// Must be called at most once per layer launch, by the one worker
    /// that claimed this task index.
    pub(crate) unsafe fn run(&self, slots: &SlotsView, epoch: u32) {
        let chunk: &mut WaveChunk = &mut **self.chunk.get();
        run_wave_chunk(chunk, self.marks, slots, self.strengths, epoch);
    }
}

/// Replays a levelized cone: reset the shared marks, then run each layer
/// across the pool with a join barrier between layers. Returns the steal
/// count accumulated over all layers.
pub(crate) fn run_wave(
    wave: &mut WavePlan,
    slots: &SlotsView,
    strengths: &[u8],
    threads: usize,
) -> u64 {
    let WavePlan {
        chunks,
        layers,
        marks,
        ..
    } = wave;
    marks.epoch = marks.epoch.wrapping_add(1);
    if marks.epoch == 0 {
        for m in &marks.var_marks {
            m.store(0, Ordering::Relaxed);
        }
        for m in &marks.entry_marks {
            m.store(0, Ordering::Relaxed);
        }
        marks.epoch = 1;
    }
    for m in &marks.cid_first {
        m.store(u32::MAX, Ordering::Relaxed);
    }
    marks.failed.store(false, Ordering::Relaxed);
    let epoch = marks.epoch;
    // The root (local index 0) is live by fiat, as in `run_cone`.
    marks.var_marks[0].store(epoch, Ordering::Relaxed);
    for chunk in chunks.iter_mut() {
        chunk.scratch.pre.clear();
        chunk.scratch.counters = ConeCounters::default();
    }
    let marks: &WaveMarks = marks;
    let mut stolen = 0;
    for &(start, end) in layers.iter() {
        if marks.failed.load(Ordering::Relaxed) {
            break;
        }
        let layer = &mut chunks[start as usize..end as usize];
        let tasks: Vec<WaveTask> = layer
            .iter_mut()
            .map(|c| WaveTask::new(c, marks, strengths))
            .collect();
        // SAFETY: pool_run dispatches each task index exactly once; the
        // join before returning gives layer k's writes a happens-before
        // edge to layer k+1's reads.
        stolen += pool_run(tasks.len(), threads, &|t| unsafe {
            tasks[t].run(slots, epoch)
        });
    }
    stolen
}

/// Executes one chunk's steps, mirroring `run_cone` step-for-step but
/// against the shared atomic mark tables.
fn run_wave_chunk(
    chunk: &mut WaveChunk,
    marks: &WaveMarks,
    slots: &SlotsView,
    strengths: &[u8],
    epoch: u32,
) {
    let scratch = &mut chunk.scratch;
    for step in &chunk.steps {
        if marks.failed.load(Ordering::Relaxed) {
            return;
        }
        if step.op == PlanOp::RunScheduled {
            if marks.entry_marks[step.entry as usize].load(Ordering::Relaxed) != epoch {
                continue; // never actually scheduled this replay
            }
            scratch.counters.scheduled_runs += 1;
            scratch.counters.inferences += 1;
            run_wave_kernel(scratch, marks, slots, strengths, step, epoch);
        } else {
            if marks.var_marks[step.trigger as usize].load(Ordering::Relaxed) != epoch {
                continue; // value-pruned
            }
            marks.cid_first[step.cid_local as usize].fetch_min(step.plan_idx, Ordering::Relaxed);
            scratch.counters.activations += 1;
            match step.op {
                PlanOp::Immediate => {
                    scratch.counters.inferences += 1;
                    run_wave_kernel(scratch, marks, slots, strengths, step, epoch);
                }
                PlanOp::NoActivate => {}
                _ => {
                    if marks.entry_marks[step.entry as usize].swap(epoch, Ordering::Relaxed)
                        != epoch
                    {
                        scratch.counters.schedules += 1;
                    }
                }
            }
        }
    }
}

fn run_wave_kernel(
    scratch: &mut ChunkScratch,
    marks: &WaveMarks,
    slots: &SlotsView,
    strengths: &[u8],
    step: &ParStep,
    epoch: u32,
) {
    match &step.kernel {
        ConeKernel::Check => {}
        ConeKernel::Copy { source, targets } => {
            // SAFETY: levelization puts this read strictly after the
            // source's writer layer (or the source is the root/ambient,
            // written before launch); targets are this step's exclusive
            // writes.
            let new_value = unsafe { slots.get(source.index()) }.value.clone();
            if new_value.is_nil() {
                return; // a Nil change propagates nothing
            }
            for &t in targets {
                unsafe {
                    wave_write_slot(
                        scratch,
                        marks,
                        slots,
                        strengths,
                        t,
                        new_value.clone(),
                        step.cid,
                        DependencyRecord::Single(*source),
                        epoch,
                    );
                }
            }
        }
        ConeKernel::Apply { op, inputs, result } => {
            // SAFETY: as above — every cone-written input is in an
            // earlier layer; the result is this step's exclusive write.
            let computed = unsafe {
                if inputs.iter().any(|&v| slots.get(v.index()).value.is_nil()) {
                    None
                } else {
                    op.apply(inputs.iter().map(|&v| &slots.get(v.index()).value))
                }
            };
            let Some(value) = computed else {
                return; // no information: the constraint does not fire
            };
            unsafe {
                wave_write_slot(
                    scratch,
                    marks,
                    slots,
                    strengths,
                    *result,
                    value,
                    step.cid,
                    DependencyRecord::All,
                    epoch,
                );
            }
        }
    }
}

/// The wavefront twin of [`write_slot`]: same arbitration, pre-image to
/// the chunk's scratch, liveness mark through the shared atomic table.
#[allow(clippy::too_many_arguments)]
unsafe fn wave_write_slot(
    scratch: &mut ChunkScratch,
    marks: &WaveMarks,
    slots: &SlotsView,
    strengths: &[u8],
    target: ParWrite,
    value: Value,
    source: ConstraintId,
    record: DependencyRecord,
    epoch: u32,
) {
    let s = slots.get_mut(target.var.index());
    match arbitrate_write(s, &value, strengths, source) {
        WriteGate::Skip => return,
        WriteGate::Deny => {
            marks.failed.store(true, Ordering::Relaxed);
            return;
        }
        WriteGate::Proceed => {}
    }
    let pre_value = std::mem::replace(&mut s.value, value);
    let pre_just = std::mem::replace(
        &mut s.justification,
        Justification::Propagated {
            constraint: source,
            record,
        },
    );
    scratch.pre.push((target.var, pre_value, pre_just));
    marks.var_marks[target.local as usize].store(epoch, Ordering::Relaxed);
    scratch.counters.assignments += 1;
}

// ----------------------------------------------------------------------
// Cone partitioning (compile time)
// ----------------------------------------------------------------------

fn uf_find(parent: &mut [u32], mut i: u32) -> u32 {
    while parent[i as usize] != i {
        let g = parent[parent[i as usize] as usize];
        parent[i as usize] = g;
        i = g;
    }
    i
}

fn uf_union(parent: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra != rb {
        // Deterministic: lower root wins, keeping component ids stable
        // under the plan-order walk.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi as usize] = lo;
    }
}

/// Partitions a compiled plan into independent cones, resolving each
/// executing step's [`ParKernel`]. Returns `None` — leaving the plan on
/// the sequential path — when:
///
/// - the plan has fewer executing steps than `min_exec_steps` (small
///   plans must not pay pool hand-off latency);
/// - any executing step's kind offers no kernel, or the kernel's write
///   set disagrees with `planned_writes` (a buggy third-party kind);
/// - any write target is not a plain-kind variable (the off-thread
///   overwrite rule is `PlainKind`'s);
/// - the steps form a single connected component whose dependency
///   layers are all single-file ([`build_wave`] refuses a pure chain).
pub(crate) fn build_par(
    net: &Network,
    root: VarId,
    plan: &PropPlan,
    min_exec_steps: usize,
) -> Option<Box<ParPlan>> {
    let n = plan.ops.len();
    if n == 0 {
        return None;
    }
    let exec_steps = plan
        .ops
        .iter()
        .filter(|&&op| matches!(op, PlanOp::Immediate | PlanOp::RunScheduled))
        .count();
    if exec_steps < min_exec_steps {
        return None;
    }
    // Resolve kernels first (cheap bail before the union-find work).
    let mut kernels: Vec<Option<ParKernel>> = Vec::with_capacity(n);
    for i in 0..n {
        let (op, cid, chg) = (plan.ops[i], plan.cids[i], plan.changed[i]);
        if !matches!(op, PlanOp::Immediate | PlanOp::RunScheduled) {
            kernels.push(None); // never runs `infer`; no kernel needed
            continue;
        }
        let kernel = plan.kinds[i].par_kernel(net, cid, chg)?;
        // The kernel's write set must match the write set the plan was
        // simulated under, or liveness would flow differently.
        let declared = plan.kinds[i].planned_writes(net, cid, chg)?;
        let kernel_writes: Vec<VarId> = match &kernel {
            ParKernel::Check => Vec::new(),
            ParKernel::Copy { targets, .. } => targets.clone(),
            ParKernel::Apply { result, .. } => vec![*result],
        };
        if kernel_writes != declared {
            return None;
        }
        for &w in &kernel_writes {
            if w == root || !net.var_is_plain(w) {
                return None;
            }
        }
        kernels.push(Some(kernel));
    }
    // Union steps sharing any argument variable (triggers, reads and
    // writes are all arguments of the step's constraint). The root is
    // excluded: it is what all cones hang off.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut var_owner: HashMap<VarId, u32> = HashMap::new();
    for (i, &cid) in plan.cids.iter().enumerate() {
        for &a in net.args(cid) {
            if a == root {
                continue;
            }
            match var_owner.entry(a) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    uf_union(&mut parent, *e.get(), i as u32);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i as u32);
                }
            }
        }
    }
    // Group steps into cones in first-appearance order.
    let mut cone_of_comp: HashMap<u32, usize> = HashMap::new();
    let mut builds: Vec<ConeBuild> = Vec::new();
    for (i, kernel) in kernels.iter_mut().enumerate() {
        let comp = uf_find(&mut parent, i as u32);
        let cix = *cone_of_comp.entry(comp).or_insert_with(|| {
            builds.push(ConeBuild::new(root));
            builds.len() - 1
        });
        builds[cix].push_step(plan, i, kernel.take())?;
    }
    // Combined variable footprint for batch-overlap admission.
    let mut refs: Vec<u32> = Vec::with_capacity(var_owner.len() + 1);
    refs.push(root.0);
    refs.extend(var_owner.keys().map(|v| v.0));
    refs.sort_unstable();
    refs.dedup();
    let strengths = net.constraint_slot_strengths();
    if builds.len() < 2 {
        // A single connected component has no cones to overlap, but it
        // may still pipeline across its dependency layers.
        let build = builds.pop()?;
        let (wave, widest) = build_wave(build)?;
        return Some(Box::new(ParPlan {
            refs,
            strengths,
            max_task_exec: widest,
            last_stolen: 0,
            exec: ParExec::Wave(wave),
        }));
    }
    let max_task_exec = builds.iter().map(ConeBuild::exec_steps).max().unwrap_or(0);
    Some(Box::new(ParPlan {
        refs,
        strengths,
        max_task_exec,
        last_stolen: 0,
        exec: ParExec::Cones(builds.into_iter().map(ConeBuild::finish).collect()),
    }))
}

/// Levelizes a single connected cone into dependency layers for
/// wavefront execution. A step's layer is one past the deepest layer it
/// depends on: the writer of its activation trigger, the schedulers of
/// its agenda entry, the writers of every cone-local variable its kernel
/// reads (read-after-write), and the readers of every variable it writes
/// (write-after-read — the sequential replay may read a pre-write value
/// that a same-layer write would clobber). Returns `None` when no layer
/// holds two executing steps — a pure chain gains nothing from the
/// pipeline and stays on the sequential path.
fn build_wave(build: ConeBuild) -> Option<(WavePlan, u32)> {
    const NONE: u32 = u32::MAX;
    fn after(lvl: &mut u32, dep: u32) {
        if dep != NONE {
            *lvl = (*lvl).max(dep + 1);
        }
    }
    fn raise(slot: &mut u32, lvl: u32) {
        if *slot == NONE || *slot < lvl {
            *slot = lvl;
        }
    }
    let ConeBuild {
        steps,
        local_vars,
        local_cids,
        local_entries,
    } = build;
    let mut writer_level = vec![NONE; local_vars.len()];
    let mut reader_level = vec![NONE; local_vars.len()];
    let mut entry_level = vec![NONE; local_entries.len()];
    let mut level_of: Vec<u32> = Vec::with_capacity(steps.len());
    for step in &steps {
        let mut lvl = 0u32;
        if step.op == PlanOp::RunScheduled {
            after(&mut lvl, entry_level[step.entry as usize]);
        } else if step.trigger != 0 {
            // The liveness gate reads the trigger's mark, stamped by its
            // single writer step (the root, local 0, is pre-stamped).
            after(&mut lvl, writer_level[step.trigger as usize]);
        }
        match &step.kernel {
            ConeKernel::Check => {}
            ConeKernel::Copy { source, targets } => {
                if let Some(&l) = local_vars.get(source) {
                    after(&mut lvl, writer_level[l as usize]);
                }
                for t in targets {
                    after(&mut lvl, reader_level[t.local as usize]);
                }
            }
            ConeKernel::Apply { inputs, result, .. } => {
                for v in inputs {
                    if let Some(&l) = local_vars.get(v) {
                        after(&mut lvl, writer_level[l as usize]);
                    }
                }
                after(&mut lvl, reader_level[result.local as usize]);
            }
        }
        match &step.kernel {
            ConeKernel::Check => {}
            ConeKernel::Copy { source, targets } => {
                if let Some(&l) = local_vars.get(source) {
                    raise(&mut reader_level[l as usize], lvl);
                }
                for t in targets {
                    writer_level[t.local as usize] = lvl;
                }
            }
            ConeKernel::Apply { inputs, result, .. } => {
                for v in inputs {
                    if let Some(&l) = local_vars.get(v) {
                        raise(&mut reader_level[l as usize], lvl);
                    }
                }
                writer_level[result.local as usize] = lvl;
            }
        }
        if !matches!(
            step.op,
            PlanOp::RunScheduled | PlanOp::Immediate | PlanOp::NoActivate
        ) {
            raise(&mut entry_level[step.entry as usize], lvl);
        }
        level_of.push(lvl);
    }
    let n_levels = level_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut per_level: Vec<Vec<ParStep>> = Vec::new();
    per_level.resize_with(n_levels, Vec::new);
    for (step, &lvl) in steps.into_iter().zip(&level_of) {
        per_level[lvl as usize].push(step);
    }
    let layer_exec = |lvl_steps: &[ParStep]| {
        lvl_steps
            .iter()
            .filter(|s| matches!(s.op, PlanOp::Immediate | PlanOp::RunScheduled))
            .count()
    };
    let widest = per_level.iter().map(|l| layer_exec(l)).max().unwrap_or(0) as u32;
    if widest < 2 {
        return None;
    }
    let mut chunks: Vec<WaveChunk> = Vec::new();
    let mut layers: Vec<(u32, u32)> = Vec::with_capacity(per_level.len());
    for lvl_steps in per_level {
        let n_chunks = (layer_exec(&lvl_steps) / WAVE_CHUNK_MIN_EXEC)
            .clamp(1, MAX_WAVE_CHUNKS)
            .min(lvl_steps.len());
        let start = chunks.len() as u32;
        let m = lvl_steps.len();
        let (base, extra) = (m / n_chunks, m % n_chunks);
        let mut it = lvl_steps.into_iter();
        for i in 0..n_chunks {
            let take = base + usize::from(i < extra);
            chunks.push(WaveChunk {
                steps: it.by_ref().take(take).collect(),
                scratch: ChunkScratch::default(),
            });
        }
        layers.push((start, chunks.len() as u32));
    }
    let mut pairs: Vec<(u32, ConstraintId)> = local_cids.iter().map(|(&c, &l)| (l, c)).collect();
    pairs.sort_unstable_by_key(|p| p.0);
    let cid_of: Vec<ConstraintId> = pairs.into_iter().map(|p| p.1).collect();
    let marks = WaveMarks {
        epoch: 0,
        var_marks: (0..local_vars.len()).map(|_| AtomicU32::new(0)).collect(),
        entry_marks: (0..local_entries.len())
            .map(|_| AtomicU32::new(0))
            .collect(),
        cid_first: (0..cid_of.len()).map(|_| AtomicU32::new(NONE)).collect(),
        failed: AtomicBool::new(false),
    };
    Some((
        WavePlan {
            chunks,
            layers,
            marks,
            cid_of,
        },
        widest,
    ))
}

/// Accumulator for one cone during partitioning: step list plus the
/// local index maps for variables, constraints and agenda entries.
struct ConeBuild {
    steps: Vec<ParStep>,
    local_vars: HashMap<VarId, u32>,
    local_cids: HashMap<ConstraintId, u32>,
    local_entries: HashMap<u32, u32>,
}

impl ConeBuild {
    fn new(root: VarId) -> Self {
        let mut local_vars = HashMap::new();
        local_vars.insert(root, 0); // the root is everyone's local 0
        ConeBuild {
            steps: Vec::new(),
            local_vars,
            local_cids: HashMap::new(),
            local_entries: HashMap::new(),
        }
    }

    fn push_step(&mut self, plan: &PropPlan, i: usize, kernel: Option<ParKernel>) -> Option<()> {
        let op = plan.ops[i];
        let cid = plan.cids[i];
        let n_cids = self.local_cids.len() as u32;
        let cid_local = *self.local_cids.entry(cid).or_insert(n_cids);
        let trigger = if op == PlanOp::RunScheduled {
            u32::MAX
        } else {
            // The trigger was written by an earlier step of this cone
            // (or is the root): plan order respects dataflow. A miss
            // means the kind lied about its writes — refuse.
            let t = plan.changed[i].expect("activation steps carry their trigger");
            *self.local_vars.get(&t)?
        };
        let entry = if plan.entry_of[i] == u32::MAX {
            u32::MAX
        } else {
            let n_entries = self.local_entries.len() as u32;
            *self
                .local_entries
                .entry(plan.entry_of[i])
                .or_insert(n_entries)
        };
        let kernel = match kernel {
            None => ConeKernel::Check, // non-executing step
            Some(ParKernel::Check) => ConeKernel::Check,
            Some(ParKernel::Copy { source, targets }) => ConeKernel::Copy {
                source,
                targets: targets
                    .into_iter()
                    .map(|v| self.add_write(v))
                    .collect::<Option<Vec<_>>>()?,
            },
            Some(ParKernel::Apply { op, inputs, result }) => ConeKernel::Apply {
                op,
                inputs,
                result: self.add_write(result)?,
            },
        };
        self.steps.push(ParStep {
            plan_idx: i as u32,
            op,
            cid,
            trigger,
            entry,
            cid_local,
            kernel,
        });
        Some(())
    }

    /// Assigns a fresh local index to a write target. Single-writer
    /// plans guarantee each variable is written once; a duplicate means
    /// a kind's kernel disagrees with the simulation — refuse.
    fn add_write(&mut self, var: VarId) -> Option<ParWrite> {
        let next = self.local_vars.len() as u32;
        match self.local_vars.entry(var) {
            std::collections::hash_map::Entry::Occupied(_) => None,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                Some(ParWrite { var, local: next })
            }
        }
    }

    /// Executing-step count: the per-task cost input to the replay-time
    /// admission heuristic.
    fn exec_steps(&self) -> u32 {
        self.steps
            .iter()
            .filter(|s| matches!(s.op, PlanOp::Immediate | PlanOp::RunScheduled))
            .count() as u32
    }

    fn finish(self) -> ParCone {
        let scratch = ConeScratch {
            epoch: 0,
            var_marks: vec![0; self.local_vars.len()],
            cid_marks: vec![0; self.local_cids.len()],
            entry_marks: vec![0; self.local_entries.len()],
            pre: Vec::new(),
            visited: Vec::new(),
            counters: ConeCounters::default(),
            failed: false,
        };
        ParCone {
            steps: self.steps,
            scratch,
        }
    }
}

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

/// Hard cap on pool helper threads across the process.
const MAX_POOL_WORKERS: usize = 64;

/// Type-erased pointer to a submitter's task closure. The closure lives
/// on the submitter's stack; [`pool_run`] guarantees it outlives the job
/// (the job slot is removed before `pool_run` returns or unwinds, and
/// workers only dereference the pointer while the slot is live).
struct SendFnPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for SendFnPtr {}

/// One submitted job: a closure plus per-executor work-stealing deques.
/// Executor 0 is the submitter; helpers take slots 1.. as they join.
/// Each executor pops its own deque from the back (LIFO — the task it
/// was just handed, still cache-warm) and, when dry, sweeps the other
/// deques from the front (FIFO — the oldest, least-contended work).
/// Claims happen under the pool lock: on the hermetic target the lock is
/// the synchronization point anyway, and it doubles as the
/// happens-before barrier wavefront layers rely on.
struct PoolJob {
    f: SendFnPtr,
    /// Per-executor deques, filled contiguously at submit time.
    queues: Vec<VecDeque<usize>>,
    /// Tasks not yet claimed by any executor.
    unclaimed: usize,
    /// Claimed-or-unclaimed tasks not yet completed; the submitter
    /// returns only when this reaches zero.
    outstanding: usize,
    /// Maximum helpers that may join (submitter's `threads - 1`).
    cap: usize,
    /// Helpers currently inside the job.
    joined: usize,
    /// Next executor slot to hand a joining helper (wraps over 1..).
    next_exec: usize,
    /// Tasks claimed by an executor other than their deque's owner.
    stolen: u64,
    /// A task panicked (in a helper); the submitter re-raises.
    panicked: bool,
}

impl PoolJob {
    /// Claims a task for executor `me`: own deque LIFO, then steal FIFO.
    fn claim(&mut self, me: usize) -> Option<usize> {
        if self.unclaimed == 0 {
            return None;
        }
        if let Some(t) = self.queues[me].pop_back() {
            self.unclaimed -= 1;
            return Some(t);
        }
        let nq = self.queues.len();
        for d in 1..nq {
            if let Some(t) = self.queues[(me + d) % nq].pop_front() {
                self.unclaimed -= 1;
                self.stolen += 1;
                return Some(t);
            }
        }
        None
    }
}

#[derive(Default)]
struct PoolState {
    /// Stable-index job slots (`None` = free). Indices stay valid for a
    /// job's whole lifetime; removal just clears the slot.
    jobs: Vec<Option<PoolJob>>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signalled when work arrives (helpers wait here).
    work_cv: Condvar,
    /// Signalled when a job's last task completes (submitters wait here).
    done_cv: Condvar,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    fn new() -> Self {
        Pool {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            spawned: AtomicUsize::new(0),
        }
    }

    /// Lazily grows the helper set to `want` threads (process-capped).
    /// Helpers never exit; they park on `work_cv` between jobs.
    fn ensure_spawned(&'static self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        loop {
            let cur = self.spawned.load(Ordering::Relaxed);
            if cur >= want {
                return;
            }
            if self
                .spawned
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let spawned = std::thread::Builder::new()
                    .name(format!("stem-par-{cur}"))
                    .spawn(move || self.worker_loop());
                if spawned.is_err() {
                    // Thread exhaustion: run degraded (submitter still
                    // drains every task itself).
                    self.spawned.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    fn worker_loop(&self) {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // Find a job with unclaimed tasks and helper capacity, and
            // take an executor slot in it (owning one of its deques).
            let mut found = None;
            for (ji, slot) in guard.jobs.iter_mut().enumerate() {
                if let Some(j) = slot {
                    if j.joined < j.cap && j.unclaimed > 0 {
                        j.joined += 1;
                        let me = j.next_exec;
                        j.next_exec += 1;
                        if j.next_exec >= j.queues.len() {
                            j.next_exec = 1;
                        }
                        found = Some((ji, me));
                        break;
                    }
                }
            }
            let Some((ji, me)) = found else {
                guard = self.work_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
                continue;
            };
            // Drain the job. The slot cannot be removed while we are
            // inside: removal requires `outstanding == 0`, and every
            // task we claim keeps `outstanding` positive until we mark
            // it complete — which we do holding the same lock we then
            // re-inspect the job under.
            loop {
                let j = guard.jobs[ji].as_mut().expect("job alive while joined");
                let Some(t) = j.claim(me) else {
                    j.joined -= 1;
                    break;
                };
                let f = j.f.0;
                drop(guard);
                // SAFETY: the job slot is live (outstanding > 0), so the
                // submitter is still inside `pool_run` and the closure
                // is alive on its stack.
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    (unsafe { &*f })(t);
                }))
                .is_err();
                guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let j = guard.jobs[ji].as_mut().expect("job alive while running");
                if panicked {
                    j.panicked = true;
                }
                j.outstanding -= 1;
                if j.outstanding == 0 {
                    self.done_cv.notify_all();
                }
            }
        }
    }
}

/// Runs `f(0..n_tasks)` across up to `threads` executors (the calling
/// thread plus pool helpers), returning the number of tasks stolen —
/// claimed by an executor other than the owner of the deque they were
/// dealt to — once every task has completed. With `threads <= 1` or a
/// single task, runs inline with no pool traffic (and no steals).
/// Panics in tasks propagate to the caller after all tasks finish or
/// are accounted for.
pub(crate) fn pool_run(n_tasks: usize, threads: usize, f: &(dyn Fn(usize) + Sync)) -> u64 {
    if threads <= 1 || n_tasks <= 1 {
        for t in 0..n_tasks {
            f(t);
        }
        return 0;
    }
    let pool = POOL.get_or_init(Pool::new);
    let helpers = (threads - 1).min(n_tasks - 1).min(MAX_POOL_WORKERS);
    pool.ensure_spawned(helpers);
    // Deal tasks to the executor deques in contiguous blocks, in task
    // order: executor 0 (the submitter) gets the first block, helper
    // slots the rest. Stealing rebalances whatever the owners leave.
    let n_queues = helpers + 1;
    let mut queues: Vec<VecDeque<usize>> = Vec::with_capacity(n_queues);
    queues.resize_with(n_queues, VecDeque::new);
    for t in 0..n_tasks {
        queues[t * n_queues / n_tasks].push_back(t);
    }
    // Erase the closure's lifetime for the job slot; see `SendFnPtr`.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let ji = {
        let mut guard = pool.state.lock().unwrap_or_else(|e| e.into_inner());
        let job = PoolJob {
            f: SendFnPtr(f_static as *const _),
            queues,
            unclaimed: n_tasks,
            outstanding: n_tasks,
            cap: helpers,
            joined: 0,
            next_exec: 1,
            stolen: 0,
            panicked: false,
        };
        match guard.jobs.iter().position(|s| s.is_none()) {
            Some(i) => {
                guard.jobs[i] = Some(job);
                i
            }
            None => {
                guard.jobs.push(Some(job));
                guard.jobs.len() - 1
            }
        }
    };
    pool.work_cv.notify_all();
    // Participate as executor 0: claim tasks alongside the helpers, then
    // wait for the stragglers they still hold.
    let mut local_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut guard = pool.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let j = guard.jobs[ji].as_mut().expect("own job alive");
        if let Some(t) = j.claim(0) {
            drop(guard);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(t)));
            guard = pool.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(p) = result {
                local_panic = Some(p);
            }
            let j = guard.jobs[ji].as_mut().expect("own job alive");
            j.outstanding -= 1;
            if j.outstanding == 0 {
                pool.done_cv.notify_all();
            }
        } else if j.outstanding > 0 {
            guard = pool.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        } else {
            break;
        }
    }
    let (helper_panicked, stolen) = guard.jobs[ji]
        .as_ref()
        .map(|j| (j.panicked, j.stolen))
        .unwrap_or((false, 0));
    guard.jobs[ji] = None;
    drop(guard);
    if let Some(p) = local_panic {
        std::panic::resume_unwind(p);
    }
    if helper_panicked {
        panic!("parallel replay worker panicked");
    }
    stolen
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let stolen = pool_run(100, 4, &|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        assert!(stolen <= 100);
    }

    #[test]
    fn pool_claims_own_deque_lifo_then_steals_fifo() {
        let noop: &(dyn Fn(usize) + Sync) = &|_| {};
        let mut job = PoolJob {
            f: SendFnPtr(noop as *const _),
            queues: vec![VecDeque::from(vec![0, 1, 2]), VecDeque::from(vec![3, 4, 5])],
            unclaimed: 6,
            outstanding: 6,
            cap: 1,
            joined: 0,
            next_exec: 1,
            stolen: 0,
            panicked: false,
        };
        // Owners pop their own deques from the back.
        assert_eq!(job.claim(0), Some(2));
        assert_eq!(job.claim(1), Some(5));
        assert_eq!(job.claim(0), Some(1));
        assert_eq!(job.claim(0), Some(0));
        assert_eq!(job.stolen, 0);
        // Executor 0's deque is dry: it steals the oldest task from 1.
        assert_eq!(job.claim(0), Some(3));
        assert_eq!(job.stolen, 1);
        assert_eq!(job.claim(1), Some(4));
        assert_eq!(job.stolen, 1);
        assert_eq!(job.claim(0), None);
        assert_eq!(job.unclaimed, 0);
    }

    #[test]
    fn pool_inline_paths_never_steal() {
        assert_eq!(pool_run(1, 8, &|_| {}), 0);
        assert_eq!(pool_run(5, 1, &|_| {}), 0);
    }

    #[test]
    fn pool_inline_when_single_threaded() {
        let hits = AtomicU64::new(0);
        pool_run(7, 1, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn pool_handles_back_to_back_jobs() {
        for round in 0..50 {
            let sum = AtomicU64::new(0);
            let n = 1 + (round % 9);
            pool_run(n, 3, &|t| {
                sum.fetch_add(t as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (n * (n + 1) / 2) as u64);
        }
    }

    #[test]
    fn pool_propagates_task_panics() {
        let caught = std::panic::catch_unwind(|| {
            pool_run(8, 4, &|t| {
                if t == 5 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // The pool survives a panicked job.
        let hits = AtomicU64::new(0);
        pool_run(8, 4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn refs_disjoint_and_merge() {
        assert!(ParPlan::refs_disjoint(&[1, 3, 5], &[2, 4, 6]));
        assert!(!ParPlan::refs_disjoint(&[1, 3, 5], &[5, 9]));
        assert!(ParPlan::refs_disjoint(&[], &[1]));
        let mut acc = vec![1, 4];
        ParPlan::merge_refs(&mut acc, &[2, 4, 7]);
        assert_eq!(acc, vec![1, 2, 4, 7]);
    }

    #[test]
    fn pure_op_matches_functional_semantics() {
        let vals = [Value::Int(2), Value::Int(3)];
        assert_eq!(PureOp::Sum.apply(vals.iter()), Some(Value::Int(5)));
        assert_eq!(PureOp::Max.apply(vals.iter()), Some(Value::Int(3)));
        assert_eq!(PureOp::Min.apply(vals.iter()), Some(Value::Int(2)));
        assert_eq!(PureOp::Product.apply(vals.iter()), Some(Value::Float(6.0)));
        let one = [Value::Float(3.0)];
        assert_eq!(
            PureOp::Scale {
                gain: 2.0,
                offset: 1.0
            }
            .apply(one.iter()),
            Some(Value::Float(7.0))
        );
        // Scale refuses extra inputs, like FunctionalOp.
        let two = [Value::Float(3.0), Value::Float(4.0)];
        assert_eq!(
            PureOp::Scale {
                gain: 2.0,
                offset: 1.0
            }
            .apply(two.iter()),
            None
        );
        // Empty sums fold from the identity.
        let empty: [Value; 0] = [];
        assert_eq!(PureOp::Sum.apply(empty.iter()), Some(Value::Int(0)));
        assert_eq!(PureOp::Max.apply(empty.iter()), None);
    }
}
