//! Compiled propagation plans — thesis §9.3's "network compilation"
//! refinement applied to the *dynamic* propagation path.
//!
//! A [`PropPlan`] is the flattened consequence-closure of one root
//! variable: the exact sequence of constraint activations the agenda
//! machinery would perform for a change of that root, recorded once by
//! simulation ([`crate::Network::plan_status`] exposes the result) and
//! replayed on subsequent `set`s without touching the scheduler. Plans
//! use struct-of-arrays storage so the hot loop walks three flat
//! vectors instead of chasing queue entries.
//!
//! Compilation is conservative: any cone whose write-set cannot be
//! proven statically (a kind without [`planned_writes`], a multi-writer
//! variable, cross-scheduled dataflow) is recorded as
//! [`PlanSlot::Uncompilable`] and served by the agenda path forever —
//! the agenda remains the semantic ground truth.
//!
//! [`planned_writes`]: crate::ConstraintKind::planned_writes

use crate::constraint::ConstraintKind;
use crate::ids::{ConstraintId, VarId};
use crate::par::ParPlan;
use std::rc::Rc;

/// One step of a compiled plan — mirrors the dispatch outcomes of the
/// agenda interpreter so replay reproduces its statistics exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanOp {
    /// Immediate-activation constraint: run `infer` now.
    Immediate,
    /// Activation suppressed by `should_activate` (e.g. a functional
    /// constraint seeing its own result change). Counts an activation,
    /// runs nothing.
    NoActivate,
    /// Scheduled kind, first sighting: counts an activation and a
    /// schedule; the run happens at the matching [`PlanOp::RunScheduled`].
    ScheduleNew,
    /// Scheduled kind, duplicate sighting: counts an activation only
    /// (the agenda deduplicates on the `(constraint, variable)` pair).
    ScheduleDup,
    /// Drain-phase run of a previously scheduled entry: run `infer`.
    RunScheduled,
}

/// A compiled propagation plan for one root variable, valid while the
/// network's structure generation matches [`PropPlan::generation`].
///
/// The plan records the *all-change* superset of the interpreter's work;
/// replay prunes it at runtime with per-variable change marks, so a step
/// whose trigger variable kept its value is skipped exactly as the
/// interpreter would never have dispatched it.
#[derive(Debug, Clone)]
pub(crate) struct PropPlan {
    /// Structure generation the plan was compiled under.
    pub(crate) generation: u64,
    /// Step tags, parallel to `cids`/`changed`/`kinds`/`entry_of`.
    pub(crate) ops: Vec<PlanOp>,
    /// Constraint activated at each step.
    pub(crate) cids: Vec<ConstraintId>,
    /// For activation steps: the trigger variable whose change dispatches
    /// the step (always `Some`). For [`PlanOp::RunScheduled`]: the entry's
    /// recorded variable (`None` for batched agenda entries) — passed to
    /// `infer` verbatim.
    pub(crate) changed: Vec<Option<VarId>>,
    /// Shared handles to each step's kind, hoisted so replay needs no
    /// constraint-arena indirection (and no `Rc::clone`) per step.
    pub(crate) kinds: Vec<Rc<dyn ConstraintKind>>,
    /// For `Schedule*`/`RunScheduled` steps: the dense index of the agenda
    /// entry `(constraint, variable)` the step touches; `u32::MAX`
    /// elsewhere. Liveness flows through these indices: a drain-phase run
    /// executes only if some schedule sighting of its entry was live.
    pub(crate) entry_of: Vec<u32>,
    /// Number of distinct agenda entries in the plan (domain of
    /// `entry_of`).
    pub(crate) n_entries: u32,
    /// Number of distinct constraints the plan can touch — the static
    /// upper bound on the final satisfaction sweep, for display.
    pub(crate) n_checks: u32,
    /// Cone partition for parallel replay ([`crate::par`]), built only
    /// when the network's thread knob exceeds 1 and the plan admits a
    /// partition. Stored inside the plan so [`PropPlan::generation`]
    /// covers the cone tables: a structural edit invalidates the
    /// partition metadata together with the op vectors.
    pub(crate) par: Option<Box<ParPlan>>,
}

/// Cache slot for one root variable's plan.
#[derive(Debug, Clone, Default)]
pub(crate) enum PlanSlot {
    /// Never attempted (or taken out for execution).
    #[default]
    Absent,
    /// Compilation was attempted at the recorded structure generation and
    /// refused; retried only after a structural edit.
    Uncompilable(u64),
    /// A valid compiled plan.
    Ready(Box<PropPlan>),
}

/// Diagnostic view of a root variable's parallel partition
/// ([`crate::Network::plan_par_detail`]): enough to see replay shape and
/// skew without a profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanParDetail {
    /// Independent cones in the partition (1 for a wavefront plan).
    pub cones: usize,
    /// Wavefront layer depth (1 for independent cones — a single
    /// barrier-free launch).
    pub layers: usize,
    /// Executing steps in the costliest single pool task (largest cone
    /// or widest layer) — what the pool-admission floor compares
    /// against.
    pub max_task_exec: usize,
    /// Pool tasks stolen during the most recent committed parallel
    /// replay of this plan. Schedule-dependent; diagnostic only.
    pub last_stolen: u64,
}

/// Public view of a root variable's plan-cache entry
/// ([`crate::Network::plan_status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStatus {
    /// No compilation has been attempted (or the cached entry is stale).
    NotCompiled,
    /// The root's cone was refused by the plan compiler; `set`s on it
    /// always take the agenda path.
    Uncompilable,
    /// A current plan is cached.
    Ready {
        /// Number of steps (constraint activations) in the plan.
        steps: usize,
        /// Number of distinct constraints the plan can touch — the static
        /// upper bound on any one cycle's final satisfaction sweep.
        checks: usize,
    },
}
