use crate::constraint::ConstraintKind;
use crate::ids::{ConstraintId, VarId};
use crate::network::Network;
use crate::value::Value;
use crate::violation::Violation;
use std::fmt;
use std::rc::Rc;

/// Signature of a custom predicate test over the argument values.
pub type CustomTest = dyn Fn(&[Value]) -> bool;

/// The test applied by a [`Predicate`] constraint.
#[derive(Clone)]
pub enum PredOp {
    /// Every argument ≤ the bound (e.g. the "120 ns or less" delay
    /// specification of thesis §5.1).
    LeConst(Value),
    /// Every argument ≥ the bound.
    GeConst(Value),
    /// Every argument = the constant.
    EqConst(Value),
    /// Every argument within `[lo, hi]`.
    RangeConst {
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `args[0] ≤ args[1]` (two arguments).
    Le,
    /// `args[0] < args[1]` (two arguments).
    Lt,
    /// Arbitrary test of all argument values (`Nil`s filtered out by the
    /// caller's choice); `name` labels the kind.
    Custom(&'static str, Rc<CustomTest>),
}

impl fmt::Debug for PredOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredOp::LeConst(v) => write!(f, "LeConst({v})"),
            PredOp::GeConst(v) => write!(f, "GeConst({v})"),
            PredOp::EqConst(v) => write!(f, "EqConst({v})"),
            PredOp::RangeConst { lo, hi } => write!(f, "RangeConst({lo}, {hi})"),
            PredOp::Le => write!(f, "Le"),
            PredOp::Lt => write!(f, "Lt"),
            PredOp::Custom(name, _) => write!(f, "Custom({name})"),
        }
    }
}

/// A check-only constraint: performs no inference, only participates in the
/// satisfaction sweep — the `PredicateConstraint` family of thesis Fig. 7.9.
///
/// Arguments with `Nil` values are skipped (`arg value isNil ifFalse:`),
/// making unspecified designs vacuously valid: the predicate bites as soon
/// as propagation supplies a value.
///
/// ```
/// use stem_core::{Network, Value, Justification};
/// use stem_core::kinds::{Predicate, PredOp};
///
/// let mut net = Network::new();
/// let delay = net.add_variable("delay");
/// net.add_constraint(Predicate::new(PredOp::LeConst(Value::Float(120.0))), [delay])
///     .unwrap();
/// assert!(net.set(delay, Value::Float(100.0), Justification::Application).is_ok());
/// assert!(net.set(delay, Value::Float(130.0), Justification::Application).is_err());
/// // Violation restored the previous value.
/// assert_eq!(net.value(delay), &Value::Float(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct Predicate {
    op: PredOp,
}

impl Predicate {
    /// Creates a predicate constraint with the given test.
    pub fn new(op: PredOp) -> Self {
        Predicate { op }
    }

    /// `arg ≤ bound` for every argument.
    pub fn le_const(bound: impl Into<Value>) -> Self {
        Predicate::new(PredOp::LeConst(bound.into()))
    }

    /// `arg ≥ bound` for every argument.
    pub fn ge_const(bound: impl Into<Value>) -> Self {
        Predicate::new(PredOp::GeConst(bound.into()))
    }

    /// `arg = constant` for every argument.
    pub fn eq_const(value: impl Into<Value>) -> Self {
        Predicate::new(PredOp::EqConst(value.into()))
    }

    /// Arbitrary named test over the argument values.
    pub fn custom(name: &'static str, f: impl Fn(&[Value]) -> bool + 'static) -> Self {
        Predicate::new(PredOp::Custom(name, Rc::new(f)))
    }
}

impl ConstraintKind for Predicate {
    fn kind_name(&self) -> &str {
        match &self.op {
            PredOp::LeConst(_) => "lessEqualPredicate",
            PredOp::GeConst(_) => "greaterEqualPredicate",
            PredOp::EqConst(_) => "equalPredicate",
            PredOp::RangeConst { .. } => "rangePredicate",
            PredOp::Le => "orderPredicate",
            PredOp::Lt => "strictOrderPredicate",
            PredOp::Custom(name, _) => name,
        }
    }

    fn infer(
        &self,
        _net: &mut Network,
        _cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Result<(), Violation> {
        // Check-only: the propagation method "does not assign values to any
        // variable" — termination case 1 of §4.2.2.
        Ok(())
    }

    fn outputs(&self, _net: &Network, _cid: ConstraintId) -> Vec<VarId> {
        Vec::new() // pure check: assigns nothing
    }

    fn planned_writes(
        &self,
        _net: &Network,
        _cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Option<Vec<VarId>> {
        Some(Vec::new()) // check-only: statically writes nothing
    }

    fn par_kernel(
        &self,
        _net: &Network,
        _cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Option<crate::par::ParKernel> {
        // Check-only: `infer` assigns nothing, so the kernel is a no-op and
        // the satisfaction test runs in the (sequential) final sweep. This
        // holds for `Custom` too — its closure is only ever called from the
        // main thread's `is_satisfied`.
        Some(crate::par::ParKernel::Check)
    }

    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool {
        use std::cmp::Ordering;
        // Custom tests take a contiguous `&[Value]`, the one form that must
        // materialise the values; the built-in ops read them in place so
        // the satisfaction sweep stays allocation-free.
        if let PredOp::Custom(_, f) = &self.op {
            let values: Vec<Value> = net
                .args(cid)
                .iter()
                .map(|&v| net.value(v).clone())
                .collect();
            return f(&values);
        }
        let le = |a: &Value, b: &Value| {
            matches!(
                a.numeric_cmp(b),
                Some(Ordering::Less) | Some(Ordering::Equal)
            )
        };
        let args = net.args(cid);
        let vals = args.iter().map(|&v| net.value(v));
        match &self.op {
            PredOp::LeConst(bound) => vals.filter(|v| !v.is_nil()).all(|v| le(v, bound)),
            PredOp::GeConst(bound) => vals.filter(|v| !v.is_nil()).all(|v| le(bound, v)),
            PredOp::EqConst(c) => vals.filter(|v| !v.is_nil()).all(|v| *v == *c),
            PredOp::RangeConst { lo, hi } => {
                vals.filter(|v| !v.is_nil()).all(|v| le(lo, v) && le(v, hi))
            }
            PredOp::Le | PredOp::Lt => {
                if args.len() != 2 {
                    return true;
                }
                let (a, b) = (net.value(args[0]), net.value(args[1]));
                if a.is_nil() || b.is_nil() {
                    return true;
                }
                if matches!(self.op, PredOp::Le) {
                    le(a, b)
                } else {
                    a.numeric_cmp(b) == Some(Ordering::Less)
                }
            }
            PredOp::Custom(..) => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Justification;

    #[test]
    fn le_const_accepts_and_rejects() {
        let mut net = Network::new();
        let d = net.add_variable("d");
        net.add_constraint(Predicate::le_const(Value::Float(120.0)), [d])
            .unwrap();
        assert!(net.set(d, Value::Float(119.0), Justification::User).is_ok());
        let err = net
            .set(d, Value::Float(121.0), Justification::User)
            .unwrap_err();
        assert_eq!(err.constraint.map(|c| c.index()), Some(0));
        assert_eq!(net.value(d), &Value::Float(119.0));
    }

    #[test]
    fn ge_eq_range() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        net.add_constraint(Predicate::ge_const(Value::Int(2)), [a])
            .unwrap();
        assert!(net.set(a, Value::Int(1), Justification::User).is_err());
        assert!(net.set(a, Value::Int(2), Justification::User).is_ok());

        let b = net.add_variable("b");
        net.add_constraint(
            Predicate::new(PredOp::RangeConst {
                lo: Value::Int(0),
                hi: Value::Int(10),
            }),
            [b],
        )
        .unwrap();
        assert!(net.set(b, Value::Int(10), Justification::User).is_ok());
        assert!(net.set(b, Value::Int(11), Justification::User).is_err());

        let c = net.add_variable("c");
        net.add_constraint(Predicate::eq_const(Value::str("ttl")), [c])
            .unwrap();
        assert!(net.set(c, Value::str("ttl"), Justification::User).is_ok());
        assert!(net.set(c, Value::str("cmos"), Justification::User).is_err());
    }

    #[test]
    fn binary_order() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.add_constraint(Predicate::new(PredOp::Lt), [a, b])
            .unwrap();
        net.set(a, Value::Int(1), Justification::User).unwrap();
        assert!(net.set(b, Value::Int(2), Justification::User).is_ok());
        assert!(net.set(b, Value::Int(1), Justification::User).is_err());
        assert!(net.set(b, Value::Int(0), Justification::User).is_err());
    }

    #[test]
    fn nil_is_vacuous() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let cid = net
            .add_constraint(Predicate::le_const(Value::Int(5)), [a])
            .unwrap();
        assert!(net.is_satisfied(cid));
    }

    #[test]
    fn custom_predicate() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        // a and b must differ by at most 1 when both known.
        let p = Predicate::custom("closePair", |vals| {
            match (vals[0].as_f64(), vals[1].as_f64()) {
                (Some(x), Some(y)) => (x - y).abs() <= 1.0,
                _ => true,
            }
        });
        net.add_constraint(p, [a, b]).unwrap();
        net.set(a, Value::Int(5), Justification::User).unwrap();
        assert!(net.set(b, Value::Int(6), Justification::User).is_ok());
        assert!(net.set(b, Value::Int(8), Justification::User).is_err());
    }
}
