//! Domain propagators and their [`ConstraintKind`] adapter (DESIGN.md §5j).
//!
//! The starter library fixed by ROADMAP item 3: bounds-consistent
//! arithmetic `x + y = z` ([`DomAdd`]), the ordering `x ≤ y + c`
//! ([`DomLe`]), `all_different` via bounds reasoning ([`AllDiff`]), and the
//! reified ordering `b ⇔ x ≤ y + c` ([`DomReifLe`]). Scaled, negated, and
//! shifted variants are *derived* from the same base implementations by
//! composing affine [`View`]s, per *Perfect Derived Propagators* — no
//! propagation strength is lost, and no variant duplicates bound math.
//!
//! [`DomainConstraint`] adapts any [`DomainPropagator`] to the network's
//! [`ConstraintKind`] protocol: it snapshots argument values into [`Dom`]s
//! on the stack, runs the propagator, writes back only the domains that
//! narrowed (preserving each argument's representation), translates
//! [`PropagateOutcome::DomainWipeout`] into a batch-aborting
//! [`Violation`], and reports [`PropagateOutcome::Subsumed`] to
//! [`Network::mark_subsumed`] so both execution paths prune the entailed
//! constraint until a watched domain widens.

use crate::constraint::ConstraintKind;
use crate::domain::{
    outcome, Dom, DomainPropagator, FinSet, Interval, PropagateOutcome, View, MAX_DOM_ARITY,
};
use crate::ids::{ConstraintId, VarId};
use crate::justification::DependencyRecord;
use crate::network::{Network, SetStatus};
use crate::value::Value;
use crate::violation::Violation;

/// Sentinel for "narrow every argument" in the directional selectors.
const OUT_ALL: u8 = u8::MAX;

/// Result of one bound-narrowing step.
enum Narrow {
    Changed,
    Same,
    Wipeout,
}

/// Meets `d` with the preimage of `[lo, hi]` under `view`. `Opaque`
/// domains pass through untouched (the propagator cannot reason about
/// them); an empty preimage or empty meet is wipeout.
fn narrow(d: &mut Dom, view: View, lo: i64, hi: i64) -> Narrow {
    if matches!(d, Dom::Opaque) {
        return Narrow::Same;
    }
    let Some((pl, ph)) = view.preimage(lo, hi) else {
        return Narrow::Wipeout;
    };
    match d.meet_range(pl, ph) {
        None => Narrow::Wipeout,
        Some(nd) if nd != *d => {
            *d = nd;
            Narrow::Changed
        }
        Some(_) => Narrow::Same,
    }
}

/// Keeps only values whose view image is ≤ `max`.
fn narrow_below(d: &mut Dom, view: View, max: i64) -> Narrow {
    narrow(d, view, i64::MIN, max)
}

/// Keeps only values whose view image is ≥ `min`.
fn narrow_above(d: &mut Dom, view: View, min: i64) -> Narrow {
    narrow(d, view, min, i64::MAX)
}

/// Viewed bounds of one argument domain, when it has bounds.
fn viewed(doms: &[Dom], views: &[View], i: usize) -> Option<(i64, i64)> {
    doms[i].bounds().map(|(l, h)| views[i].image(l, h))
}

macro_rules! try_narrow {
    ($changed:ident, $e:expr) => {
        match $e {
            Narrow::Wipeout => return PropagateOutcome::DomainWipeout,
            Narrow::Changed => $changed = true,
            Narrow::Same => {}
        }
    };
}

// ---------------------------------------------------------------------
// DomAdd — bounds-consistent ternary sum over views.
// ---------------------------------------------------------------------

/// Bounds-consistent `v0(x) + v1(y) = v2(z)` over affine views.
///
/// With identity views this is plain `x + y = z`; composing views derives
/// difference (`z = x − y` via a negated middle view), scaled sums, and
/// shifted variants from the same bound math. The forward form (narrow `z`
/// only) is directional and plannable; [`DomAdd::all`] narrows every
/// argument and stays on the agenda interpreter.
#[derive(Debug, Clone, Copy)]
pub struct DomAdd {
    views: [View; 3],
    out: u8,
}

impl DomAdd {
    /// Forward `x + y = z`: narrows `z` from `x` and `y` (plannable).
    pub fn forward() -> Self {
        DomAdd {
            views: [View::IDENT; 3],
            out: 2,
        }
    }

    /// Bidirectional `x + y = z`: narrows all three arguments.
    pub fn all() -> Self {
        DomAdd {
            views: [View::IDENT; 3],
            out: OUT_ALL,
        }
    }

    /// Forward difference `x − y = z`, derived by negating the middle
    /// view: `x + (−y) = z`.
    pub fn difference() -> Self {
        DomAdd {
            views: [View::IDENT, View::negated(), View::IDENT],
            out: 2,
        }
    }

    /// Derived variant over explicit views; `out` is the argument index to
    /// narrow, or pass [`DomAdd::all_views`] for the bidirectional form.
    pub fn with_views(views: [View; 3], out: usize) -> Self {
        assert!(out < 3, "DomAdd output index out of range: {out}");
        DomAdd {
            views,
            out: out as u8,
        }
    }

    /// Bidirectional derived variant over explicit views.
    pub fn all_views(views: [View; 3]) -> Self {
        DomAdd {
            views,
            out: OUT_ALL,
        }
    }

    fn writes(&self, t: usize) -> bool {
        self.out == OUT_ALL || usize::from(self.out) == t
    }

    fn entailed_inner(&self, doms: &[Dom]) -> bool {
        let sing = |i: usize| doms[i].singleton().map(|k| self.views[i].image(k, k).0);
        match (sing(0), sing(1), sing(2)) {
            (Some(a), Some(b), Some(c)) => a.checked_add(b) == Some(c),
            _ => false,
        }
    }
}

impl DomainPropagator for DomAdd {
    fn name(&self) -> &str {
        "domAdd"
    }

    fn output(&self) -> Option<usize> {
        (self.out != OUT_ALL).then_some(usize::from(self.out))
    }

    fn propagate(&self, doms: &mut [Dom]) -> PropagateOutcome {
        debug_assert_eq!(doms.len(), 3);
        let mut changed = false;
        for t in 0..3 {
            if !self.writes(t) {
                continue;
            }
            // The other two arguments determine target t's viewed range:
            // z = x + y, x = z − y, y = z − x.
            let (i, j) = match t {
                0 => (2, 1),
                1 => (2, 0),
                _ => (0, 1),
            };
            let (Some((li, hi)), Some((lj, hj))) =
                (viewed(doms, &self.views, i), viewed(doms, &self.views, j))
            else {
                continue;
            };
            let (lo, hi) = if t == 2 {
                (li.saturating_add(lj), hi.saturating_add(hj))
            } else {
                (li.saturating_sub(hj), hi.saturating_sub(lj))
            };
            try_narrow!(changed, narrow(&mut doms[t], self.views[t], lo, hi));
        }
        outcome(changed, self.entailed_inner(doms))
    }

    fn satisfied(&self, doms: &[Dom]) -> bool {
        let (Some((l0, h0)), Some((l1, h1)), Some((l2, h2))) = (
            viewed(doms, &self.views, 0),
            viewed(doms, &self.views, 1),
            viewed(doms, &self.views, 2),
        ) else {
            return true;
        };
        l0.saturating_add(l1) <= h2 && l2 <= h0.saturating_add(h1)
    }

    fn entailed(&self, doms: &[Dom]) -> bool {
        self.entailed_inner(doms)
    }
}

// ---------------------------------------------------------------------
// DomLe — bounds-consistent ordering over views.
// ---------------------------------------------------------------------

/// Bounds-consistent `v0(x) ≤ v1(y) + c` over affine views.
///
/// The base implementation carries every derived comparison: `x ≥ y + c`
/// negates both views (and `c`), strict forms shift `c` by one, and scaled
/// comparisons compose a scaling view. Entailment (`max v0(x) ≤ min
/// v1(y) + c`) is detected and reported as
/// [`PropagateOutcome::Subsumed`], which is what drives runtime plan
/// pruning: once entailed, the constraint can never act again until a
/// watched domain widens.
#[derive(Debug, Clone, Copy)]
pub struct DomLe {
    c: i64,
    views: [View; 2],
    out: u8,
}

impl DomLe {
    /// `x ≤ y + c`, narrowing both sides.
    pub fn le(c: i64) -> Self {
        DomLe {
            c,
            views: [View::IDENT; 2],
            out: OUT_ALL,
        }
    }

    /// `x < y + c` ≡ `x ≤ y + (c − 1)` on integers.
    pub fn lt(c: i64) -> Self {
        DomLe::le(c.saturating_sub(1))
    }

    /// Derived `x ≥ y + c`: negate both views and the offset.
    pub fn ge(c: i64) -> Self {
        DomLe {
            c: c.saturating_neg(),
            views: [View::negated(), View::negated()],
            out: OUT_ALL,
        }
    }

    /// Derived `x > y + c` ≡ `x ≥ y + (c + 1)`.
    pub fn gt(c: i64) -> Self {
        DomLe::ge(c.saturating_add(1))
    }

    /// Directional form narrowing only argument `out` (0 = tighten `x`'s
    /// upper bound, 1 = raise `y`'s lower bound) — plannable.
    pub fn directional(c: i64, out: usize) -> Self {
        assert!(out < 2, "DomLe output index out of range: {out}");
        DomLe {
            c,
            views: [View::IDENT; 2],
            out: out as u8,
        }
    }

    /// Fully derived variant over explicit views; `out` of `None` narrows
    /// both sides.
    pub fn with_views(c: i64, views: [View; 2], out: Option<usize>) -> Self {
        let out = match out {
            Some(ix) => {
                assert!(ix < 2, "DomLe output index out of range: {ix}");
                ix as u8
            }
            None => OUT_ALL,
        };
        DomLe { c, views, out }
    }

    fn entailed_inner(&self, doms: &[Dom]) -> bool {
        match (viewed(doms, &self.views, 0), viewed(doms, &self.views, 1)) {
            (Some((_, xh)), Some((yl, _))) => xh <= yl.saturating_add(self.c),
            _ => false,
        }
    }
}

impl DomainPropagator for DomLe {
    fn name(&self) -> &str {
        "domLe"
    }

    fn output(&self) -> Option<usize> {
        (self.out != OUT_ALL).then_some(usize::from(self.out))
    }

    fn propagate(&self, doms: &mut [Dom]) -> PropagateOutcome {
        debug_assert_eq!(doms.len(), 2);
        let vx = viewed(doms, &self.views, 0);
        let vy = viewed(doms, &self.views, 1);
        let mut changed = false;
        if self.out != 1 {
            if let Some((_, yh)) = vy {
                try_narrow!(
                    changed,
                    narrow_below(&mut doms[0], self.views[0], yh.saturating_add(self.c))
                );
            }
        }
        if self.out != 0 {
            if let Some((xl, _)) = vx {
                try_narrow!(
                    changed,
                    narrow_above(&mut doms[1], self.views[1], xl.saturating_sub(self.c))
                );
            }
        }
        outcome(changed, self.entailed_inner(doms))
    }

    fn satisfied(&self, doms: &[Dom]) -> bool {
        match (viewed(doms, &self.views, 0), viewed(doms, &self.views, 1)) {
            (Some((xl, _)), Some((_, yh))) => xl <= yh.saturating_add(self.c),
            _ => true,
        }
    }

    fn entailed(&self, doms: &[Dom]) -> bool {
        self.entailed_inner(doms)
    }
}

// ---------------------------------------------------------------------
// AllDiff — pairwise distinctness via singleton removal + pigeonhole.
// ---------------------------------------------------------------------

/// `all_different` over bounds reasoning: fixed arguments are removed
/// from the other domains (finite sets lose the member; intervals trim at
/// the edges only, preserving bounds consistency), iterated to a local
/// fixpoint, plus a pigeonhole wipeout over the union of finite-set
/// domains. Multi-output, so agenda-interpreted.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllDiff;

impl AllDiff {
    /// Creates the propagator.
    pub fn new() -> Self {
        AllDiff
    }

    fn entailed_inner(&self, doms: &[Dom]) -> bool {
        for i in 0..doms.len() {
            let Some(a) = doms[i].singleton() else {
                return false;
            };
            for d in doms.iter().take(i) {
                if d.singleton() == Some(a) {
                    return false;
                }
            }
        }
        !doms.is_empty()
    }
}

impl DomainPropagator for AllDiff {
    fn name(&self) -> &str {
        "allDifferent"
    }

    fn propagate(&self, doms: &mut [Dom]) -> PropagateOutcome {
        let n = doms.len();
        let mut changed = false;
        // Singleton removal to a local fixpoint: each pass removes every
        // fixed value from the other domains; removals can pin new
        // singletons, so iterate until stable (domains only shrink).
        loop {
            let mut pass_changed = false;
            for i in 0..n {
                let Some(k) = doms[i].singleton() else {
                    continue;
                };
                for (j, dj) in doms.iter_mut().enumerate() {
                    if j == i {
                        continue;
                    }
                    if dj.singleton() == Some(k) {
                        return PropagateOutcome::DomainWipeout;
                    }
                    match dj.remove(k) {
                        None => return PropagateOutcome::DomainWipeout,
                        Some(nd) => {
                            if nd != *dj {
                                *dj = nd;
                                pass_changed = true;
                            }
                        }
                    }
                }
            }
            if !pass_changed {
                break;
            }
            changed = true;
        }
        // Pigeonhole over the finite-set arguments: more variables than
        // values in their union cannot all be distinct.
        let mut union = 0u64;
        let mut bits_args = 0u32;
        for d in doms.iter() {
            if let Dom::Bits(b) = d {
                union |= b;
                bits_args += 1;
            }
        }
        if bits_args > union.count_ones() {
            return PropagateOutcome::DomainWipeout;
        }
        outcome(changed, self.entailed_inner(doms))
    }

    fn satisfied(&self, doms: &[Dom]) -> bool {
        for i in 0..doms.len() {
            let Some(a) = doms[i].singleton() else {
                continue;
            };
            for d in doms.iter().take(i) {
                if d.singleton() == Some(a) {
                    return false;
                }
            }
        }
        let mut union = 0u64;
        let mut bits_args = 0u32;
        for d in doms.iter() {
            if let Dom::Bits(b) = d {
                union |= b;
                bits_args += 1;
            }
        }
        bits_args <= union.count_ones()
    }

    fn entailed(&self, doms: &[Dom]) -> bool {
        self.entailed_inner(doms)
    }
}

// ---------------------------------------------------------------------
// DomReifLe — reified ordering derived from the DomLe bound math.
// ---------------------------------------------------------------------

/// Reified ordering `b ⇔ v0(x) ≤ v1(y) + c` over arguments `[b, x, y]`.
///
/// The classic derived propagator: the bound math is [`DomLe`]'s, run
/// forward when `b` is decided (`b = true` imposes ≤, `b = false` imposes
/// the negated >) and backward when the ordering is decided (entailment
/// fixes `b = true`, disentailment `b = false`). Singleton writes to `b`
/// are represented as [`Value::Bool`].
#[derive(Debug, Clone, Copy)]
pub struct DomReifLe {
    c: i64,
    views: [View; 2],
}

/// Viewed `(lo, hi)` of one comparison side; `None` when unbounded/opaque.
type SideBounds = Option<(i64, i64)>;

impl DomReifLe {
    /// `b ⇔ x ≤ y + c` with identity views.
    pub fn le(c: i64) -> Self {
        DomReifLe {
            c,
            views: [View::IDENT; 2],
        }
    }

    /// Derived variant over explicit views.
    pub fn with_views(c: i64, views: [View; 2]) -> Self {
        DomReifLe { c, views }
    }

    /// Viewed bounds of `x` and `y` (arguments 1 and 2).
    fn sides(&self, doms: &[Dom]) -> (SideBounds, SideBounds) {
        let vx = doms[1].bounds().map(|(l, h)| self.views[0].image(l, h));
        let vy = doms[2].bounds().map(|(l, h)| self.views[1].image(l, h));
        (vx, vy)
    }

    fn entailed_inner(&self, doms: &[Dom]) -> bool {
        let (vx, vy) = self.sides(doms);
        let le_holds =
            matches!((vx, vy), (Some((_, xh)), Some((yl, _))) if xh <= yl.saturating_add(self.c));
        let le_impossible =
            matches!((vx, vy), (Some((xl, _)), Some((_, yh))) if xl > yh.saturating_add(self.c));
        match doms[0].singleton() {
            Some(1) => le_holds,
            Some(0) => le_impossible,
            _ => false,
        }
    }
}

impl DomainPropagator for DomReifLe {
    fn name(&self) -> &str {
        "domReifLe"
    }

    fn bool_arg(&self, ix: usize) -> bool {
        ix == 0
    }

    fn propagate(&self, doms: &mut [Dom]) -> PropagateOutcome {
        debug_assert_eq!(doms.len(), 3);
        let mut changed = false;
        // b is boolean: clamp a bounded control domain to {0, 1} first.
        if doms[0].bounds().is_some() {
            try_narrow!(changed, narrow(&mut doms[0], View::IDENT, 0, 1));
        }
        let (vx, vy) = self.sides(doms);
        match doms[0].singleton() {
            Some(1) => {
                // Impose x ≤ y + c — DomLe's narrowing, both directions.
                if let Some((_, yh)) = vy {
                    try_narrow!(
                        changed,
                        narrow_below(&mut doms[1], self.views[0], yh.saturating_add(self.c))
                    );
                }
                if let Some((xl, _)) = vx {
                    try_narrow!(
                        changed,
                        narrow_above(&mut doms[2], self.views[1], xl.saturating_sub(self.c))
                    );
                }
            }
            Some(0) => {
                // Impose the negation x > y + c ≡ x ≥ y + c + 1.
                if let Some((yl, _)) = vy {
                    try_narrow!(
                        changed,
                        narrow_above(
                            &mut doms[1],
                            self.views[0],
                            yl.saturating_add(self.c).saturating_add(1)
                        )
                    );
                }
                if let Some((_, xh)) = vx {
                    try_narrow!(
                        changed,
                        narrow_below(
                            &mut doms[2],
                            self.views[1],
                            xh.saturating_sub(self.c).saturating_sub(1)
                        )
                    );
                }
            }
            _ => {
                // b undecided: decide it when the ordering already is.
                let le_holds = matches!((vx, vy), (Some((_, xh)), Some((yl, _))) if xh <= yl.saturating_add(self.c));
                let le_impossible = matches!((vx, vy), (Some((xl, _)), Some((_, yh))) if xl > yh.saturating_add(self.c));
                if le_holds {
                    try_narrow!(changed, narrow(&mut doms[0], View::IDENT, 1, 1));
                } else if le_impossible {
                    try_narrow!(changed, narrow(&mut doms[0], View::IDENT, 0, 0));
                }
            }
        }
        outcome(changed, self.entailed_inner(doms))
    }

    fn satisfied(&self, doms: &[Dom]) -> bool {
        let (vx, vy) = self.sides(doms);
        match doms[0].singleton() {
            Some(1) => match (vx, vy) {
                (Some((xl, _)), Some((_, yh))) => xl <= yh.saturating_add(self.c),
                _ => true,
            },
            Some(0) => match (vx, vy) {
                (Some((_, xh)), Some((yl, _))) => xh > yl.saturating_add(self.c),
                _ => true,
            },
            _ => true,
        }
    }

    fn entailed(&self, doms: &[Dom]) -> bool {
        self.entailed_inner(doms)
    }
}

// ---------------------------------------------------------------------
// DomainConstraint — the ConstraintKind adapter.
// ---------------------------------------------------------------------

/// Adapts a [`DomainPropagator`] to the network's [`ConstraintKind`]
/// protocol.
///
/// Inference snapshots argument values into stack-allocated [`Dom`]s,
/// runs the propagator, and writes back only the arguments whose domain
/// narrowed — preserving each argument's representation (intervals stay
/// intervals, finite sets stay finite sets, `Nil` materialises a fresh
/// interval, fixed scalars are never rewritten). Every write is a pure
/// refinement, so the journal/rollback and one-value-change machinery
/// apply unchanged. Outcome wiring:
///
/// - [`PropagateOutcome::DomainWipeout`] → a custom [`Violation`]; the
///   network aborts the batch and rolls back O(touched) state.
/// - [`PropagateOutcome::Subsumed`] → [`Network::mark_subsumed`]; both
///   the agenda dispatcher and compiled-plan replay skip the constraint
///   until a watched variable widens
///   ([`ConstraintKind::still_subsumed`] re-checks entailment then).
///
/// Directional propagators ([`DomainPropagator::output`]) declare
/// [`ConstraintKind::planned_writes`] and participate in compiled plans;
/// multi-output propagators stay on the agenda interpreter.
#[derive(Debug)]
pub struct DomainConstraint<P: DomainPropagator> {
    prop: P,
}

impl<P: DomainPropagator> DomainConstraint<P> {
    /// Wraps a propagator.
    pub fn new(prop: P) -> Self {
        DomainConstraint { prop }
    }

    fn snapshot(&self, net: &Network, cid: ConstraintId) -> ([Dom; MAX_DOM_ARITY], usize) {
        let args = net.args(cid);
        let n = args.len().min(MAX_DOM_ARITY);
        let mut doms = [Dom::Top; MAX_DOM_ARITY];
        for (d, &v) in doms.iter_mut().zip(args.iter().take(n)) {
            *d = Dom::from_value(net.value(v));
        }
        (doms, n)
    }
}

/// Converts a narrowed domain back to a value in the argument's
/// representation. `None` for shapes that must never be written.
fn dom_to_value(d: Dom, boolish: bool) -> Option<Value> {
    match d {
        Dom::Range(l, h) if boolish && l == h && (l == 0 || l == 1) => Some(Value::Bool(l == 1)),
        Dom::Range(l, h) => Some(Value::Interval(Interval { lo: l, hi: h })),
        Dom::Bits(b) if b != 0 => Some(Value::FinSet(FinSet { bits: b })),
        _ => None,
    }
}

impl<P: DomainPropagator> ConstraintKind for DomainConstraint<P> {
    fn kind_name(&self) -> &str {
        self.prop.name()
    }

    fn should_activate(&self, net: &Network, cid: ConstraintId, changed: VarId) -> bool {
        match self.prop.output() {
            Some(ix) => net.args(cid).get(ix) != Some(&changed),
            None => true,
        }
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Result<(), Violation> {
        let args = net.args(cid);
        let n = args.len();
        if n == 0 || n > MAX_DOM_ARITY {
            return Ok(());
        }
        let mut ids = [VarId::from_index(0); MAX_DOM_ARITY];
        ids[..n].copy_from_slice(args);
        let (orig, _) = self.snapshot(net, cid);
        let mut doms = orig;
        match self.prop.propagate(&mut doms[..n]) {
            PropagateOutcome::DomainWipeout => {
                net.count_wipeout();
                Err(
                    Violation::custom(format!("domain wipeout in {}", self.prop.name()), Some(cid))
                        .with_kind_name(self.prop.name()),
                )
            }
            oc => {
                // A write the variable kind ignores (kept its value) breaks
                // the entailment witness, so it blocks the subsumption mark.
                let mut all_landed = true;
                for i in 0..n {
                    if doms[i] == orig[i] {
                        continue;
                    }
                    let Some(v) = dom_to_value(doms[i], self.prop.bool_arg(i)) else {
                        continue;
                    };
                    match net.propagate_set(ids[i], v, cid, DependencyRecord::All)? {
                        SetStatus::Changed => net.count_domain_tightening(),
                        SetStatus::Unchanged => {}
                        SetStatus::Ignored => all_landed = false,
                    }
                }
                if oc == PropagateOutcome::Subsumed && all_landed {
                    net.mark_subsumed(cid);
                }
                Ok(())
            }
        }
    }

    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool {
        let (doms, n) = self.snapshot(net, cid);
        self.prop.satisfied(&doms[..n])
    }

    fn outputs(&self, net: &Network, cid: ConstraintId) -> Vec<VarId> {
        match self.prop.output() {
            Some(ix) => net.args(cid).get(ix).copied().into_iter().collect(),
            None => net.args(cid).to_vec(),
        }
    }

    fn planned_writes(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<Vec<VarId>> {
        let ix = self.prop.output()?;
        let out = net.args(cid).get(ix).copied()?;
        if changed == Some(out) {
            Some(Vec::new())
        } else {
            Some(vec![out])
        }
    }

    fn still_subsumed(&self, net: &Network, cid: ConstraintId) -> bool {
        let (doms, n) = self.snapshot(net, cid);
        self.prop.entailed(&doms[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::justification::Justification;
    use crate::value::Value;

    fn iv(lo: i64, hi: i64) -> Value {
        Value::Interval(Interval::new(lo, hi))
    }

    fn fs(bits: u64) -> Value {
        Value::FinSet(FinSet::new(bits))
    }

    #[test]
    fn add_forward_narrows_result() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        let z = net.add_variable("z");
        net.add_constraint(DomainConstraint::new(DomAdd::forward()), [x, y, z])
            .unwrap();
        net.set(x, iv(1, 3), Justification::User).unwrap();
        net.set(y, iv(10, 20), Justification::User).unwrap();
        assert_eq!(net.value(z), &iv(11, 23));
        // narrowing an input narrows the materialised result
        net.set(y, iv(10, 12), Justification::User).unwrap();
        assert_eq!(net.value(z), &iv(11, 15));
    }

    #[test]
    fn add_bidirectional_narrows_inputs() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        let z = net.add_variable("z");
        net.add_constraint(DomainConstraint::new(DomAdd::all()), [x, y, z])
            .unwrap();
        net.set(x, iv(0, 10), Justification::User).unwrap();
        net.set(y, iv(0, 10), Justification::User).unwrap();
        net.set(z, iv(15, 30), Justification::User).unwrap();
        // z ≤ 20 from x+y; x ≥ 5 from z − y; y ≥ 5 from z − x
        assert_eq!(net.value(z), &iv(15, 20));
        assert_eq!(net.value(x), &iv(5, 10));
        assert_eq!(net.value(y), &iv(5, 10));
    }

    #[test]
    fn wipeout_aborts_and_rolls_back() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
        net.set(x, iv(10, 20), Justification::User).unwrap();
        // x ≤ y already materialised y's half-open lower bound
        assert_eq!(net.value(y), &iv(10, i64::MAX));
        let err = net.set(y, iv(0, 5), Justification::User).unwrap_err();
        assert!(err.to_string().contains("wipeout"), "{err}");
        // the failed batch rolled back: y kept its pre-batch value
        assert_eq!(net.value(y), &iv(10, i64::MAX));
        assert_eq!(net.value(x), &iv(10, 20));
        assert_eq!(net.stats().wipeouts, 1);
    }

    #[test]
    fn le_subsumes_and_prunes() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        let cid = net
            .add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
        net.set(x, iv(0, 5), Justification::User).unwrap();
        net.set(y, iv(10, 20), Justification::User).unwrap();
        // max x ≤ min y: entailed, marked subsumed
        assert!(net.is_subsumed(cid));
        let before = net.stats().subsumed_pruned;
        net.set(y, iv(10, 15), Justification::User).unwrap();
        assert!(net.stats().subsumed_pruned > before);
        assert!(net.is_subsumed(cid));
        // widening y below max x breaks entailment: the mark is dropped
        // and propagation resumes.
        net.set(y, iv(3, 15), Justification::User).unwrap();
        assert!(!net.is_subsumed(cid));
        assert_eq!(net.value(x), &iv(0, 5));
        net.set(y, iv(3, 4), Justification::User).unwrap();
        assert_eq!(net.value(x), &iv(0, 4));
    }

    #[test]
    fn derived_ge_narrows_like_negated_le() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomLe::ge(2)), [x, y])
            .unwrap();
        net.set(y, iv(5, 9), Justification::User).unwrap();
        net.set(x, iv(0, 20), Justification::User).unwrap();
        // x ≥ y + 2 ⇒ x ≥ 7, y ≤ 18
        assert_eq!(net.value(x), &iv(7, 20));
        assert_eq!(net.value(y), &iv(5, 9));
    }

    #[test]
    fn finite_sets_narrow_in_place() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
        net.set(x, fs(0b11110), Justification::User).unwrap(); // {1,2,3,4}
        net.set(y, fs(0b00111), Justification::User).unwrap(); // {0,1,2}
                                                               // x ≤ max y = 2 ⇒ x ∈ {1,2}; y ≥ min x = 1 ⇒ y ∈ {1,2}
        assert_eq!(net.value(x), &fs(0b00110));
        assert_eq!(net.value(y), &fs(0b00110));
    }

    #[test]
    fn all_different_prunes_and_wipes() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let c = net.add_variable("c");
        net.add_constraint(DomainConstraint::new(AllDiff::new()), [a, b, c])
            .unwrap();
        net.set(a, fs(0b011), Justification::User).unwrap(); // {0,1}
        net.set(b, fs(0b011), Justification::User).unwrap(); // {0,1}
        net.set(c, fs(0b111), Justification::User).unwrap(); // {0,1,2}
                                                             // pigeonhole doesn't fire (3 vars, 3 values); now pin a = 0:
        net.set(a, fs(0b001), Justification::User).unwrap();
        assert_eq!(net.value(b), &fs(0b010)); // b = 1
        assert_eq!(net.value(c), &fs(0b100)); // c = 2 (cascaded removal)
                                              // wiping: forcing c back into {0,1} contradicts a and b
        let err = net.set(c, fs(0b011), Justification::User);
        assert!(err.is_err());
        assert_eq!(net.value(c), &fs(0b100));
    }

    #[test]
    fn all_different_interval_edges() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.add_constraint(DomainConstraint::new(AllDiff::new()), [a, b])
            .unwrap();
        net.set(a, iv(3, 3), Justification::User).unwrap();
        net.set(b, iv(3, 7), Justification::User).unwrap();
        assert_eq!(net.value(b), &iv(4, 7));
    }

    #[test]
    fn reified_le_decides_and_imposes() {
        // backward: ordering decided ⇒ b decided
        let mut net = Network::new();
        let b = net.add_variable("b");
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomReifLe::le(0)), [b, x, y])
            .unwrap();
        net.set(x, iv(0, 3), Justification::User).unwrap();
        net.set(y, iv(5, 9), Justification::User).unwrap();
        assert_eq!(net.value(b), &Value::Bool(true));

        // forward: b = false imposes the negated ordering
        let mut net = Network::new();
        let b = net.add_variable("b");
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomReifLe::le(0)), [b, x, y])
            .unwrap();
        net.set(b, Value::Bool(false), Justification::User).unwrap();
        net.set(y, iv(5, 9), Justification::User).unwrap();
        net.set(x, iv(0, 20), Justification::User).unwrap();
        // ¬(x ≤ y) ⇒ x > y ⇒ x ≥ 6, y ≤ 19
        assert_eq!(net.value(x), &iv(6, 20));
    }

    #[test]
    fn fixed_scalars_participate_without_rewrite() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
        net.set(x, Value::Int(7), Justification::User).unwrap();
        net.set(y, iv(0, 30), Justification::User).unwrap();
        // the fixed Int is never rewritten; y's lower bound rises to 7
        assert_eq!(net.value(x), &Value::Int(7));
        assert_eq!(net.value(y), &iv(7, 30));
    }

    #[test]
    fn opaque_values_are_left_alone() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
        net.set(x, Value::str("not a domain"), Justification::User)
            .unwrap();
        net.set(y, iv(0, 5), Justification::User).unwrap();
        assert_eq!(net.value(x), &Value::str("not a domain"));
        assert_eq!(net.value(y), &iv(0, 5));
    }

    #[test]
    fn tightenings_are_counted() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
        assert_eq!(net.stats().domain_tightenings, 0);
        net.set(x, iv(0, 50), Justification::User).unwrap();
        net.set(y, iv(0, 10), Justification::User).unwrap();
        assert_eq!(net.value(x), &iv(0, 10));
        assert!(net.stats().domain_tightenings >= 1);
    }
}
