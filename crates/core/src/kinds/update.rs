use crate::constraint::ConstraintKind;
use crate::ids::{ConstraintId, VarId};
use crate::justification::DependencyRecord;
use crate::network::Network;
use crate::value::Value;
use crate::violation::Violation;

/// The update-constraint of thesis §6.5.1: declares that a set of derived
/// property variables depends on a set of source variables. Whenever any
/// source changes, every target is erased to `Nil`; implicit invocation
/// ([`Network::value_or_recalc`]) re-derives the targets lazily.
///
/// Arguments are wired as `sources ++ targets`, with `n_sources` marking
/// the split. Changes of a *target* do not re-trigger the constraint.
///
/// "This combination of constraint propagation and delayed recalculation
/// ensures the internal data consistency of the database and reduces
/// recalculation of data" (§6.3).
///
/// ```
/// use stem_core::{Network, Value, Justification};
/// use stem_core::kinds::UpdateConstraint;
///
/// let mut net = Network::new();
/// let structure = net.add_variable("structure");
/// let bbox = net.add_variable("boundingBox");
/// net.add_constraint(UpdateConstraint::new(1), [structure, bbox]).unwrap();
/// net.set(bbox, Value::Int(42), Justification::Application).unwrap();
/// net.set(structure, Value::Int(1), Justification::User).unwrap();
/// assert!(net.value(bbox).is_nil(), "derived value erased");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UpdateConstraint {
    n_sources: usize,
}

impl UpdateConstraint {
    /// Creates an update constraint whose first `n_sources` arguments are
    /// the watched sources; the rest are the erased targets.
    pub fn new(n_sources: usize) -> Self {
        UpdateConstraint { n_sources }
    }

    fn split<'n>(&self, net: &'n Network, cid: ConstraintId) -> (&'n [VarId], &'n [VarId]) {
        let args = net.args(cid);
        let k = self.n_sources.min(args.len());
        args.split_at(k)
    }
}

impl ConstraintKind for UpdateConstraint {
    fn kind_name(&self) -> &str {
        "update"
    }

    fn should_activate(&self, net: &Network, cid: ConstraintId, changed: VarId) -> bool {
        let (sources, _) = self.split(net, cid);
        sources.contains(&changed)
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Result<(), Violation> {
        // During re-initialisation (`changed == None`) a freshly added
        // update-constraint does not erase anything: the current derived
        // values are still justified by the data already present.
        let Some(source) = changed else {
            return Ok(());
        };
        // Index-based walk over the stable argument list (edits are barred
        // mid-cycle) — no `to_vec` allocation per activation.
        let n_sources = self.n_sources;
        for i in n_sources..net.args(cid).len() {
            let target = net.args(cid)[i];
            if !net.value(target).is_nil() {
                net.propagate_set(target, Value::Nil, cid, DependencyRecord::Single(source))?;
            }
        }
        Ok(())
    }

    fn outputs(&self, net: &Network, cid: ConstraintId) -> Vec<VarId> {
        let (_, targets) = self.split(net, cid);
        targets.to_vec()
    }

    fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
        // An update dependency is a directive, not an assertion.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::PropertyKind;
    use crate::Justification;
    use std::rc::Rc;

    #[test]
    fn erases_all_targets_on_any_source_change() {
        let mut net = Network::new();
        let s1 = net.add_variable("s1");
        let s2 = net.add_variable("s2");
        let t1 = net.add_variable("t1");
        let t2 = net.add_variable("t2");
        net.add_constraint(UpdateConstraint::new(2), [s1, s2, t1, t2])
            .unwrap();
        net.set(t1, Value::Int(10), Justification::Application)
            .unwrap();
        net.set(t2, Value::Int(20), Justification::Application)
            .unwrap();
        net.set(s2, Value::Int(1), Justification::User).unwrap();
        assert!(net.value(t1).is_nil());
        assert!(net.value(t2).is_nil());
    }

    #[test]
    fn target_change_does_not_retrigger() {
        let mut net = Network::new();
        let s = net.add_variable("s");
        let t = net.add_variable("t");
        net.add_constraint(UpdateConstraint::new(1), [s, t])
            .unwrap();
        net.reset_stats();
        net.set(t, Value::Int(5), Justification::Application)
            .unwrap();
        assert_eq!(net.stats().inferences, 0);
        assert_eq!(net.value(t), &Value::Int(5));
    }

    #[test]
    fn chained_updates_cascade() {
        let mut net = Network::new();
        let s = net.add_variable("s");
        let mid = net.add_variable("mid");
        let leaf = net.add_variable("leaf");
        net.add_constraint(UpdateConstraint::new(1), [s, mid])
            .unwrap();
        net.add_constraint(UpdateConstraint::new(1), [mid, leaf])
            .unwrap();
        net.set(mid, Value::Int(1), Justification::Application)
            .unwrap();
        net.set(leaf, Value::Int(2), Justification::Application)
            .unwrap();
        net.set(s, Value::Int(9), Justification::User).unwrap();
        assert!(net.value(mid).is_nil());
        assert!(net.value(leaf).is_nil());
    }

    #[test]
    fn pairs_with_lazy_recalculation() {
        // The full consistency-maintenance loop of §6.5.1: erase on change,
        // recalculate on demand.
        let mut net = Network::new();
        let src = net.add_variable("src");
        let derived = net.add_variable_with("derived", None, Rc::new(PropertyKind));
        net.add_constraint(UpdateConstraint::new(1), [src, derived])
            .unwrap();
        net.set_recalc(derived, move |net, var| {
            let doubled = net
                .value(crate::ids::VarId(0))
                .as_i64()
                .map(|x| Value::Int(x * 2))
                .unwrap_or(Value::Nil);
            net.set(var, doubled, Justification::Application).unwrap();
        });
        net.set(src, Value::Int(21), Justification::User).unwrap();
        assert!(net.value(derived).is_nil());
        assert_eq!(net.value_or_recalc(derived), &Value::Int(42));
        // Now change the source; derived is erased and recalculated fresh.
        net.set(src, Value::Int(5), Justification::User).unwrap();
        assert!(net.value(derived).is_nil());
        assert_eq!(net.value_or_recalc(derived), &Value::Int(10));
    }

    #[test]
    fn erasure_can_override_user_marked_property() {
        // PropertyKind always accepts erasure to Nil.
        let mut net = Network::new();
        let s = net.add_variable("s");
        let t = net.add_variable_with("t", None, Rc::new(PropertyKind));
        net.add_constraint(UpdateConstraint::new(1), [s, t])
            .unwrap();
        net.set(t, Value::Int(1), Justification::User).unwrap();
        net.set(s, Value::Int(2), Justification::User).unwrap();
        assert!(net.value(t).is_nil());
    }
}
