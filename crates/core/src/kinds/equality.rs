use crate::constraint::ConstraintKind;
use crate::ids::{ConstraintId, VarId};
use crate::justification::DependencyRecord;
use crate::network::Network;
use crate::value::Value;
use crate::violation::Violation;

/// The equality constraint of thesis Fig. 4.4: all arguments must hold the
/// same value; inference sets every other argument to the changed
/// variable's value.
///
/// Propagation is immediate (first-come-first-served) because the direction
/// depends on which variable changed (§4.2.1). `Nil` is treated as "no
/// value": a `Nil` change propagates nothing and `is_satisfied` compares
/// only non-`Nil` arguments.
///
/// ```
/// use stem_core::{Network, Value, Justification};
/// use stem_core::kinds::Equality;
///
/// let mut net = Network::new();
/// let a = net.add_variable("a");
/// let b = net.add_variable("b");
/// let c = net.add_variable("c");
/// net.add_constraint(Equality::new(), [a, b, c]).unwrap();
/// net.set(b, Value::Int(4), Justification::User).unwrap();
/// assert_eq!(net.value(a), &Value::Int(4));
/// assert_eq!(net.value(c), &Value::Int(4));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Equality;

impl Equality {
    /// Creates an equality constraint kind.
    pub fn new() -> Self {
        Equality
    }
}

impl ConstraintKind for Equality {
    fn kind_name(&self) -> &str {
        "equality"
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Result<(), Violation> {
        // Without a changed variable (re-initialisation), the precedence
        // ordering of Fig. 4.13 dispatches per-argument, so nothing to do.
        let Some(source) = changed else {
            return Ok(());
        };
        let new_value = net.value(source).clone();
        if new_value.is_nil() {
            return Ok(());
        }
        // Index-based walk: the argument list is stable mid-cycle (edits
        // are barred), so re-borrowing each step avoids the `to_vec` that
        // would otherwise allocate on every activation.
        for i in 0..net.args(cid).len() {
            let arg = net.args(cid)[i];
            if arg != source {
                net.propagate_set(
                    arg,
                    new_value.clone(),
                    cid,
                    DependencyRecord::Single(source),
                )?;
            }
        }
        Ok(())
    }

    fn planned_writes(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<Vec<VarId>> {
        // Statically, a change of one argument writes every other argument.
        // (A `Nil` change writes nothing at runtime; the plan only needs a
        // superset.) Without a changed variable, `infer` is a no-op.
        let Some(changed) = changed else {
            return Some(Vec::new());
        };
        Some(
            net.args(cid)
                .iter()
                .copied()
                .filter(|&a| a != changed)
                .collect(),
        )
    }

    fn par_kernel(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<crate::par::ParKernel> {
        // Mirrors `infer` exactly: the changed argument's value is copied
        // to every other argument in argument order, each with a
        // `Single(source)` record; a `Nil` source propagates nothing (the
        // kernel checks at run time). No changed variable → `infer` is a
        // no-op, which `planned_writes` already encodes — but replay still
        // dispatches the step, so refuse rather than model it.
        let source = changed?;
        Some(crate::par::ParKernel::Copy {
            source,
            targets: net
                .args(cid)
                .iter()
                .copied()
                .filter(|&a| a != source)
                .collect(),
        })
    }

    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool {
        let mut seen: Option<&Value> = None;
        for &arg in net.args(cid) {
            let v = net.value(arg);
            if v.is_nil() {
                continue;
            }
            match seen {
                None => seen = Some(v),
                Some(first) => {
                    if first != v {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Justification;

    #[test]
    fn propagates_to_all_arguments() {
        let mut net = Network::new();
        let vs: Vec<_> = (0..5).map(|i| net.add_variable(format!("v{i}"))).collect();
        net.add_constraint(Equality::new(), vs.clone()).unwrap();
        net.set(vs[2], Value::Int(7), Justification::User).unwrap();
        for &v in &vs {
            assert_eq!(net.value(v), &Value::Int(7));
        }
    }

    #[test]
    fn nil_change_propagates_nothing() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.add_constraint(Equality::new(), [a, b]).unwrap();
        net.set(b, Value::Int(3), Justification::Application)
            .unwrap();
        net.set(a, Value::Nil, Justification::Application).unwrap();
        // b keeps its value; the constraint is (vacuously) satisfied.
        assert_eq!(net.value(b), &Value::Int(3));
    }

    #[test]
    fn satisfied_ignores_nil_arguments() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let c = net.add_variable("c");
        let cid = net.add_constraint_quiet(Equality::new(), [a, b, c]);
        assert!(net.is_satisfied(cid));
        net.set_propagation_enabled(false);
        net.set(a, Value::Int(1), Justification::User).unwrap();
        assert!(net.is_satisfied(cid));
        net.set(c, Value::Int(2), Justification::User).unwrap();
        assert!(!net.is_satisfied(cid));
        net.set(c, Value::Int(1), Justification::User).unwrap();
        assert!(net.is_satisfied(cid));
    }

    #[test]
    fn conflicting_user_values_violate_on_add() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.set(a, Value::Int(1), Justification::User).unwrap();
        net.set(b, Value::Int(2), Justification::User).unwrap();
        let err = net.add_constraint(Equality::new(), [a, b]).unwrap_err();
        // Constraint was rolled back; values intact.
        assert_eq!(net.n_constraints(), 0);
        assert_eq!(net.value(a), &Value::Int(1));
        assert_eq!(net.value(b), &Value::Int(2));
        let _ = err;
    }

    #[test]
    fn adding_constraint_propagates_existing_value() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.set(a, Value::Int(9), Justification::User).unwrap();
        net.add_constraint(Equality::new(), [a, b]).unwrap();
        assert_eq!(net.value(b), &Value::Int(9));
        assert!(net.justification(b).is_propagated());
    }

    #[test]
    fn dependency_record_is_single_source() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        net.add_constraint(Equality::new(), [a, b]).unwrap();
        net.set(a, Value::Int(5), Justification::User).unwrap();
        assert_eq!(
            net.justification(b).record(),
            Some(&DependencyRecord::Single(a))
        );
    }
}
