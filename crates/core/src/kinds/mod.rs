//! Built-in constraint kinds (thesis §4.1.2 and Fig. 4.4, §4.2.1, §5.1,
//! §6.5.1).
//!
//! Each kind implements [`ConstraintKind`](crate::ConstraintKind):
//!
//! - [`Equality`] — all arguments equal (Fig. 4.4); immediate.
//! - [`Functional`] — one result variable as a function of the others
//!   (§4.2.1 "functional constraints"), scheduled on the `functional`
//!   agenda; includes the thesis's `UniAdditionConstraint` and
//!   `UniMaximumConstraint` (§7.3).
//! - [`Predicate`] — check-only assertions (value bounds, Fig. 7.9-style
//!   predicates); immediate, never assigns.
//! - [`UpdateConstraint`] — erases derived property variables when their
//!   inputs change (§6.5.1); immediate.
//! - [`ImplicitLink`] — the class↔instance dual-variable link driving
//!   hierarchical propagation (§5.1), scheduled on the lowest-priority
//!   `implicit` agenda.
//! - [`DomainConstraint`] + the domain propagators ([`DomAdd`], [`DomLe`],
//!   [`AllDiff`], [`DomReifLe`]) — bounds-consistent filtering over
//!   interval/finite-domain values with the `FixPoint` / `Subsumed` /
//!   `NoChange` / `DomainWipeout` outcome protocol (DESIGN.md §5j).

mod domain;
mod equality;
mod functional;
mod link;
mod predicate;
mod update;

pub use domain::{AllDiff, DomAdd, DomLe, DomReifLe, DomainConstraint};
pub use equality::Equality;
pub use functional::{Functional, FunctionalOp};
pub use link::{EqualLink, ImplicitLink, LinkSemantics};
pub use predicate::{PredOp, Predicate};
pub use update::UpdateConstraint;
