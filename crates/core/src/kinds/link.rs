use crate::agenda::IMPLICIT_AGENDA;
use crate::constraint::{Activation, ConstraintKind};
use crate::ids::{ConstraintId, VarId};
use crate::justification::DependencyRecord;
use crate::network::Network;
use crate::value::Value;
use crate::violation::Violation;
use std::fmt;
use std::rc::Rc;

/// The semantics of one dual-variable link between a cell-class variable
/// and the corresponding cell-instance variable (thesis §5.1.1).
///
/// The thesis encodes these links as `ImplicitConstraintVariable`
/// subclasses (`ClassInstVar` / `InstanceInstVar`) that respond to
/// constraint protocol; here the pair is an explicit [`ImplicitLink`]
/// constraint parameterised by a `LinkSemantics`, which preserves the same
/// activation, scheduling and overwrite behaviour (see DESIGN.md,
/// substitution table).
///
/// The two directions are asymmetric:
/// - **downward** (class changed → instance): properties propagate, with
///   per-kind adjustment (bounding-box transformation, delay RC loading);
/// - **upward** (instance changed → class): "never from instances to
///   classes" — check-only by default.
pub trait LinkSemantics: fmt::Debug {
    /// Label for inspection output.
    fn name(&self) -> &str;

    /// Value to assign to the instance variable when the class variable
    /// changed (with any instance-context adjustment), or `None` to leave
    /// it alone.
    fn downward(&self, net: &Network, class_var: VarId, inst_var: VarId) -> Option<Value>;

    /// Value to assign to the class variable when the instance variable
    /// changed; `None` (the default) for the standard check-only upward
    /// direction.
    fn upward(&self, net: &Network, class_var: VarId, inst_var: VarId) -> Option<Value> {
        let _ = (net, class_var, inst_var);
        None
    }

    /// Consistency test between the duals (e.g. the instance bounding box
    /// must contain the class bounding box; a parameter value must lie in
    /// the class range).
    fn is_satisfied(&self, net: &Network, class_var: VarId, inst_var: VarId) -> bool;
}

/// Property link whose instance value simply mirrors the class value — the
/// common case for unadjusted properties.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualLink;

impl LinkSemantics for EqualLink {
    fn name(&self) -> &str {
        "equalLink"
    }

    fn downward(&self, net: &Network, class_var: VarId, _inst_var: VarId) -> Option<Value> {
        let v = net.value(class_var);
        if v.is_nil() {
            None
        } else {
            Some(v.clone())
        }
    }

    fn is_satisfied(&self, net: &Network, class_var: VarId, inst_var: VarId) -> bool {
        let (c, i) = (net.value(class_var), net.value(inst_var));
        c.is_nil() || i.is_nil() || c == i
    }
}

/// The implicit constraint linking a dual class/instance variable pair for
/// hierarchical constraint propagation (thesis §5.1).
///
/// Arguments are wired as `[class_var, instance_var]`. The link is
/// scheduled on the lowest-priority `implicit` agenda with the changed
/// variable recorded (Fig. 5.3), so "hierarchical constraint propagation
/// tends to completely propagate constraint networks in one level of the
/// hierarchy before propagating … another level" (§5.1.2).
///
/// A user-specified target value is never overwritten by the link
/// (Fig. 7.7's guard); a conflicting user value will instead surface in the
/// final satisfaction sweep via [`LinkSemantics::is_satisfied`].
#[derive(Debug, Clone)]
pub struct ImplicitLink {
    semantics: Rc<dyn LinkSemantics>,
}

impl ImplicitLink {
    /// Creates a link with the given semantics; wire with
    /// `[class_var, instance_var]`.
    pub fn new(semantics: impl LinkSemantics + 'static) -> Self {
        ImplicitLink {
            semantics: Rc::new(semantics),
        }
    }

    /// Creates a link from a shared semantics object.
    pub fn from_rc(semantics: Rc<dyn LinkSemantics>) -> Self {
        ImplicitLink { semantics }
    }

    fn pair(&self, net: &Network, cid: ConstraintId) -> Option<(VarId, VarId)> {
        let args = net.args(cid);
        if args.len() == 2 {
            Some((args[0], args[1]))
        } else {
            None
        }
    }
}

impl ConstraintKind for ImplicitLink {
    fn kind_name(&self) -> &str {
        self.semantics.name()
    }

    fn activation(&self) -> Activation {
        Activation::Scheduled(IMPLICIT_AGENDA)
    }

    fn schedules_with_variable(&self) -> bool {
        // Fig. 5.3: `scheduleConstraint:self variable:aVar`.
        true
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Result<(), Violation> {
        let Some((class_var, inst_var)) = self.pair(net, cid) else {
            return Ok(());
        };
        // Re-initialisation without a specific direction defaults downward.
        let source = changed.unwrap_or(class_var);
        let (target, value) = if source == class_var {
            (inst_var, self.semantics.downward(net, class_var, inst_var))
        } else {
            (class_var, self.semantics.upward(net, class_var, inst_var))
        };
        if let Some(value) = value {
            // Fig. 7.7's guard: a user-specified dual is left alone; the
            // final sweep decides whether that is a conflict.
            if !net.justification(target).is_user() {
                net.propagate_set(target, value, cid, DependencyRecord::Single(source))?;
            }
        }
        Ok(())
    }

    fn outputs(&self, net: &Network, cid: ConstraintId) -> Vec<VarId> {
        // The standard direction is downward (class → instance).
        match self.pair(net, cid) {
            Some((_, inst_var)) => vec![inst_var],
            None => Vec::new(),
        }
    }

    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool {
        match self.pair(net, cid) {
            Some((class_var, inst_var)) => self.semantics.is_satisfied(net, class_var, inst_var),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Span;
    use crate::Justification;

    #[test]
    fn downward_mirrors_class_value() {
        let mut net = Network::new();
        let class_v = net.add_variable("class.delay");
        let inst_v = net.add_variable("inst.delay");
        net.add_constraint(ImplicitLink::new(EqualLink), [class_v, inst_v])
            .unwrap();
        net.set(class_v, Value::Float(5.0), Justification::Application)
            .unwrap();
        assert_eq!(net.value(inst_v), &Value::Float(5.0));
    }

    #[test]
    fn upward_is_check_only() {
        let mut net = Network::new();
        let class_v = net.add_variable("class.p");
        let inst_v = net.add_variable("inst.p");
        net.add_constraint(ImplicitLink::new(EqualLink), [class_v, inst_v])
            .unwrap();
        // Setting the instance does not push a class value…
        net.set(inst_v, Value::Int(3), Justification::Application)
            .unwrap();
        assert!(net.value(class_v).is_nil());
        // …and once the class value exists, a conflicting instance value is
        // a violation via is_satisfied.
        net.set(class_v, Value::Int(3), Justification::Application)
            .unwrap();
        assert!(net
            .set(inst_v, Value::Int(4), Justification::Application)
            .is_err());
    }

    #[test]
    fn user_specified_instance_value_is_not_overwritten() {
        let mut net = Network::new();
        let class_v = net.add_variable("class.p");
        let inst_v = net.add_variable("inst.p");
        net.set(inst_v, Value::Int(7), Justification::User).unwrap();
        net.add_constraint(ImplicitLink::new(EqualLink), [class_v, inst_v])
            .unwrap();
        // Class propagation leaves the user value; mismatch surfaces as an
        // unsatisfied-link violation instead of an overwrite.
        let err = net
            .set(class_v, Value::Int(9), Justification::Application)
            .unwrap_err();
        assert_eq!(net.value(inst_v), &Value::Int(7));
        assert!(net.value(class_v).is_nil(), "class set rolled back");
        let _ = err;
    }

    /// A parameter link: class side holds a `Span`, instance side a number
    /// that must stay inside it (§5.1.1, parameters).
    #[derive(Debug)]
    struct ParamRange;

    impl LinkSemantics for ParamRange {
        fn name(&self) -> &str {
            "paramRange"
        }

        fn downward(&self, _: &Network, _: VarId, _: VarId) -> Option<Value> {
            None // ranges do not give the instance a value
        }

        fn is_satisfied(&self, net: &Network, class_var: VarId, inst_var: VarId) -> bool {
            match (net.value(class_var).as_span(), net.value(inst_var).as_f64()) {
                (Some(span), Some(x)) => span.contains(x),
                _ => true,
            }
        }
    }

    #[test]
    fn parameter_range_checking() {
        let mut net = Network::new();
        let class_v = net.add_variable("class.width");
        let inst_v = net.add_variable("inst.width");
        net.add_constraint(ImplicitLink::new(ParamRange), [class_v, inst_v])
            .unwrap();
        net.set(
            class_v,
            Value::Span(Span::new(1.0, 8.0)),
            Justification::User,
        )
        .unwrap();
        assert!(net
            .set(inst_v, Value::Float(4.0), Justification::User)
            .is_ok());
        assert!(net
            .set(inst_v, Value::Float(9.0), Justification::User)
            .is_err());
        assert_eq!(net.value(inst_v), &Value::Float(4.0));
        // Narrowing the class range below the instance value also violates.
        assert!(net
            .set(
                class_v,
                Value::Span(Span::new(5.0, 8.0)),
                Justification::User
            )
            .is_err());
    }

    #[test]
    fn implicit_agenda_runs_after_functional() {
        // An internal functional network plus an implicit link: the link
        // fires only after the functional agenda drains (§5.1.2).
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let class_sum = net.add_variable("class.sum");
        let inst_sum = net.add_variable("inst.sum");
        net.add_constraint(crate::kinds::Functional::uni_addition(), [a, b, class_sum])
            .unwrap();
        net.add_constraint(ImplicitLink::new(EqualLink), [class_sum, inst_sum])
            .unwrap();
        net.set(a, Value::Int(1), Justification::User).unwrap();
        net.set(b, Value::Int(2), Justification::User).unwrap();
        assert_eq!(net.value(class_sum), &Value::Int(3));
        assert_eq!(net.value(inst_sum), &Value::Int(3));
    }
}
