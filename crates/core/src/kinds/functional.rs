use crate::agenda::FUNCTIONAL_AGENDA;
use crate::constraint::{Activation, ConstraintKind};
use crate::ids::{ConstraintId, VarId};
use crate::justification::DependencyRecord;
use crate::network::Network;
use crate::value::Value;
use crate::violation::Violation;
use std::fmt;
use std::rc::Rc;

/// Signature of a custom functional computation: input values in, result
/// out (`None` = cannot compute, treated like a `Nil` input).
pub type CustomFn = dyn Fn(&[Value]) -> Option<Value>;

/// The function computed by a [`Functional`] constraint over its input
/// arguments.
#[derive(Clone)]
pub enum FunctionalOp {
    /// Sum of inputs — the thesis's `UniAdditionConstraint` (§7.3), used to
    /// total the instance delays along a delay path.
    Sum,
    /// Maximum of inputs — the thesis's `UniMaximumConstraint` (§7.3), used
    /// to take the longest delay path.
    Max,
    /// Minimum of inputs.
    Min,
    /// Product of inputs.
    Product,
    /// Affine map of a single input: `gain * x + offset` (RC load
    /// adjustments).
    Scale {
        /// Multiplier.
        gain: f64,
        /// Addend.
        offset: f64,
    },
    /// Arbitrary function of the input values; `None` means "cannot
    /// compute" (treated like a `Nil` input).
    Custom(&'static str, Rc<CustomFn>),
}

impl fmt::Debug for FunctionalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionalOp::Sum => write!(f, "Sum"),
            FunctionalOp::Max => write!(f, "Max"),
            FunctionalOp::Min => write!(f, "Min"),
            FunctionalOp::Product => write!(f, "Product"),
            FunctionalOp::Scale { gain, offset } => write!(f, "Scale({gain}, {offset})"),
            FunctionalOp::Custom(name, _) => write!(f, "Custom({name})"),
        }
    }
}

impl FunctionalOp {
    // Generic over an iterator so built-in ops can fold over values read
    // in place from the network — the hot path allocates no buffer. Only
    // `Custom` materialises a `Vec` (its function signature takes a slice).
    fn apply<'a, I: Iterator<Item = &'a Value>>(&self, mut inputs: I) -> Option<Value> {
        match self {
            FunctionalOp::Sum => inputs.try_fold(Value::Int(0), |acc, v| acc.numeric_add(v)),
            FunctionalOp::Max => {
                let first = inputs.next()?.clone();
                inputs.try_fold(first, |acc, v| acc.numeric_max(v))
            }
            FunctionalOp::Min => {
                let first = inputs.next()?.clone();
                inputs.try_fold(first, |acc, v| acc.numeric_min(v))
            }
            FunctionalOp::Product => inputs
                .try_fold(1.0_f64, |acc, v| v.as_f64().map(|x| acc * x))
                .map(Value::Float),
            FunctionalOp::Scale { gain, offset } => {
                let x = inputs.next()?.as_f64()?;
                if inputs.next().is_some() {
                    return None;
                }
                Some(Value::Float(gain * x + offset))
            }
            FunctionalOp::Custom(_, f) => {
                let values: Vec<Value> = inputs.cloned().collect();
                f(&values)
            }
        }
    }

    fn name(&self) -> &str {
        match self {
            FunctionalOp::Sum => "uniAddition",
            FunctionalOp::Max => "uniMaximum",
            FunctionalOp::Min => "uniMinimum",
            FunctionalOp::Product => "uniProduct",
            FunctionalOp::Scale { .. } => "uniScale",
            FunctionalOp::Custom(name, _) => name,
        }
    }
}

/// A unidirectional functional constraint (thesis §4.2.1): the **last**
/// argument is the result variable, computed as a function of the others.
///
/// Functional constraints are scheduled on the `functional` agenda rather
/// than propagated immediately, so that "propagation can be delayed until
/// all argument variables have had a chance to change. This reduces
/// redundant calculations of transient results." A change of the result
/// variable itself does not activate the constraint
/// (`permitChangesByVariable:`, Fig. 4.7).
///
/// If any input is `Nil` the constraint does not fire (no information), and
/// `is_satisfied` is vacuously true.
///
/// ```
/// use stem_core::{Network, Value, Justification};
/// use stem_core::kinds::Functional;
///
/// let mut net = Network::new();
/// let a = net.add_variable("a");
/// let b = net.add_variable("b");
/// let sum = net.add_variable("sum");
/// net.add_constraint(Functional::uni_addition(), [a, b, sum]).unwrap();
/// net.set(a, Value::Float(1.5), Justification::User).unwrap();
/// net.set(b, Value::Float(2.0), Justification::User).unwrap();
/// assert_eq!(net.value(sum), &Value::Float(3.5));
/// ```
#[derive(Debug, Clone)]
pub struct Functional {
    op: FunctionalOp,
}

impl Functional {
    /// Creates a functional constraint with the given operation; the result
    /// variable is the last argument at wiring time.
    pub fn new(op: FunctionalOp) -> Self {
        Functional { op }
    }

    /// The thesis's `UniAdditionConstraint`: result = Σ inputs.
    pub fn uni_addition() -> Self {
        Functional::new(FunctionalOp::Sum)
    }

    /// The thesis's `UniMaximumConstraint`: result = max(inputs).
    pub fn uni_maximum() -> Self {
        Functional::new(FunctionalOp::Max)
    }

    /// result = min(inputs).
    pub fn uni_minimum() -> Self {
        Functional::new(FunctionalOp::Min)
    }

    /// result = gain · input + offset (single input).
    pub fn uni_scale(gain: f64, offset: f64) -> Self {
        Functional::new(FunctionalOp::Scale { gain, offset })
    }

    /// result = f(inputs); `name` labels the kind for inspection.
    pub fn custom(name: &'static str, f: impl Fn(&[Value]) -> Option<Value> + 'static) -> Self {
        Functional::new(FunctionalOp::Custom(name, Rc::new(f)))
    }

    fn split<'n>(&self, net: &'n Network, cid: ConstraintId) -> Option<(&'n [VarId], VarId)> {
        let args = net.args(cid);
        let (&result, inputs) = args.split_last()?;
        Some((inputs, result))
    }

    fn computed(&self, net: &Network, cid: ConstraintId) -> Option<Value> {
        let (inputs, _) = self.split(net, cid)?;
        if inputs.iter().any(|&v| net.value(v).is_nil()) {
            return None;
        }
        self.op.apply(inputs.iter().map(|&v| net.value(v)))
    }
}

impl ConstraintKind for Functional {
    fn kind_name(&self) -> &str {
        self.op.name()
    }

    fn activation(&self) -> Activation {
        Activation::Scheduled(FUNCTIONAL_AGENDA)
    }

    fn should_activate(&self, net: &Network, cid: ConstraintId, changed: VarId) -> bool {
        // Fig. 4.7: "returns false if aVariable is my result variable".
        match self.split(net, cid) {
            Some((_, result)) => changed != result,
            None => false,
        }
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Result<(), Violation> {
        let Some((_, result)) = self.split(net, cid) else {
            return Ok(());
        };
        let Some(value) = self.computed(net, cid) else {
            return Ok(());
        };
        net.propagate_set(result, value, cid, DependencyRecord::All)?;
        Ok(())
    }

    fn outputs(&self, net: &Network, cid: ConstraintId) -> Vec<VarId> {
        match self.split(net, cid) {
            Some((_, result)) => vec![result],
            None => Vec::new(),
        }
    }

    fn planned_writes(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<Vec<VarId>> {
        // An input change (or a batched agenda run, `changed == None`)
        // writes the result; a result change never activates the
        // constraint at all (`should_activate`).
        match self.split(net, cid) {
            Some((_, result)) if changed != Some(result) => Some(vec![result]),
            _ => Some(Vec::new()),
        }
    }

    fn par_kernel(
        &self,
        net: &Network,
        cid: ConstraintId,
        changed: Option<VarId>,
    ) -> Option<crate::par::ParKernel> {
        // Built-in ops are pure value computations, safe to evaluate
        // off-thread ([`crate::par::PureOp`] replicates `FunctionalOp`'s
        // fold semantics bit for bit). `Custom` closes over an `Rc`'d
        // closure and must stay on the sequential path.
        let _ = changed; // write-set is changed-independent (planned_writes)
        let op = match &self.op {
            FunctionalOp::Sum => crate::par::PureOp::Sum,
            FunctionalOp::Max => crate::par::PureOp::Max,
            FunctionalOp::Min => crate::par::PureOp::Min,
            FunctionalOp::Product => crate::par::PureOp::Product,
            FunctionalOp::Scale { gain, offset } => crate::par::PureOp::Scale {
                gain: *gain,
                offset: *offset,
            },
            FunctionalOp::Custom(..) => return None,
        };
        let (inputs, result) = self.split(net, cid)?;
        Some(crate::par::ParKernel::Apply {
            op,
            inputs: inputs.to_vec(),
            result,
        })
    }

    fn is_satisfied(&self, net: &Network, cid: ConstraintId) -> bool {
        let Some((_, result)) = self.split(net, cid) else {
            return true;
        };
        let current = net.value(result);
        if current.is_nil() {
            return true;
        }
        match self.computed(net, cid) {
            Some(expected) => &expected == current,
            None => true, // some input Nil: vacuous
        }
    }

    fn depends_on(
        &self,
        net: &Network,
        cid: ConstraintId,
        record: &DependencyRecord,
        arg: VarId,
    ) -> bool {
        // "a functional constraint sets up a null dependency record since it
        // is implicitly understood that the functional variable depends on
        // every argument" — every *input* argument, not the result itself.
        match record {
            DependencyRecord::All => match self.split(net, cid) {
                Some((inputs, _)) => inputs.contains(&arg),
                None => false,
            },
            other => other.default_membership(arg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Justification, Stats};

    fn three(net: &mut Network, op: Functional) -> (VarId, VarId, VarId) {
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let r = net.add_variable("r");
        net.add_constraint(op, [a, b, r]).unwrap();
        (a, b, r)
    }

    #[test]
    fn sum_and_max_and_min() {
        let mut net = Network::new();
        let (a, b, r) = three(&mut net, Functional::uni_addition());
        net.set(a, Value::Int(2), Justification::User).unwrap();
        net.set(b, Value::Int(3), Justification::User).unwrap();
        assert_eq!(net.value(r), &Value::Int(5));

        let (c, d, m) = three(&mut net, Functional::uni_maximum());
        net.set(c, Value::Float(2.5), Justification::User).unwrap();
        net.set(d, Value::Int(2), Justification::User).unwrap();
        assert_eq!(net.value(m), &Value::Float(2.5));

        let (e, f, n) = three(&mut net, Functional::uni_minimum());
        net.set(e, Value::Float(2.5), Justification::User).unwrap();
        net.set(f, Value::Int(2), Justification::User).unwrap();
        assert_eq!(net.value(n), &Value::Int(2));
    }

    #[test]
    fn scale_applies_affine_map() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        net.add_constraint(Functional::uni_scale(2.0, 1.0), [x, y])
            .unwrap();
        net.set(x, Value::Float(3.0), Justification::User).unwrap();
        assert_eq!(net.value(y), &Value::Float(7.0));
    }

    #[test]
    fn does_not_fire_on_partial_inputs() {
        let mut net = Network::new();
        let (a, _b, r) = three(&mut net, Functional::uni_addition());
        net.set(a, Value::Int(2), Justification::User).unwrap();
        assert!(net.value(r).is_nil());
    }

    #[test]
    fn result_change_does_not_recompute_inputs() {
        let mut net = Network::new();
        let (a, b, r) = three(&mut net, Functional::uni_addition());
        net.set(a, Value::Int(2), Justification::User).unwrap();
        net.set(b, Value::Int(3), Justification::User).unwrap();
        let Stats { inferences, .. } = net.stats();
        // Setting the result by hand violates the (now-inconsistent)
        // constraint at the final check, but never schedules the kind.
        let err = net.set(r, Value::Int(99), Justification::User);
        assert!(err.is_err());
        assert_eq!(net.value(r), &Value::Int(5), "restored");
        assert_eq!(net.stats().inferences, inferences);
    }

    #[test]
    fn transitive_functional_chain() {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let s1 = net.add_variable("s1");
        let c = net.add_variable("c");
        let s2 = net.add_variable("s2");
        net.add_constraint(Functional::uni_addition(), [a, b, s1])
            .unwrap();
        net.add_constraint(Functional::uni_addition(), [s1, c, s2])
            .unwrap();
        net.set(a, Value::Int(1), Justification::User).unwrap();
        net.set(b, Value::Int(2), Justification::User).unwrap();
        net.set(c, Value::Int(10), Justification::User).unwrap();
        assert_eq!(net.value(s2), &Value::Int(13));
    }

    #[test]
    fn custom_op() {
        let mut net = Network::new();
        let x = net.add_variable("x");
        let y = net.add_variable("y");
        let f = Functional::custom("square", |vals| {
            Some(Value::Float(vals[0].as_f64()?.powi(2)))
        });
        net.add_constraint(f, [x, y]).unwrap();
        net.set(x, Value::Float(3.0), Justification::User).unwrap();
        assert_eq!(net.value(y), &Value::Float(9.0));
    }

    #[test]
    fn agenda_batches_recomputation() {
        // With scheduling, a single external set of one input runs the
        // functional inference exactly once even though the constraint has
        // many inputs changed downstream of an equality fan-in.
        let mut net = Network::new();
        let src = net.add_variable("src");
        let mirrors: Vec<VarId> = (0..4).map(|i| net.add_variable(format!("m{i}"))).collect();
        for &m in &mirrors {
            net.add_constraint(Equality2::kind(), [src, m]).unwrap();
        }
        let r = net.add_variable("r");
        let mut args = mirrors;
        args.push(r);
        net.add_constraint(Functional::uni_addition(), args)
            .unwrap();
        net.reset_stats();
        net.set(src, Value::Int(2), Justification::User).unwrap();
        assert_eq!(net.value(r), &Value::Int(8));
        // All four mirror changes funnel into one scheduled run.
        assert_eq!(net.stats().scheduled_runs, 1);
    }

    // Local alias so the test above reads clearly.
    struct Equality2;
    impl Equality2 {
        fn kind() -> crate::kinds::Equality {
            crate::kinds::Equality::new()
        }
    }

    #[test]
    fn depends_on_inputs_not_result() {
        let mut net = Network::new();
        let (a, b, r) = three(&mut net, Functional::uni_addition());
        net.set(a, Value::Int(1), Justification::User).unwrap();
        net.set(b, Value::Int(2), Justification::User).unwrap();
        let (ante_vars, ante_cons) = net.antecedents(r);
        assert!(ante_vars.contains(&a));
        assert!(ante_vars.contains(&b));
        assert_eq!(ante_cons.len(), 1);
        // Consequences of an input include the result.
        assert!(net.consequences(a).contains(&r));
    }
}
