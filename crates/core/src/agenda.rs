use crate::ids::{ConstraintId, VarId};
use std::collections::VecDeque;

/// Name of the agenda functional constraints schedule on (thesis Fig. 4.7,
/// `#functionalConstraints`).
pub const FUNCTIONAL_AGENDA: &str = "functional";

/// Name of the lowest-priority agenda implicit (hierarchical) constraints
/// schedule on (thesis Fig. 5.3, `#implicitConstraints`). Its low priority
/// makes propagation "tend to completely propagate constraint networks in
/// one level of the hierarchy before propagating … another level" (§5.1.2).
pub const IMPLICIT_AGENDA: &str = "implicit";

/// Default priority of [`FUNCTIONAL_AGENDA`].
pub const FUNCTIONAL_PRIORITY: i32 = 10;

/// Default priority of [`IMPLICIT_AGENDA`].
pub const IMPLICIT_PRIORITY: i32 = -10;

type Entry = (ConstraintId, Option<VarId>);

/// One agenda: a first-in-first-out queue without duplicate entries
/// (thesis §4.2.1).
///
/// Duplicate detection is hash-free: a dense `marks` vector indexed by
/// constraint id carries an epoch stamp per constraint. A stale stamp
/// (`marks[cid] != epoch`) proves in O(1) that no entry with that
/// constraint is queued — the overwhelmingly common case on the hot path.
/// Only when the same constraint is already queued (stamp current,
/// `queued[cid] > 0`) does a short linear scan decide whether the exact
/// `(cid, var)` pair is a duplicate; such collisions are rare and the
/// queue is short-lived by construction. Clearing bumps the epoch instead
/// of touching the marks at all.
#[derive(Debug, Clone)]
struct Agenda {
    name: &'static str,
    priority: i32,
    queue: VecDeque<Entry>,
    /// Epoch stamp per constraint id; `marks[cid] == epoch` ⇔ the stamp is
    /// current and `queued[cid]` is meaningful.
    marks: Vec<u32>,
    /// Entries currently queued per constraint id (valid only under a
    /// current stamp).
    queued: Vec<u32>,
    /// Current epoch; starts at 1 so zero-initialised marks are stale.
    epoch: u32,
}

impl Agenda {
    fn new(name: &'static str, priority: i32) -> Self {
        Agenda {
            name,
            priority,
            queue: VecDeque::new(),
            marks: Vec::new(),
            queued: Vec::new(),
            epoch: 1,
        }
    }

    fn push(&mut self, entry: Entry) -> bool {
        let ix = entry.0.index();
        if ix >= self.marks.len() {
            self.marks.resize(ix + 1, 0);
            self.queued.resize(ix + 1, 0);
        }
        if self.marks[ix] == self.epoch && self.queued[ix] > 0 {
            // Same constraint already queued: only now compare the full
            // entry (the variable component distinguishes entries).
            if self.queue.contains(&entry) {
                return false;
            }
            self.queued[ix] += 1;
        } else {
            self.marks[ix] = self.epoch;
            self.queued[ix] = 1;
        }
        self.queue.push_back(entry);
        true
    }

    fn pop(&mut self) -> Option<Entry> {
        let entry = self.queue.pop_front()?;
        self.queued[entry.0.index()] -= 1;
        Some(entry)
    }

    fn clear(&mut self) {
        self.queue.clear();
        // Bumping the epoch invalidates every stamp in O(1). On the (never
        // in practice) wrap back to 0, all marks read as stale anyway
        // because the epoch restarts at 1.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
    }
}

/// Multi-queue, fixed-priority scheduler for constraint propagation
/// (thesis §4.2.1, Fig. 4.8).
///
/// Constraints scheduled in agendas are propagated one at a time, always
/// from the highest-priority non-empty agenda. Two agendas exist by
/// default: [`FUNCTIONAL_AGENDA`] and [`IMPLICIT_AGENDA`]; custom agendas
/// may be declared with [`AgendaScheduler::define`] or spring into
/// existence at priority 0 on first use.
#[derive(Debug, Clone)]
pub struct AgendaScheduler {
    /// Kept sorted by priority, highest first.
    agendas: Vec<Agenda>,
}

impl Default for AgendaScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl AgendaScheduler {
    /// Creates a scheduler with the two default agendas.
    pub fn new() -> Self {
        let mut s = AgendaScheduler {
            agendas: Vec::new(),
        };
        s.define(FUNCTIONAL_AGENDA, FUNCTIONAL_PRIORITY);
        s.define(IMPLICIT_AGENDA, IMPLICIT_PRIORITY);
        s
    }

    /// Declares (or re-prioritises) an agenda. Re-prioritising is only
    /// allowed while the agenda is empty.
    ///
    /// # Panics
    ///
    /// Panics when changing the priority of a non-empty agenda.
    pub fn define(&mut self, name: &'static str, priority: i32) {
        if let Some(a) = self.agendas.iter_mut().find(|a| a.name == name) {
            assert!(
                a.queue.is_empty(),
                "cannot re-prioritise non-empty agenda {name:?}"
            );
            a.priority = priority;
        } else {
            self.agendas.push(Agenda::new(name, priority));
        }
        self.agendas.sort_by_key(|a| std::cmp::Reverse(a.priority));
    }

    /// The priority of `name`, if declared.
    pub fn priority(&self, name: &str) -> Option<i32> {
        self.agendas
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.priority)
    }

    /// Schedules `(cid, var)` on agenda `name`, creating the agenda at
    /// priority 0 if unknown. Returns `false` when the identical entry was
    /// already queued (no duplicates, §4.2.1).
    pub fn schedule(&mut self, name: &'static str, cid: ConstraintId, var: Option<VarId>) -> bool {
        if self.priority(name).is_none() {
            self.define(name, 0);
        }
        self.agendas
            .iter_mut()
            .find(|a| a.name == name)
            .expect("agenda just defined")
            .push((cid, var))
    }

    /// Removes and returns the first entry of the highest-priority
    /// non-empty agenda (`removeHighestPriorityScheduledEntry`, Fig. 4.8).
    pub fn pop_highest(&mut self) -> Option<Entry> {
        self.agendas.iter_mut().find_map(|a| a.pop())
    }

    /// Whether every agenda is empty.
    pub fn is_empty(&self) -> bool {
        self.agendas.iter().all(|a| a.queue.is_empty())
    }

    /// Total queued entries across agendas.
    pub fn len(&self) -> usize {
        self.agendas.iter().map(|a| a.queue.len()).sum()
    }

    /// Discards all queued entries (used when a cycle aborts). O(#agendas):
    /// membership stamps are invalidated by an epoch bump, not a sweep.
    pub fn clear(&mut self) {
        for a in &mut self.agendas {
            a.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ConstraintId {
        ConstraintId(i)
    }

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn fifo_within_an_agenda() {
        let mut s = AgendaScheduler::new();
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        s.schedule(FUNCTIONAL_AGENDA, c(2), None);
        assert_eq!(s.pop_highest(), Some((c(1), None)));
        assert_eq!(s.pop_highest(), Some((c(2), None)));
        assert_eq!(s.pop_highest(), None);
    }

    #[test]
    fn no_duplicate_entries() {
        let mut s = AgendaScheduler::new();
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(1), None));
        assert!(!s.schedule(FUNCTIONAL_AGENDA, c(1), None));
        // Distinct variable component is a distinct entry.
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(1), Some(v(2))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn priority_ordering_across_agendas() {
        let mut s = AgendaScheduler::new();
        s.schedule(IMPLICIT_AGENDA, c(9), Some(v(1)));
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        // Functional has higher priority than implicit.
        assert_eq!(s.pop_highest(), Some((c(1), None)));
        assert_eq!(s.pop_highest(), Some((c(9), Some(v(1)))));
    }

    #[test]
    fn custom_agenda_auto_defined_at_zero() {
        let mut s = AgendaScheduler::new();
        s.schedule("custom", c(5), None);
        assert_eq!(s.priority("custom"), Some(0));
        // priority 0 beats implicit (-10), loses to functional (10)
        s.schedule(IMPLICIT_AGENDA, c(7), None);
        s.schedule(FUNCTIONAL_AGENDA, c(6), None);
        assert_eq!(s.pop_highest().unwrap().0, c(6));
        assert_eq!(s.pop_highest().unwrap().0, c(5));
        assert_eq!(s.pop_highest().unwrap().0, c(7));
    }

    #[test]
    fn redefine_empty_agenda_priority() {
        let mut s = AgendaScheduler::new();
        s.define("custom", 99);
        assert_eq!(s.priority("custom"), Some(99));
        s.schedule("custom", c(1), None);
        s.schedule(FUNCTIONAL_AGENDA, c(2), None);
        assert_eq!(s.pop_highest().unwrap().0, c(1));
    }

    #[test]
    #[should_panic(expected = "non-empty agenda")]
    fn cannot_reprioritise_nonempty() {
        let mut s = AgendaScheduler::new();
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        s.define(FUNCTIONAL_AGENDA, 3);
    }

    #[test]
    fn clear_empties_everything() {
        let mut s = AgendaScheduler::new();
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        s.schedule(IMPLICIT_AGENDA, c(2), Some(v(3)));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        // After clear, previously queued entries can be scheduled again.
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(1), None));
    }

    #[test]
    fn pop_then_repush_same_constraint() {
        // Regression for the epoch-stamp scheme: after popping the only
        // entry for a constraint its stamp is still current but its queued
        // count is zero — a re-push must be accepted without a scan.
        let mut s = AgendaScheduler::new();
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(4), Some(v(1))));
        assert_eq!(s.pop_highest(), Some((c(4), Some(v(1)))));
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(4), Some(v(1))));
        assert!(!s.schedule(FUNCTIONAL_AGENDA, c(4), Some(v(1))));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn epoch_survives_many_clears() {
        let mut s = AgendaScheduler::new();
        for round in 0..1000u32 {
            assert!(s.schedule(FUNCTIONAL_AGENDA, c(round % 3), None));
            assert!(!s.schedule(FUNCTIONAL_AGENDA, c(round % 3), None));
            s.clear();
        }
        assert!(s.is_empty());
    }
}
