use crate::ids::{ConstraintId, VarId};
use std::collections::{HashSet, VecDeque};

/// Name of the agenda functional constraints schedule on (thesis Fig. 4.7,
/// `#functionalConstraints`).
pub const FUNCTIONAL_AGENDA: &str = "functional";

/// Name of the lowest-priority agenda implicit (hierarchical) constraints
/// schedule on (thesis Fig. 5.3, `#implicitConstraints`). Its low priority
/// makes propagation "tend to completely propagate constraint networks in
/// one level of the hierarchy before propagating … another level" (§5.1.2).
pub const IMPLICIT_AGENDA: &str = "implicit";

/// Default priority of [`FUNCTIONAL_AGENDA`].
pub const FUNCTIONAL_PRIORITY: i32 = 10;

/// Default priority of [`IMPLICIT_AGENDA`].
pub const IMPLICIT_PRIORITY: i32 = -10;

type Entry = (ConstraintId, Option<VarId>);

/// One agenda: a first-in-first-out queue without duplicate entries
/// (thesis §4.2.1).
#[derive(Debug, Clone)]
struct Agenda {
    name: &'static str,
    priority: i32,
    queue: VecDeque<Entry>,
    members: HashSet<Entry>,
}

impl Agenda {
    fn new(name: &'static str, priority: i32) -> Self {
        Agenda {
            name,
            priority,
            queue: VecDeque::new(),
            members: HashSet::new(),
        }
    }

    fn push(&mut self, entry: Entry) -> bool {
        if self.members.insert(entry) {
            self.queue.push_back(entry);
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        let entry = self.queue.pop_front()?;
        self.members.remove(&entry);
        Some(entry)
    }
}

/// Multi-queue, fixed-priority scheduler for constraint propagation
/// (thesis §4.2.1, Fig. 4.8).
///
/// Constraints scheduled in agendas are propagated one at a time, always
/// from the highest-priority non-empty agenda. Two agendas exist by
/// default: [`FUNCTIONAL_AGENDA`] and [`IMPLICIT_AGENDA`]; custom agendas
/// may be declared with [`AgendaScheduler::define`] or spring into
/// existence at priority 0 on first use.
#[derive(Debug, Clone)]
pub struct AgendaScheduler {
    /// Kept sorted by priority, highest first.
    agendas: Vec<Agenda>,
}

impl Default for AgendaScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl AgendaScheduler {
    /// Creates a scheduler with the two default agendas.
    pub fn new() -> Self {
        let mut s = AgendaScheduler {
            agendas: Vec::new(),
        };
        s.define(FUNCTIONAL_AGENDA, FUNCTIONAL_PRIORITY);
        s.define(IMPLICIT_AGENDA, IMPLICIT_PRIORITY);
        s
    }

    /// Declares (or re-prioritises) an agenda. Re-prioritising is only
    /// allowed while the agenda is empty.
    ///
    /// # Panics
    ///
    /// Panics when changing the priority of a non-empty agenda.
    pub fn define(&mut self, name: &'static str, priority: i32) {
        if let Some(a) = self.agendas.iter_mut().find(|a| a.name == name) {
            assert!(
                a.queue.is_empty(),
                "cannot re-prioritise non-empty agenda {name:?}"
            );
            a.priority = priority;
        } else {
            self.agendas.push(Agenda::new(name, priority));
        }
        self.agendas.sort_by_key(|a| std::cmp::Reverse(a.priority));
    }

    /// The priority of `name`, if declared.
    pub fn priority(&self, name: &str) -> Option<i32> {
        self.agendas
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.priority)
    }

    /// Schedules `(cid, var)` on agenda `name`, creating the agenda at
    /// priority 0 if unknown. Returns `false` when the identical entry was
    /// already queued (no duplicates, §4.2.1).
    pub fn schedule(&mut self, name: &'static str, cid: ConstraintId, var: Option<VarId>) -> bool {
        if self.priority(name).is_none() {
            self.define(name, 0);
        }
        self.agendas
            .iter_mut()
            .find(|a| a.name == name)
            .expect("agenda just defined")
            .push((cid, var))
    }

    /// Removes and returns the first entry of the highest-priority
    /// non-empty agenda (`removeHighestPriorityScheduledEntry`, Fig. 4.8).
    pub fn pop_highest(&mut self) -> Option<Entry> {
        self.agendas.iter_mut().find_map(|a| a.pop())
    }

    /// Whether every agenda is empty.
    pub fn is_empty(&self) -> bool {
        self.agendas.iter().all(|a| a.queue.is_empty())
    }

    /// Total queued entries across agendas.
    pub fn len(&self) -> usize {
        self.agendas.iter().map(|a| a.queue.len()).sum()
    }

    /// Discards all queued entries (used when a cycle aborts).
    pub fn clear(&mut self) {
        for a in &mut self.agendas {
            a.queue.clear();
            a.members.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ConstraintId {
        ConstraintId(i)
    }

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn fifo_within_an_agenda() {
        let mut s = AgendaScheduler::new();
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        s.schedule(FUNCTIONAL_AGENDA, c(2), None);
        assert_eq!(s.pop_highest(), Some((c(1), None)));
        assert_eq!(s.pop_highest(), Some((c(2), None)));
        assert_eq!(s.pop_highest(), None);
    }

    #[test]
    fn no_duplicate_entries() {
        let mut s = AgendaScheduler::new();
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(1), None));
        assert!(!s.schedule(FUNCTIONAL_AGENDA, c(1), None));
        // Distinct variable component is a distinct entry.
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(1), Some(v(2))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn priority_ordering_across_agendas() {
        let mut s = AgendaScheduler::new();
        s.schedule(IMPLICIT_AGENDA, c(9), Some(v(1)));
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        // Functional has higher priority than implicit.
        assert_eq!(s.pop_highest(), Some((c(1), None)));
        assert_eq!(s.pop_highest(), Some((c(9), Some(v(1)))));
    }

    #[test]
    fn custom_agenda_auto_defined_at_zero() {
        let mut s = AgendaScheduler::new();
        s.schedule("custom", c(5), None);
        assert_eq!(s.priority("custom"), Some(0));
        // priority 0 beats implicit (-10), loses to functional (10)
        s.schedule(IMPLICIT_AGENDA, c(7), None);
        s.schedule(FUNCTIONAL_AGENDA, c(6), None);
        assert_eq!(s.pop_highest().unwrap().0, c(6));
        assert_eq!(s.pop_highest().unwrap().0, c(5));
        assert_eq!(s.pop_highest().unwrap().0, c(7));
    }

    #[test]
    fn redefine_empty_agenda_priority() {
        let mut s = AgendaScheduler::new();
        s.define("custom", 99);
        assert_eq!(s.priority("custom"), Some(99));
        s.schedule("custom", c(1), None);
        s.schedule(FUNCTIONAL_AGENDA, c(2), None);
        assert_eq!(s.pop_highest().unwrap().0, c(1));
    }

    #[test]
    #[should_panic(expected = "non-empty agenda")]
    fn cannot_reprioritise_nonempty() {
        let mut s = AgendaScheduler::new();
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        s.define(FUNCTIONAL_AGENDA, 3);
    }

    #[test]
    fn clear_empties_everything() {
        let mut s = AgendaScheduler::new();
        s.schedule(FUNCTIONAL_AGENDA, c(1), None);
        s.schedule(IMPLICIT_AGENDA, c(2), Some(v(3)));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        // After clear, previously queued entries can be scheduled again.
        assert!(s.schedule(FUNCTIONAL_AGENDA, c(1), None));
    }
}
