//! # stem-core — object-oriented, hierarchical constraint propagation
//!
//! The primary contribution of the reproduced thesis (ch. 4–5): a
//! constraint-propagation framework designed "to provide background
//! coordination for high-level design interactions such as changes in
//! delay, area and signal types among related cells".
//!
//! A [`Network`] is a directed graph of *variable* objects and *constraint*
//! edges. Assigning a variable ([`Network::set`]) triggers a depth-first
//! propagation wave; constraints infer values for their other arguments
//! ([`Network::propagate_set`]), scheduled either immediately or on
//! fixed-priority FIFO agendas. Propagation terminates by the
//! one-value-change rule, detects violations (restoring all visited state),
//! records justifications and dependency records for every propagated
//! value, and supports dependency analysis (antecedents / consequences) and
//! live network editing.
//!
//! ## Example — the network of thesis Fig. 4.5
//!
//! ```
//! use stem_core::{Network, Value, Justification};
//! use stem_core::kinds::{Equality, Functional};
//!
//! let mut net = Network::new();
//! let v1 = net.add_variable("V1");
//! let v2 = net.add_variable("V2");
//! let v3 = net.add_variable("V3");
//! let v4 = net.add_variable("V4");
//! net.add_constraint(Equality::new(), [v1, v2])?;
//! net.add_constraint(Functional::uni_maximum(), [v2, v3, v4])?;
//!
//! net.set(v3, Value::Int(7), Justification::User)?;
//! net.set(v1, Value::Int(9), Justification::User)?;
//! assert_eq!(net.value(v2), &Value::Int(9));
//! assert_eq!(net.value(v4), &Value::Int(9));
//! # Ok::<(), stem_core::Violation>(())
//! ```
//!
//! ## Extending
//!
//! New constraint behaviour = a [`ConstraintKind`] impl; new variable
//! overwrite rules = a [`VariableKind`] impl; new hierarchical link
//! semantics = a [`kinds::LinkSemantics`] impl. This is the thesis's
//! "arbitrary propagation behavior can be defined by redefining the default
//! procedures", with traits in place of subclassing.
//!
//! ## Beyond the thesis
//!
//! Three of its §9.2.3/§9.3 future-work suggestions are built in:
//! per-constraint control ([`Network::set_constraint_enabled`],
//! [`Network::set_kind_enabled`]), the relaxed N-value-change rule
//! ([`Network::set_value_change_limit`]) for reconvergent fanouts, and
//! network compilation ([`compile_functional`] +
//! [`Network::run_compiled`]). [`Network::snapshot`] /
//! [`Network::restore_snapshot`] checkpoint whole value states for search
//! procedures such as joint module selection.

#![warn(missing_docs)]
mod agenda;
pub mod codec;
mod compile;
mod constraint;
pub mod domain;
mod ids;
mod inspect;
mod justification;
pub mod kinds;
mod network;
mod par;
mod plan;
pub mod prng;
mod value;
mod variable;
mod violation;

pub use agenda::{
    AgendaScheduler, FUNCTIONAL_AGENDA, FUNCTIONAL_PRIORITY, IMPLICIT_AGENDA, IMPLICIT_PRIORITY,
};
pub use compile::{compile_functional, CompileCycle, CompiledPlan};
pub use constraint::{Activation, ConstraintKind};
pub use domain::{Dom, DomainPropagator, FinSet, Interval, PropagateOutcome, View};
pub use ids::{ConstraintId, Entity, VarId};
pub use inspect::NetworkInspector;
pub use justification::{DependencyRecord, Justification};
pub use network::{Network, SetStatus, Stats, ValueSnapshot, ViolationHandler};
pub use par::{ParKernel, ParStats, PureOp};
pub use plan::{PlanParDetail, PlanStatus};
pub use value::{Span, TypeTag, Value};
pub use variable::{Overwrite, PlainKind, PropertyKind, RecalcFn, VariableKind};
pub use violation::{Violation, ViolationKind};
