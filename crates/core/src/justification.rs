use crate::ids::{ConstraintId, VarId};
use std::fmt;

/// Why a variable holds its current value — the `lastSetBy` field of thesis
/// §4.2.4.
///
/// A justification is either a symbol naming a source external to the
/// constraint networks (`User`, `Application`, …) or, for propagated values,
/// the source constraint plus a [`DependencyRecord`] that the constraint can
/// later interpret during dependency analysis.
///
/// The default overwrite rule: user-specified values have priority over
/// propagated and calculated values; variable kinds may refine this (e.g.
/// signal-type variables use the least-abstract rule of Fig. 7.4).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Justification {
    /// The variable has never been assigned (or was erased to `Nil`).
    #[default]
    Unset,
    /// Assigned directly by the designer (`#USER`). Protected from being
    /// overwritten by propagation under the default rule.
    User,
    /// Calculated by an application program (`#APPLICATION`).
    Application,
    /// Erased/refreshed by consistency maintenance (`#UPDATE`, Fig. 7.8).
    Update,
    /// Tentatively assigned by a validity probe (`#TENTATIVE`, Fig. 8.2);
    /// always rolled back.
    Tentative,
    /// A default value inherited from a class definition.
    DefaultValue,
    /// Propagated by a constraint during constraint propagation.
    Propagated {
        /// The source constraint that assigned the value.
        constraint: ConstraintId,
        /// Data letting the source constraint trace the variable values
        /// responsible for this one.
        record: DependencyRecord,
    },
}

impl Justification {
    /// Whether the value came from constraint propagation.
    pub fn is_propagated(&self) -> bool {
        matches!(self, Justification::Propagated { .. })
    }

    /// Whether the value was directly entered by the user.
    pub fn is_user(&self) -> bool {
        matches!(self, Justification::User)
    }

    /// The source constraint for propagated values.
    pub fn source_constraint(&self) -> Option<ConstraintId> {
        match self {
            Justification::Propagated { constraint, .. } => Some(*constraint),
            _ => None,
        }
    }

    /// The dependency record for propagated values.
    pub fn record(&self) -> Option<&DependencyRecord> {
        match self {
            Justification::Propagated { record, .. } => Some(record),
            _ => None,
        }
    }
}

impl fmt::Display for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Justification::Unset => write!(f, "#UNSET"),
            Justification::User => write!(f, "#USER"),
            Justification::Application => write!(f, "#APPLICATION"),
            Justification::Update => write!(f, "#UPDATE"),
            Justification::Tentative => write!(f, "#TENTATIVE"),
            Justification::DefaultValue => write!(f, "#DEFAULT"),
            Justification::Propagated { constraint, record } => {
                write!(f, "{constraint} via {record}")
            }
        }
    }
}

/// Dependency data attached to a propagated value (thesis §4.2.4).
///
/// "Since dependency records are only interpreted by the constraints that
/// formulate them, they vary greatly among different types of constraints" —
/// the enum covers the shapes used by the built-in kinds, plus an opaque
/// word for custom kinds, which must then override
/// [`ConstraintKind::depends_on`](crate::ConstraintKind::depends_on).
#[derive(Debug, Clone, PartialEq)]
pub enum DependencyRecord {
    /// Depends on every argument of the source constraint (the null record
    /// of functional constraints).
    All,
    /// Depends on the single variable that activated the constraint (the
    /// record of equality constraints).
    Single(VarId),
    /// Depends on an explicit set of variables.
    Vars(Vec<VarId>),
    /// Custom data interpreted only by the originating constraint kind.
    Opaque(u64),
}

impl fmt::Display for DependencyRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependencyRecord::All => write!(f, "all-args"),
            DependencyRecord::Single(v) => write!(f, "{v}"),
            DependencyRecord::Vars(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            DependencyRecord::Opaque(x) => write!(f, "opaque({x})"),
        }
    }
}

impl DependencyRecord {
    /// Default membership interpretation, shared by the built-in kinds:
    /// does a value carrying this record depend on `arg`?
    pub fn default_membership(&self, arg: VarId) -> bool {
        match self {
            DependencyRecord::All => true,
            DependencyRecord::Single(v) => *v == arg,
            DependencyRecord::Vars(vs) => vs.contains(&arg),
            DependencyRecord::Opaque(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let j = Justification::Propagated {
            constraint: ConstraintId(2),
            record: DependencyRecord::Single(VarId(5)),
        };
        assert!(j.is_propagated());
        assert!(!j.is_user());
        assert_eq!(j.source_constraint(), Some(ConstraintId(2)));
        assert_eq!(j.record(), Some(&DependencyRecord::Single(VarId(5))));
        assert!(Justification::User.is_user());
        assert_eq!(Justification::User.source_constraint(), None);
    }

    #[test]
    fn membership_defaults() {
        assert!(DependencyRecord::All.default_membership(VarId(1)));
        assert!(DependencyRecord::Single(VarId(1)).default_membership(VarId(1)));
        assert!(!DependencyRecord::Single(VarId(1)).default_membership(VarId(2)));
        assert!(DependencyRecord::Vars(vec![VarId(1), VarId(3)]).default_membership(VarId(3)));
        assert!(!DependencyRecord::Vars(vec![]).default_membership(VarId(3)));
        assert!(DependencyRecord::Opaque(9).default_membership(VarId(3)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Justification::User.to_string(), "#USER");
        let j = Justification::Propagated {
            constraint: ConstraintId(2),
            record: DependencyRecord::All,
        };
        assert_eq!(j.to_string(), "c2 via all-args");
        assert_eq!(
            DependencyRecord::Vars(vec![VarId(1), VarId(2)]).to_string(),
            "{v1 v2}"
        );
    }
}
