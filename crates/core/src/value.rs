use std::fmt;
use std::sync::Arc;

use stem_geom::Rect;

use crate::domain::{FinSet, Interval};

/// A closed interval of reals, used for parameter ranges: the class-side
/// variable of a parameter "characterizes the range of the parameter values
/// that can be handled by the cell" (thesis §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Span {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "span bounds out of order: {lo} > {hi}");
        Span { lo, hi }
    }

    /// Whether `x` lies in the span.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is entirely inside `self`.
    pub fn contains_span(&self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Reference to a node in a signal-type hierarchy (thesis §7.1, Fig. 7.2).
///
/// The hierarchy itself lives outside the core crate (in `stem-checking`'s
/// `TypeHierarchy`); the core value only needs identity so that equality
/// comparisons and dependency records work. `hierarchy` disambiguates
/// between forests (data types vs. electrical types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TypeTag {
    /// Which type forest the node belongs to.
    pub hierarchy: u32,
    /// Node index within the forest.
    pub node: u32,
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}.{}", self.hierarchy, self.node)
    }
}

/// The value held by a constraint variable.
///
/// STEM variables hold heterogeneous Smalltalk objects; this closed enum
/// covers every value the thesis propagates: numbers, bit widths, signal
/// types, bounding boxes, delays (as floats, in nanoseconds), parameter
/// ranges, strings, and lists. `Nil` is the distinguished "no value yet"
/// used throughout chapter 4 (erased/propagatable state).
///
/// # Cloning cost
///
/// `clone()` is cheap for every variant except [`Value::List`]: the scalar
/// variants (`Nil`, `Bool`, `Int`, `Float`, `BitWidth`, [`Span`],
/// [`TypeTag`], `Rect`) are plain `Copy`-shaped data, and `Str` holds an
/// interned `Arc<str>` whose clone is a reference-count bump, not a string
/// copy. Only `List` allocates (its `Vec` spine; elements clone
/// recursively). The propagation hot path and the engine's change journal
/// rely on this: saving or restoring a pre-image is O(1) for everything
/// but lists.
///
/// ```
/// use stem_core::Value;
/// assert!(Value::Nil.is_nil());
/// assert_eq!(Value::Int(3).as_f64(), Some(3.0));
/// assert_eq!(Value::BitWidth(8).as_f64(), Some(8.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// No value (Smalltalk `nil`). Propagating into `Nil` is always allowed;
    /// `Nil` itself carries no information to propagate.
    #[default]
    Nil,
    /// Boolean.
    Bool(bool),
    /// Integer (counts, parameters).
    Int(i64),
    /// Real (delays in nanoseconds, resistances, capacitances).
    Float(f64),
    /// Interned string (names, options).
    Str(Arc<str>),
    /// Signal bit width (§7.1).
    BitWidth(u32),
    /// Parameter range (§5.1.1).
    Span(Span),
    /// Signal data/electrical type (§7.1).
    TypeRef(TypeTag),
    /// Bounding box (§7.2).
    Rect(Rect),
    /// Ordered list of values.
    List(Vec<Value>),
    /// Integer interval domain `[lo, hi]` (ROADMAP item 3): the variable
    /// is known to lie in the range; propagators narrow it monotonically.
    Interval(Interval),
    /// Small finite domain over `0..=63` as a 64-bit membership set.
    FinSet(FinSet),
}

impl Value {
    /// Convenience constructor for interned strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether this is [`Value::Nil`].
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Numeric view of the value: `Int`, `Float` and `BitWidth` coerce;
    /// everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::BitWidth(w) => Some(*w as f64),
            _ => None,
        }
    }

    /// Integer view (exact): `Int` and `BitWidth` only.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::BitWidth(w) => Some(*w as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rectangle view.
    pub fn as_rect(&self) -> Option<Rect> {
        match self {
            Value::Rect(r) => Some(*r),
            _ => None,
        }
    }

    /// Type-tag view.
    pub fn as_type(&self) -> Option<TypeTag> {
        match self {
            Value::TypeRef(t) => Some(*t),
            _ => None,
        }
    }

    /// Span view.
    pub fn as_span(&self) -> Option<Span> {
        match self {
            Value::Span(s) => Some(*s),
            _ => None,
        }
    }

    /// Bit-width view.
    pub fn as_bit_width(&self) -> Option<u32> {
        match self {
            Value::BitWidth(w) => Some(*w),
            _ => None,
        }
    }

    /// Interval-domain view.
    pub fn as_interval(&self) -> Option<Interval> {
        match self {
            Value::Interval(iv) => Some(*iv),
            _ => None,
        }
    }

    /// Finite-domain view.
    pub fn as_fin_set(&self) -> Option<FinSet> {
        match self {
            Value::FinSet(s) => Some(*s),
            _ => None,
        }
    }

    /// Numeric comparison between two values, when both are numeric.
    pub fn numeric_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            _ => None,
        }
    }

    /// Numeric addition preserving integer-ness where possible.
    pub fn numeric_add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a + b)),
            _ => Some(Value::Float(self.as_f64()? + other.as_f64()?)),
        }
    }

    /// Numeric maximum preserving representation of the larger operand.
    pub fn numeric_max(&self, other: &Value) -> Option<Value> {
        let (a, b) = (self.as_f64()?, other.as_f64()?);
        Some(if a >= b { self.clone() } else { other.clone() })
    }

    /// Numeric minimum preserving representation of the smaller operand.
    pub fn numeric_min(&self, other: &Value) -> Option<Value> {
        let (a, b) = (self.as_f64()?, other.as_f64()?);
        Some(if a <= b { self.clone() } else { other.clone() })
    }

    /// Short label of the value's kind, used by the network inspector.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::BitWidth(_) => "bitWidth",
            Value::Span(_) => "span",
            Value::TypeRef(_) => "type",
            Value::Rect(_) => "rect",
            Value::List(_) => "list",
            Value::Interval(_) => "interval",
            Value::FinSet(_) => "finSet",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::BitWidth(w) => write!(f, "{w}b"),
            Value::Span(s) => write!(f, "{s}"),
            Value::TypeRef(t) => write!(f, "{t}"),
            Value::Rect(r) => write!(f, "{r}"),
            Value::List(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Interval(iv) => write!(f, "{iv}"),
            Value::FinSet(s) => write!(f, "{s}"),
        }
    }
}

impl From<Interval> for Value {
    fn from(iv: Interval) -> Self {
        Value::Interval(iv)
    }
}

impl From<FinSet> for Value {
    fn from(s: FinSet) -> Self {
        Value::FinSet(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Rect> for Value {
    fn from(r: Rect) -> Self {
        Value::Rect(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_geom::Point;

    #[test]
    fn span_containment() {
        let s = Span::new(1.0, 4.0);
        assert!(s.contains(1.0));
        assert!(s.contains(4.0));
        assert!(!s.contains(4.5));
        assert!(s.contains_span(Span::new(2.0, 3.0)));
        assert!(!s.contains_span(Span::new(0.0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn span_rejects_inverted_bounds() {
        let _ = Span::new(2.0, 1.0);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::BitWidth(8).as_i64(), Some(8));
        assert_eq!(Value::Nil.as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_bool(), None);
    }

    #[test]
    fn arithmetic_preserves_int() {
        assert_eq!(
            Value::Int(2).numeric_add(&Value::Int(3)),
            Some(Value::Int(5))
        );
        assert_eq!(
            Value::Int(2).numeric_add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(Value::Nil.numeric_add(&Value::Int(1)), None);
    }

    #[test]
    fn max_min() {
        assert_eq!(
            Value::Int(2).numeric_max(&Value::Float(3.0)),
            Some(Value::Float(3.0))
        );
        assert_eq!(
            Value::Int(2).numeric_min(&Value::Float(3.0)),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::BitWidth(8).to_string(), "8b");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "(1 2)"
        );
        assert_eq!(
            Value::Rect(Rect::new(Point::new(0, 0), Point::new(1, 1))).to_string(),
            "[(0, 0) .. (1, 1)]"
        );
    }

    #[test]
    fn equality_by_content() {
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(
            Value::TypeRef(TypeTag {
                hierarchy: 0,
                node: 2
            }),
            Value::TypeRef(TypeTag {
                hierarchy: 0,
                node: 2
            })
        );
    }
}
