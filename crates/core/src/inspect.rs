//! Textual network inspection — the programmatic equivalent of STEM's
//! constraint editor (thesis §5.4).
//!
//! The constraint editor let a user "walk through a network of constraints":
//! examine all variables of a constraint, all constraints of a variable,
//! trace antecedents and consequences, and inspect values and
//! justifications. The [`NetworkInspector`] renders exactly those views as
//! text.

use crate::ids::{ConstraintId, VarId};
use crate::network::Network;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Read-only text renderer over a [`Network`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkInspector<'n> {
    net: &'n Network,
}

impl<'n> NetworkInspector<'n> {
    /// Creates an inspector over `net`.
    pub fn new(net: &'n Network) -> Self {
        NetworkInspector { net }
    }

    /// One-line description of a variable: path, kind, value,
    /// justification, its constraint fan-out, and — when the plan cache
    /// has an entry for it as a root — the compiled-plan status.
    pub fn describe_variable(&self, var: VarId) -> String {
        let n = self.net;
        let cons: Vec<String> = n
            .constraints_of(var)
            .iter()
            .map(|c| c.to_string())
            .collect();
        let plan = match n.plan_status(var) {
            crate::PlanStatus::NotCompiled => String::new(),
            crate::PlanStatus::Uncompilable => "  plan(uncompilable)".to_string(),
            crate::PlanStatus::Ready { steps, checks } => {
                let mut s = format!("  plan({steps} steps, {checks} checks)");
                // Parallel shape and skew diagnostics: cone count, layer
                // depth, costliest task, and the last committed replay's
                // steal count — enough to see an unbalanced partition
                // without a profiler.
                if let Some(d) = n.plan_par_detail(var) {
                    let _ = write!(
                        s,
                        "  par({} cones, {} layers, max task {}, last stolen {})",
                        d.cones, d.layers, d.max_task_exec, d.last_stolen
                    );
                }
                s
            }
        };
        format!(
            "{var} {path} : {kind} = {value}  lastSetBy {just}  constraints [{cons}]{plan}",
            path = n.var_path(var),
            kind = n.var_kind_name(var),
            value = n.value(var),
            just = n.justification(var),
            cons = cons.join(" "),
        )
    }

    /// One-line description of a constraint: kind, satisfaction, and its
    /// argument variables.
    pub fn describe_constraint(&self, cid: ConstraintId) -> String {
        let n = self.net;
        if !n.is_active(cid) {
            return format!("{cid} <removed>");
        }
        let args: Vec<String> = n
            .args(cid)
            .iter()
            .map(|&v| format!("{v}={}", n.value(v)))
            .collect();
        format!(
            "{cid} {kind} [{sat}]{subsumed} args({args})",
            kind = n.constraint_kind_name(cid),
            sat = if n.is_satisfied(cid) {
                "ok"
            } else {
                "VIOLATED"
            },
            subsumed = if n.is_subsumed(cid) {
                " [subsumed]"
            } else {
                ""
            },
            args = args.join(", "),
        )
    }

    /// Full network dump: every variable then every active constraint.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "network: {} variables, {} constraints",
            self.net.n_variables(),
            self.net.n_constraints()
        );
        // What a crash right now would cost: the durability regime, plus
        // any still-open change journal (an uncommitted batch in flight).
        let _ = writeln!(
            out,
            "  durability: {}; open journal entries: {}",
            self.net.durability_label(),
            self.net.journal_len(),
        );
        // Domain-propagation health: how much narrowing landed, how much
        // work subsumption marks saved, and how often a domain emptied.
        let s = self.net.stats();
        let _ = writeln!(
            out,
            "  domains: {} tightenings, {} pruned ({} marked subsumed), {} wipeouts",
            s.domain_tightenings,
            s.subsumed_pruned,
            self.net.subsumed_count(),
            s.wipeouts,
        );
        for v in self.net.variables() {
            let _ = writeln!(out, "  {}", self.describe_variable(v));
        }
        for c in self.net.all_constraints() {
            let _ = writeln!(out, "  {}", self.describe_constraint(c));
        }
        out
    }

    /// Backward dependency trace of a variable's value (Fig. 4.11).
    pub fn trace_antecedents(&self, var: VarId) -> String {
        let (vars, cons) = self.net.antecedents(var);
        let mut out = format!("antecedents of {var}:\n");
        for v in vars {
            let _ = writeln!(out, "  {}", self.describe_variable(v));
        }
        for c in cons {
            let _ = writeln!(out, "  via {}", self.describe_constraint(c));
        }
        out
    }

    /// Forward dependency trace of a variable's value (Fig. 4.12).
    pub fn trace_consequences(&self, var: VarId) -> String {
        let mut out = format!("consequences of {var}:\n");
        for v in self.net.consequences(var) {
            let _ = writeln!(out, "  {}", self.describe_variable(v));
        }
        out
    }

    /// Graphviz DOT rendering of the constraint network — the "graphical
    /// display of constraint networks" the thesis asks of a better editor
    /// UI (§9.3). Variables are ellipses, constraints boxes (matching the
    /// thesis's diagram conventions); violated constraints are drawn red.
    pub fn to_dot(&self) -> String {
        let n = self.net;
        let mut out = String::from("digraph constraints {\n  rankdir=LR;\n");
        for v in n.variables() {
            let _ = writeln!(
                out,
                "  \"{v}\" [shape=ellipse, label=\"{}\\n{}\"];",
                escape(&n.var_path(v)),
                escape(&n.value(v).to_string()),
            );
        }
        for c in n.all_constraints() {
            let violated = !n.is_satisfied(c);
            let _ = writeln!(
                out,
                "  \"{c}\" [shape=box{}, label=\"{}\"];",
                if violated { ", color=red" } else { "" },
                escape(&n.constraint_kind_name(c)),
            );
            for &arg in n.args(c) {
                // Arrow direction follows the kind's declared outputs.
                if n.constraint_outputs(c).contains(&arg) {
                    let _ = writeln!(out, "  \"{c}\" -> \"{arg}\";");
                } else {
                    let _ = writeln!(out, "  \"{arg}\" -> \"{c}\";");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// A multi-line diagnostic for one violation — what the thesis's
    /// "debug" handler option (§5.2) would open the constraint debugger
    /// on: the violation itself, the constraint's arguments, and the
    /// antecedents of the variable involved.
    pub fn describe_violation(&self, v: &crate::Violation) -> String {
        let mut out = format!("{v}\n");
        if let Some(c) = v.constraint {
            let _ = writeln!(out, "  {}", self.describe_constraint(c));
        }
        if let Some(var) = v.variable {
            let _ = writeln!(out, "  {}", self.describe_variable(var));
            for line in self.trace_antecedents(var).lines().skip(1) {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }

    /// All currently violated constraints, one line each.
    pub fn violations(&self) -> String {
        let mut out = String::new();
        for c in self.net.all_constraints() {
            if !self.net.is_satisfied(c) {
                let _ = writeln!(out, "{}", self.describe_constraint(c));
            }
        }
        if out.is_empty() {
            out.push_str("no violations\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{Equality, Functional};
    use crate::{Justification, Value};

    fn sample() -> (Network, VarId, VarId, VarId) {
        let mut net = Network::new();
        let a = net.add_variable("a");
        let b = net.add_variable("b");
        let s = net.add_variable("sum");
        net.add_constraint(Equality::new(), [a, b]).unwrap();
        net.add_constraint(Functional::uni_addition(), [a, b, s])
            .unwrap();
        net.set(a, Value::Int(2), Justification::User).unwrap();
        (net, a, b, s)
    }

    #[test]
    fn variable_description_has_value_and_justification() {
        let (net, a, b, _) = sample();
        let insp = NetworkInspector::new(&net);
        let da = insp.describe_variable(a);
        assert!(da.contains("#USER"), "{da}");
        assert!(da.contains("= 2"), "{da}");
        let db = insp.describe_variable(b);
        assert!(db.contains("via"), "{db}");
    }

    #[test]
    fn constraint_description_reports_satisfaction() {
        let (net, ..) = sample();
        let insp = NetworkInspector::new(&net);
        for c in net.all_constraints() {
            assert!(insp.describe_constraint(c).contains("[ok]"));
        }
    }

    #[test]
    fn dump_mentions_everything() {
        let (net, ..) = sample();
        let text = NetworkInspector::new(&net).dump();
        assert!(text.contains("3 variables"));
        assert!(text.contains("equality"));
        assert!(text.contains("uniAddition"));
    }

    #[test]
    fn dump_reports_durability_and_journal_depth() {
        let (mut net, a, ..) = sample();
        let text = NetworkInspector::new(&net).dump();
        assert!(
            text.contains("durability: volatile (in-memory only)"),
            "{text}"
        );
        assert!(text.contains("open journal entries: 0"), "{text}");

        net.set_durability_label("commit-sync (fsync per commit)");
        net.begin_journal();
        net.set(a, Value::Int(5), Justification::User).unwrap();
        let text = NetworkInspector::new(&net).dump();
        assert!(text.contains("durability: commit-sync"), "{text}");
        // The open journal holds this batch's undo entries — exactly the
        // in-flight work a crash would lose.
        assert!(!text.contains("open journal entries: 0"), "{text}");
        net.commit_journal();
    }

    #[test]
    fn traces_follow_dependencies() {
        let (net, a, _, s) = sample();
        let insp = NetworkInspector::new(&net);
        let ante = insp.trace_antecedents(s);
        assert!(ante.contains("a"), "{ante}");
        let cons = insp.trace_consequences(a);
        assert!(cons.contains("sum"), "{cons}");
    }

    #[test]
    fn dot_export_shapes_and_direction() {
        let (net, a, _, s) = sample();
        let dot = NetworkInspector::new(&net).to_dot();
        assert!(dot.starts_with("digraph constraints {"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=box"));
        // The functional constraint points *at* its result variable.
        assert!(dot.contains(&format!("\"c1\" -> \"{s}\";")), "{dot}");
        // Inputs point at the constraint.
        assert!(dot.contains(&format!("\"{a}\" -> \"c1\";")), "{dot}");
        assert!(!dot.contains("color=red"));
    }

    #[test]
    fn dot_marks_violations_red() {
        let (mut net, _, b, _) = sample();
        net.set_propagation_enabled(false);
        net.set(b, Value::Int(99), Justification::User).unwrap();
        let dot = NetworkInspector::new(&net).to_dot();
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn violation_diagnostic_is_rich() {
        let (mut net, a, _, _) = sample();
        let limit = net
            .add_constraint(crate::kinds::Predicate::le_const(Value::Int(5)), [a])
            .unwrap();
        let err = net.set(a, Value::Int(9), Justification::User).unwrap_err();
        let insp = NetworkInspector::new(&net);
        let text = insp.describe_violation(&err);
        assert!(text.contains("unsatisfied"), "{text}");
        assert!(text.contains(&limit.to_string()), "{text}");
    }

    #[test]
    fn variable_description_shows_plan_status() {
        let (mut net, a, ..) = sample();
        // A second set on the same root compiles and caches its plan.
        net.set(a, Value::Int(3), Justification::User).unwrap();
        let insp = NetworkInspector::new(&net);
        let da = insp.describe_variable(a);
        assert!(da.contains("plan("), "{da}");
        assert!(da.contains("steps"), "{da}");
        // No parallel budget, no partition — the par diagnostics stay out.
        assert!(!da.contains("par("), "{da}");
    }

    #[test]
    fn variable_description_shows_parallel_shape() {
        let mut net = Network::new();
        net.set_parallel_threads(4);
        net.set_parallel_min_steps(1);
        let root = net.add_variable("root");
        for i in 0..3 {
            let leaf = net.add_variable(format!("leaf{i}"));
            net.add_constraint(Equality::new(), [root, leaf]).unwrap();
        }
        net.set(root, Value::Int(1), Justification::User).unwrap();
        let insp = NetworkInspector::new(&net);
        let da = insp.describe_variable(root);
        assert!(da.contains("par(3 cones, 1 layers"), "{da}");
        assert!(da.contains("last stolen"), "{da}");
    }

    #[test]
    fn violations_report() {
        let (mut net, _, b, _) = sample();
        let insp_text = {
            let insp = NetworkInspector::new(&net);
            insp.violations()
        };
        assert_eq!(insp_text, "no violations\n");
        net.set_propagation_enabled(false);
        net.set(b, Value::Int(99), Justification::User).unwrap();
        let insp = NetworkInspector::new(&net);
        let text = insp.violations();
        assert!(text.contains("VIOLATED"), "{text}");
    }
}
