//! Interval and finite-domain values plus the propagator fixpoint protocol.
//!
//! STEM variables hold one value; real CSP workloads filter *domains*
//! (ROADMAP item 3, thesis ch. 8 module selection). This module adds the
//! vocabulary: integer intervals `[lo, hi]` ([`Interval`]), small finite
//! domains as 64-bit sets ([`FinSet`]), affine [`View`]s for deriving
//! scaled/negated propagators from one base implementation (*Perfect
//! Derived Propagators*), and the [`PropagateOutcome`] protocol
//! (`FixPoint` / `Subsumed` / `NoChange` / `DomainWipeout`) every domain
//! propagator returns.
//!
//! Domain values are ordinary [`Value`] variants held by plain variables:
//! a propagator write always *intersects* with the current domain, so
//! writes are monotone narrowings and the variable-kind arbitration lets
//! them refine even user-justified values (see [`refines`]). `Subsumed`
//! marks the constraint entailed — the network prunes it from agenda
//! dispatch and compiled-plan replay until a watched variable widens.
//! `DomainWipeout` (an empty intersection) aborts the batch as a
//! [`Violation`](crate::Violation) with O(touched) journal rollback.

use std::fmt;

use crate::value::Value;

/// Hard cap on domain-constraint arity: inference snapshots argument
/// domains into stack buffers of this size to stay allocation-free.
pub const MAX_DOM_ARITY: usize = 16;

/// A closed integer interval `[lo, hi]`, the bounds-consistency domain
/// representation. Always non-empty (`lo <= hi`); an empty intersection is
/// reported as wipeout instead of being constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: {lo} > {hi}");
        Interval { lo, hi }
    }

    /// The one-point interval `[k, k]`.
    pub fn singleton(k: i64) -> Self {
        Interval { lo: k, hi: k }
    }

    /// Whether the interval holds exactly one value.
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `k` lies in the interval.
    pub fn contains(&self, k: i64) -> bool {
        self.lo <= k && k <= self.hi
    }

    /// Whether `other` is entirely inside `self`.
    pub fn contains_interval(&self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection, or `None` when the intervals are disjoint (wipeout).
    pub fn intersect(&self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.lo, self.hi)
    }
}

/// A small finite domain over `0..=63`, stored as a 64-bit set. Always
/// non-empty when constructed through [`FinSet::new`]; codec decoding
/// builds the raw struct and leaves rejection to the checksum layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FinSet {
    /// Membership bitmask: bit `k` set means `k` is in the domain.
    pub bits: u64,
}

impl FinSet {
    /// Creates a finite domain from a membership mask.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero (the empty domain is wipeout, not a value).
    pub fn new(bits: u64) -> Self {
        assert!(bits != 0, "finite domain must be non-empty");
        FinSet { bits }
    }

    /// The domain `{lo, lo+1, .., hi}`; bounds are clamped to `0..=63`.
    ///
    /// # Panics
    ///
    /// Panics if the clamped range is empty.
    pub fn from_range(lo: i64, hi: i64) -> Self {
        FinSet::new(range_mask(lo, hi))
    }

    /// The one-element domain `{k}`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= k <= 63`.
    pub fn singleton(k: i64) -> Self {
        assert!(
            (0..64).contains(&k),
            "finite-domain element out of range: {k}"
        );
        FinSet { bits: 1u64 << k }
    }

    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether the set holds exactly one element.
    pub fn is_singleton(&self) -> bool {
        self.bits.count_ones() == 1
    }

    /// `true` only for a corrupt (decoded) empty set; constructed sets are
    /// never empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Whether `k` is a member.
    pub fn contains(&self, k: i64) -> bool {
        (0..64).contains(&k) && self.bits & (1u64 << k) != 0
    }

    /// Smallest member (meaningless for a corrupt empty set).
    pub fn min(&self) -> i64 {
        self.bits.trailing_zeros() as i64
    }

    /// Largest member (meaningless for a corrupt empty set).
    pub fn max(&self) -> i64 {
        63 - self.bits.leading_zeros() as i64
    }

    /// Intersection, or `None` when disjoint (wipeout).
    pub fn intersect(&self, other: FinSet) -> Option<FinSet> {
        let bits = self.bits & other.bits;
        (bits != 0).then_some(FinSet { bits })
    }
}

impl fmt::Display for FinSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for k in 0..64 {
            if self.bits & (1u64 << k) != 0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{k}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

/// Bitmask of `lo..=hi` clamped to `0..=63`; zero when the clamp empties it.
fn range_mask(lo: i64, hi: i64) -> u64 {
    let lo = lo.max(0);
    let hi = hi.min(63);
    if lo > hi {
        return 0;
    }
    let span = (hi - lo) as u32 + 1;
    let ones = if span >= 64 {
        u64::MAX
    } else {
        (1u64 << span) - 1
    };
    ones << lo
}

/// `floor(n / d)` over i128 (bound math never overflows for i64 inputs).
fn floor_div(n: i128, d: i128) -> i128 {
    let q = n / d;
    if n % d != 0 && (n < 0) != (d < 0) {
        q - 1
    } else {
        q
    }
}

/// `ceil(n / d)` over i128.
fn ceil_div(n: i128, d: i128) -> i128 {
    let q = n / d;
    if n % d != 0 && (n < 0) == (d < 0) {
        q + 1
    } else {
        q
    }
}

fn clamp_i64(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// An affine view `x ↦ a·x + b` with `a ≠ 0`, the derivation mechanism of
/// *Perfect Derived Propagators*: a base propagator over views is the
/// scaled/shifted/negated variant of the identity-view propagator, with no
/// loss of bounds-propagation strength. Bound arithmetic runs in i128 and
/// clamps to the i64 edges, so derived propagators degrade to weaker
/// (still sound) pruning near overflow instead of wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct View {
    /// Multiplier (non-zero).
    pub a: i64,
    /// Offset.
    pub b: i64,
}

impl View {
    /// The identity view `x ↦ x`.
    pub const IDENT: View = View { a: 1, b: 0 };

    /// Creates a view.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (a constant view propagates nothing).
    pub fn new(a: i64, b: i64) -> Self {
        assert!(a != 0, "view multiplier must be non-zero");
        View { a, b }
    }

    /// The negation view `x ↦ -x`.
    pub fn negated() -> Self {
        View { a: -1, b: 0 }
    }

    /// The scaling view `x ↦ a·x`.
    pub fn scaled(a: i64) -> Self {
        View::new(a, 0)
    }

    /// The shift view `x ↦ x + b`.
    pub fn shifted(b: i64) -> Self {
        View { a: 1, b }
    }

    /// Image of the interval `[lo, hi]` under the view (clamped to i64).
    pub fn image(&self, lo: i64, hi: i64) -> (i64, i64) {
        let a = self.a as i128;
        let b = self.b as i128;
        let p = a * lo as i128 + b;
        let q = a * hi as i128 + b;
        if p <= q {
            (clamp_i64(p), clamp_i64(q))
        } else {
            (clamp_i64(q), clamp_i64(p))
        }
    }

    /// Largest interval whose image lies inside `[lo, hi]`, or `None` when
    /// no integer maps in (an empty preimage — wipeout for the caller).
    pub fn preimage(&self, lo: i64, hi: i64) -> Option<(i64, i64)> {
        let a = self.a as i128;
        let lo = lo as i128 - self.b as i128;
        let hi = hi as i128 - self.b as i128;
        // a·x ∈ [lo, hi] ⇔ x between the rounded-inward quotients; a < 0
        // swaps which endpoint ceils and which floors.
        let (l, h) = if a > 0 {
            (ceil_div(lo, a), floor_div(hi, a))
        } else {
            (ceil_div(hi, a), floor_div(lo, a))
        };
        (l <= h).then_some((clamp_i64(l), clamp_i64(h)))
    }
}

/// Result protocol of a domain propagator run — the vocabulary fixed by
/// the crusp / choco3 snippets in SNIPPETS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagateOutcome {
    /// At least one domain narrowed and the propagator reached a local
    /// fixpoint (re-running it immediately would change nothing).
    FixPoint,
    /// The constraint is entailed by the current domains: every remaining
    /// assignment satisfies it, so the network may prune it from dispatch
    /// and plan replay until a watched domain widens.
    Subsumed,
    /// Nothing narrowed.
    NoChange,
    /// Some domain became empty — the constraint is unsatisfiable under
    /// the current domains and the batch must abort.
    DomainWipeout,
}

/// Uniform bounds-reasoning view of one argument's current [`Value`],
/// used inside propagators so interval, finite-set, and fixed scalar
/// arguments share one narrowing code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dom {
    /// `Nil`: unconstrained; narrows into a fresh interval.
    Top,
    /// An interval `[lo, hi]` (also fixed `Int`/`Bool` as singletons).
    Range(i64, i64),
    /// A finite set (membership mask).
    Bits(u64),
    /// A non-domain value the propagator must leave untouched.
    Opaque,
}

impl Dom {
    /// Classifies a variable's current value for bounds reasoning.
    pub fn from_value(v: &Value) -> Dom {
        match v {
            Value::Nil => Dom::Top,
            Value::Interval(iv) => Dom::Range(iv.lo, iv.hi),
            Value::FinSet(s) => Dom::Bits(s.bits),
            Value::Int(k) => Dom::Range(*k, *k),
            Value::Bool(b) => {
                let k = i64::from(*b);
                Dom::Range(k, k)
            }
            _ => Dom::Opaque,
        }
    }

    /// Bounds of the domain, when it has any.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        match *self {
            Dom::Range(l, h) => Some((l, h)),
            Dom::Bits(b) => {
                if b == 0 {
                    None
                } else {
                    Some((b.trailing_zeros() as i64, 63 - b.leading_zeros() as i64))
                }
            }
            Dom::Top | Dom::Opaque => None,
        }
    }

    /// Whether the domain is pinned to exactly one value.
    pub fn singleton(&self) -> Option<i64> {
        match self.bounds() {
            Some((l, h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// Intersects with `[lo, hi]`, preserving representation (`Bits` stays
    /// `Bits`, `Top` materialises a `Range`). `None` means wipeout;
    /// `Opaque` passes through untouched.
    pub fn meet_range(self, lo: i64, hi: i64) -> Option<Dom> {
        if lo > hi {
            return None;
        }
        match self {
            Dom::Top => Some(Dom::Range(lo, hi)),
            Dom::Range(l, h) => {
                let nl = l.max(lo);
                let nh = h.min(hi);
                (nl <= nh).then_some(Dom::Range(nl, nh))
            }
            Dom::Bits(b) => {
                let nb = b & range_mask(lo, hi);
                (nb != 0).then_some(Dom::Bits(nb))
            }
            Dom::Opaque => Some(Dom::Opaque),
        }
    }

    /// Removes one element (used by `all_different`): interior removal
    /// from a `Range` keeps bounds consistency by only trimming at the
    /// edges. `None` means wipeout.
    pub fn remove(self, k: i64) -> Option<Dom> {
        match self {
            Dom::Bits(b) => {
                let nb = if (0..64).contains(&k) {
                    b & !(1u64 << k)
                } else {
                    b
                };
                (nb != 0).then_some(Dom::Bits(nb))
            }
            Dom::Range(l, h) => {
                if l == k && h == k {
                    None
                } else if l == k {
                    Some(Dom::Range(l + 1, h))
                } else if h == k {
                    Some(Dom::Range(l, h - 1))
                } else {
                    Some(Dom::Range(l, h))
                }
            }
            d => Some(d),
        }
    }
}

/// Whether writing `new` over `old` is a pure refinement: a domain value
/// narrowing (or equalling) the current domain of the same representation.
///
/// The default [`VariableKind`](crate::VariableKind) arbitration allows a
/// refinement unconditionally — narrowing a user-set domain is the point
/// of domain propagation, not a competing claim on the variable — while
/// every non-domain value keeps the thesis's strength rules untouched.
pub fn refines(old: &Value, new: &Value) -> bool {
    match (old, new) {
        (Value::Interval(a), Value::Interval(b)) => a.contains_interval(*b),
        (Value::FinSet(a), Value::FinSet(b)) => b.bits & !a.bits == 0 && b.bits != 0,
        _ => false,
    }
}

/// A bounds-consistent domain propagator over argument domains.
///
/// Implementations are pure functions over [`Dom`] slices; the
/// [`DomainConstraint`](crate::kinds::DomainConstraint) adapter snapshots
/// variable values into `Dom`s, runs [`propagate`](Self::propagate), and
/// writes back only the arguments whose domain changed — preserving each
/// argument's representation. Compose with [`View`]s to derive scaled,
/// negated, and shifted variants from the same implementation.
pub trait DomainPropagator: fmt::Debug {
    /// Short name used for violation reports and the inspector.
    fn name(&self) -> &str;

    /// The single argument index inference writes, when the propagator is
    /// directional (plannable by the compiled-plan path); `None` means it
    /// may narrow several arguments and stays on the agenda interpreter.
    fn output(&self) -> Option<usize> {
        None
    }

    /// Whether argument `ix` is boolean-valued: singleton writes to it are
    /// represented as `Value::Bool` instead of a one-point interval.
    fn bool_arg(&self, ix: usize) -> bool {
        let _ = ix;
        false
    }

    /// Narrows `doms` in place toward the constraint and reports the
    /// outcome. Must be monotone (only ever shrink a domain) and must
    /// return [`PropagateOutcome::DomainWipeout`] instead of leaving an
    /// empty domain behind.
    fn propagate(&self, doms: &mut [Dom]) -> PropagateOutcome;

    /// Lenient satisfaction: `false` only when the current domains
    /// provably admit no satisfying assignment.
    fn satisfied(&self, doms: &[Dom]) -> bool;

    /// Re-checks entailment against current domains after a watched
    /// variable changed non-monotonically (widened). A conservative
    /// `false` merely costs re-dispatch.
    fn entailed(&self, doms: &[Dom]) -> bool {
        let _ = doms;
        false
    }
}

/// Shared epilogue for propagators: classify the run given whether any
/// domain changed and whether the relation is now entailed.
pub(crate) fn outcome(changed: bool, entailed: bool) -> PropagateOutcome {
    if entailed {
        PropagateOutcome::Subsumed
    } else if changed {
        PropagateOutcome::FixPoint
    } else {
        PropagateOutcome::NoChange
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ops() {
        let a = Interval::new(1, 5);
        assert!(a.contains(1) && a.contains(5) && !a.contains(6));
        assert!(a.contains_interval(Interval::new(2, 4)));
        assert!(!a.contains_interval(Interval::new(0, 4)));
        assert_eq!(a.intersect(Interval::new(4, 9)), Some(Interval::new(4, 5)));
        assert_eq!(a.intersect(Interval::new(6, 9)), None);
        assert!(Interval::singleton(3).is_singleton());
        assert_eq!(Interval::new(-2, 3).to_string(), "[-2..3]");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn interval_rejects_inverted_bounds() {
        let _ = Interval::new(2, 1);
    }

    #[test]
    fn finset_ops() {
        let s = FinSet::from_range(2, 5);
        assert_eq!(s.len(), 4);
        assert_eq!((s.min(), s.max()), (2, 5));
        assert!(s.contains(3) && !s.contains(6) && !s.contains(-1));
        assert_eq!(
            s.intersect(FinSet::from_range(4, 9)),
            Some(FinSet::from_range(4, 5))
        );
        assert_eq!(s.intersect(FinSet::from_range(8, 9)), None);
        assert!(FinSet::singleton(63).is_singleton());
        assert_eq!(FinSet::new(0b101).to_string(), "{0,2}");
        assert_eq!(FinSet::from_range(-10, 100).len(), 64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn finset_rejects_empty() {
        let _ = FinSet::new(0);
    }

    #[test]
    fn view_image_and_preimage() {
        let v = View::new(3, 1); // x ↦ 3x + 1
        assert_eq!(v.image(-2, 4), (-5, 13));
        // preimage of [0, 10]: 3x+1 ∈ [0,10] ⇔ x ∈ [0, 3]
        assert_eq!(v.preimage(0, 10), Some((0, 3)));
        // negative multiplier flips and still floors/ceils correctly
        let n = View::new(-2, 0);
        assert_eq!(n.image(1, 3), (-6, -2));
        assert_eq!(n.preimage(-5, -1), Some((1, 2)));
        // empty preimage: no integer x has 3x+1 ∈ [5, 6]
        assert_eq!(View::new(3, 1).preimage(5, 6), None);
        // identity round-trips
        assert_eq!(View::IDENT.preimage(-7, 9), Some((-7, 9)));
        // clamping stays sound (degrades to wide, never wraps)
        let big = View::new(i64::MAX, 0);
        let (lo, hi) = big.image(i64::MIN, i64::MAX);
        assert!(lo <= hi);
        // negated view over a half-open bound does not false-wipeout
        assert_eq!(View::negated().preimage(i64::MIN, 5), Some((-5, i64::MAX)));
    }

    #[test]
    fn dom_meet_preserves_representation() {
        assert_eq!(Dom::Top.meet_range(1, 4), Some(Dom::Range(1, 4)));
        assert_eq!(Dom::Range(0, 9).meet_range(5, 20), Some(Dom::Range(5, 9)));
        assert_eq!(Dom::Range(0, 3).meet_range(5, 9), None);
        assert_eq!(Dom::Bits(0b1111).meet_range(2, 9), Some(Dom::Bits(0b1100)));
        assert_eq!(Dom::Bits(0b11).meet_range(5, 9), None);
        assert_eq!(Dom::Opaque.meet_range(1, 2), Some(Dom::Opaque));
        assert_eq!(Dom::Range(3, 3).singleton(), Some(3));
        assert_eq!(Dom::Bits(0b1000).singleton(), Some(3));
    }

    #[test]
    fn dom_remove_trims_edges_only() {
        assert_eq!(Dom::Range(1, 4).remove(1), Some(Dom::Range(2, 4)));
        assert_eq!(Dom::Range(1, 4).remove(4), Some(Dom::Range(1, 3)));
        assert_eq!(Dom::Range(1, 4).remove(2), Some(Dom::Range(1, 4)));
        assert_eq!(Dom::Range(2, 2).remove(2), None);
        assert_eq!(Dom::Bits(0b110).remove(1), Some(Dom::Bits(0b100)));
        assert_eq!(Dom::Bits(0b010).remove(1), None);
    }

    #[test]
    fn refinement_rule() {
        let wide = Value::Interval(Interval::new(0, 10));
        let narrow = Value::Interval(Interval::new(2, 5));
        assert!(refines(&wide, &narrow));
        assert!(refines(&wide, &wide));
        assert!(!refines(&narrow, &wide));
        let s = Value::FinSet(FinSet::new(0b111));
        let t = Value::FinSet(FinSet::new(0b101));
        assert!(refines(&s, &t));
        assert!(!refines(&t, &s));
        // cross-representation and scalar writes are never refinements
        assert!(!refines(&wide, &s));
        assert!(!refines(&Value::Int(3), &Value::Int(3)));
        assert!(!refines(&Value::Nil, &narrow));
    }

    #[test]
    fn rounded_division() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(ceil_div(-7, -2), 4);
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(-7, -2), 3);
        assert_eq!(ceil_div(6, 3), 2);
        assert_eq!(floor_div(6, 3), 2);
    }
}
