use crate::ids::{ConstraintId, VarId};
use crate::value::Value;
use std::error::Error;
use std::fmt;

/// Why a propagation cycle was aborted (thesis §4.2.2–4.2.3).
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A constraint tried to change a variable that already changed value
    /// during this propagation — the one-value-change rule, which also
    /// rejects cyclic propagation (Fig. 4.9).
    Revisit,
    /// A propagated value disagreed with a protected (e.g. user-specified)
    /// value and the variable kind denied the overwrite.
    OverwriteDenied,
    /// A visited constraint's `is_satisfied` test failed in the final check
    /// (Fig. 4.6) or during re-initialisation.
    Unsatisfied,
    /// A constraint kind raised a violation of its own.
    Custom(String),
    /// The propagation wave exceeded the cycle's step budget
    /// ([`crate::Network::set_step_limit`]) and was aborted; all visited
    /// state was restored. Used by batch services to contain runaway waves.
    BudgetExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Revisit => write!(f, "revisit (one-value-change rule)"),
            ViolationKind::OverwriteDenied => write!(f, "overwrite denied"),
            ViolationKind::Unsatisfied => write!(f, "constraint unsatisfied"),
            ViolationKind::Custom(s) => write!(f, "{s}"),
            ViolationKind::BudgetExceeded { limit } => {
                write!(f, "propagation step budget ({limit}) exceeded")
            }
        }
    }
}

/// A constraint violation.
///
/// When propagation detects a violation the engine restores every visited
/// variable to its pre-propagation state (the default violation handler of
/// Fig. 4.10), notifies registered handlers, and returns the violation as an
/// `Err` — the NIL validity feedback of thesis §5.2, in `Result` form.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The variable at which the violation was detected, if any.
    pub variable: Option<VarId>,
    /// The constraint that detected (or failed) the check, if any.
    pub constraint: Option<ConstraintId>,
    /// The value whose assignment was rejected, if any.
    pub rejected: Option<Value>,
    /// Kind label of the failing constraint, when known (for diagnostics).
    pub kind_name: Option<String>,
}

impl Violation {
    /// A one-value-change-rule violation at `variable`, caused while
    /// `constraint` was propagating.
    pub fn revisit(variable: VarId, constraint: ConstraintId, rejected: Value) -> Self {
        Violation {
            kind: ViolationKind::Revisit,
            variable: Some(variable),
            constraint: Some(constraint),
            rejected: Some(rejected),
            kind_name: None,
        }
    }

    /// An overwrite-denied violation at `variable`.
    pub fn overwrite_denied(
        variable: VarId,
        constraint: Option<ConstraintId>,
        rejected: Value,
    ) -> Self {
        Violation {
            kind: ViolationKind::OverwriteDenied,
            variable: Some(variable),
            constraint,
            rejected: Some(rejected),
            kind_name: None,
        }
    }

    /// An `is_satisfied` failure of `constraint`.
    pub fn unsatisfied(constraint: ConstraintId) -> Self {
        Violation {
            kind: ViolationKind::Unsatisfied,
            variable: None,
            constraint: Some(constraint),
            rejected: None,
            kind_name: None,
        }
    }

    /// Attaches the failing constraint's kind label for diagnostics.
    #[must_use]
    pub fn with_kind_name(mut self, name: impl Into<String>) -> Self {
        self.kind_name = Some(name.into());
        self
    }

    /// A budget-exhaustion violation: the cycle performed more propagation
    /// steps than [`crate::Network::set_step_limit`] allows.
    pub fn budget_exceeded(limit: u64) -> Self {
        Violation {
            kind: ViolationKind::BudgetExceeded { limit },
            variable: None,
            constraint: None,
            rejected: None,
            kind_name: None,
        }
    }

    /// A custom violation raised by a constraint kind.
    pub fn custom(message: impl Into<String>, constraint: Option<ConstraintId>) -> Self {
        Violation {
            kind: ViolationKind::Custom(message.into()),
            variable: None,
            constraint,
            rejected: None,
            kind_name: None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint violation: {}", self.kind)?;
        if let Some(v) = self.variable {
            write!(f, " at {v}")?;
        }
        if let Some(c) = self.constraint {
            write!(f, " by {c}")?;
            if let Some(name) = &self.kind_name {
                write!(f, " ({name})")?;
            }
        }
        if let Some(val) = &self.rejected {
            write!(f, " (rejected value {val})")?;
        }
        Ok(())
    }
}

impl Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let v = Violation::revisit(VarId(1), ConstraintId(2), Value::Int(5));
        assert_eq!(v.kind, ViolationKind::Revisit);
        assert_eq!(v.variable, Some(VarId(1)));
        assert_eq!(v.constraint, Some(ConstraintId(2)));
        assert_eq!(v.rejected, Some(Value::Int(5)));

        let u = Violation::unsatisfied(ConstraintId(3));
        assert_eq!(u.kind, ViolationKind::Unsatisfied);
        assert_eq!(u.variable, None);
    }

    #[test]
    fn display_is_informative() {
        let v = Violation::revisit(VarId(1), ConstraintId(2), Value::Int(16));
        let s = v.to_string();
        assert!(s.contains("one-value-change"));
        assert!(s.contains("v1"));
        assert!(s.contains("c2"));
        assert!(s.contains("16"));
    }

    #[test]
    fn error_trait() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(Violation::unsatisfied(ConstraintId(0)));
    }
}
