//! Stable binary encode/decode for core state — the wire substrate of the
//! persistence subsystem (`stem-persist`).
//!
//! Every scalar is little-endian; strings and lists are length-prefixed.
//! The format is *stable*: tags and field orders are append-only, so a log
//! written by one build replays on the next. Nothing here depends on
//! `serde` — the workspace is hermetic — and decoding is total: any byte
//! sequence either decodes or returns a structured [`DecodeError`] (no
//! panics), which is what lets the write-ahead log treat a torn tail as
//! data-not-yet-written instead of a crash.

use crate::domain::{FinSet, Interval};
use crate::ids::{ConstraintId, VarId};
use crate::justification::{DependencyRecord, Justification};
use crate::value::{Span, TypeTag, Value};
use crate::violation::{Violation, ViolationKind};
use std::fmt;
use stem_geom::{Point, Rect};

/// Maximum nesting depth accepted when decoding [`Value::List`]; deeper
/// input is rejected as corrupt rather than risking stack exhaustion.
pub const MAX_LIST_DEPTH: u32 = 64;

/// Maximum element/byte count accepted for any single length prefix.
/// A torn or corrupt length would otherwise drive a pre-allocation of
/// gigabytes before the checksum gets a chance to disagree.
pub const MAX_LEN: u32 = 1 << 28;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the field at byte offset `at` was complete.
    Eof {
        /// Byte offset of the truncated field.
        at: usize,
    },
    /// An enum tag byte had no meaning for the field being decoded.
    Tag {
        /// The offending tag.
        tag: u8,
        /// What was being decoded (e.g. `"Value"`).
        what: &'static str,
        /// Byte offset of the tag.
        at: usize,
    },
    /// A string field held invalid UTF-8.
    Utf8 {
        /// Byte offset of the string payload.
        at: usize,
    },
    /// A length prefix exceeded [`MAX_LEN`].
    Oversize {
        /// The decoded length.
        len: u32,
        /// Byte offset of the prefix.
        at: usize,
    },
    /// Value lists nested deeper than [`MAX_LIST_DEPTH`].
    TooDeep {
        /// Byte offset where the limit was exceeded.
        at: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Eof { at } => write!(f, "input truncated at byte {at}"),
            DecodeError::Tag { tag, what, at } => {
                write!(f, "invalid {what} tag {tag:#04x} at byte {at}")
            }
            DecodeError::Utf8 { at } => write!(f, "invalid UTF-8 at byte {at}"),
            DecodeError::Oversize { len, at } => {
                write!(f, "length prefix {len} exceeds limit at byte {at}")
            }
            DecodeError::TooDeep { at } => write!(f, "value nesting too deep at byte {at}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Writer side: plain functions appending to a byte buffer.
// ---------------------------------------------------------------------

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, x: u8) {
    buf.push(x);
}

/// Appends a bool as one byte (0/1).
pub fn put_bool(buf: &mut Vec<u8>, x: bool) {
    buf.push(u8::from(x));
}

/// Appends a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Appends an `i64` as its two's-complement little-endian image.
pub fn put_i64(buf: &mut Vec<u8>, x: i64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit image — exact round trip, NaN
/// payloads included.
pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed raw byte blob (opaque payloads — shipped
/// WAL segments, snapshots — that ride inside a larger message).
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Appends a [`VarId`].
pub fn put_var(buf: &mut Vec<u8>, v: VarId) {
    put_u32(buf, v.index() as u32);
}

/// Appends a [`ConstraintId`].
pub fn put_cid(buf: &mut Vec<u8>, c: ConstraintId) {
    put_u32(buf, c.index() as u32);
}

/// Appends a [`Value`] (tagged, recursive for lists).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Nil => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_bool(buf, *b);
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            put_i64(buf, *i);
        }
        Value::Float(x) => {
            put_u8(buf, 3);
            put_f64(buf, *x);
        }
        Value::Str(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
        Value::BitWidth(w) => {
            put_u8(buf, 5);
            put_u32(buf, *w);
        }
        Value::Span(s) => {
            put_u8(buf, 6);
            put_f64(buf, s.lo);
            put_f64(buf, s.hi);
        }
        Value::TypeRef(t) => {
            put_u8(buf, 7);
            put_u32(buf, t.hierarchy);
            put_u32(buf, t.node);
        }
        Value::Rect(r) => {
            put_u8(buf, 8);
            put_i64(buf, r.min().x);
            put_i64(buf, r.min().y);
            put_i64(buf, r.max().x);
            put_i64(buf, r.max().y);
        }
        Value::List(vs) => {
            put_u8(buf, 9);
            put_u32(buf, vs.len() as u32);
            for v in vs {
                put_value(buf, v);
            }
        }
        Value::Interval(iv) => {
            put_u8(buf, 10);
            put_i64(buf, iv.lo);
            put_i64(buf, iv.hi);
        }
        Value::FinSet(s) => {
            put_u8(buf, 11);
            put_u64(buf, s.bits);
        }
    }
}

/// Appends a [`DependencyRecord`].
pub fn put_record(buf: &mut Vec<u8>, r: &DependencyRecord) {
    match r {
        DependencyRecord::All => put_u8(buf, 0),
        DependencyRecord::Single(v) => {
            put_u8(buf, 1);
            put_var(buf, *v);
        }
        DependencyRecord::Vars(vs) => {
            put_u8(buf, 2);
            put_u32(buf, vs.len() as u32);
            for v in vs {
                put_var(buf, *v);
            }
        }
        DependencyRecord::Opaque(x) => {
            put_u8(buf, 3);
            put_u64(buf, *x);
        }
    }
}

/// Appends a [`Justification`].
pub fn put_justification(buf: &mut Vec<u8>, j: &Justification) {
    match j {
        Justification::Unset => put_u8(buf, 0),
        Justification::User => put_u8(buf, 1),
        Justification::Application => put_u8(buf, 2),
        Justification::Update => put_u8(buf, 3),
        Justification::Tentative => put_u8(buf, 4),
        Justification::DefaultValue => put_u8(buf, 5),
        Justification::Propagated { constraint, record } => {
            put_u8(buf, 6);
            put_cid(buf, *constraint);
            put_record(buf, record);
        }
    }
}

fn put_opt<T>(buf: &mut Vec<u8>, x: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match x {
        Some(x) => {
            put_bool(buf, true);
            put(buf, x);
        }
        None => put_bool(buf, false),
    }
}

/// Appends a [`Violation`] — the wire protocol ships violation traces to
/// remote clients, so the full structure (kind, site, rejected value,
/// constraint-kind name) must round-trip.
pub fn put_violation(buf: &mut Vec<u8>, v: &Violation) {
    match &v.kind {
        ViolationKind::Revisit => put_u8(buf, 0),
        ViolationKind::OverwriteDenied => put_u8(buf, 1),
        ViolationKind::Unsatisfied => put_u8(buf, 2),
        ViolationKind::Custom(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        ViolationKind::BudgetExceeded { limit } => {
            put_u8(buf, 4);
            put_u64(buf, *limit);
        }
    }
    put_opt(buf, &v.variable, |b, x| put_var(b, *x));
    put_opt(buf, &v.constraint, |b, x| put_cid(b, *x));
    put_opt(buf, &v.rejected, put_value);
    put_opt(buf, &v.kind_name, |b, x| put_str(b, x));
}

// ---------------------------------------------------------------------
// Reader side: a cursor over a byte slice.
// ---------------------------------------------------------------------

/// Decoding cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let at = self.pos;
        let end = at.checked_add(n).ok_or(DecodeError::Eof { at })?;
        if end > self.buf.len() {
            return Err(DecodeError::Eof { at });
        }
        self.pos = end;
        Ok(&self.buf[at..end])
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any nonzero byte is `true`.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit image.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix, enforcing [`MAX_LEN`].
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let at = self.pos;
        let len = self.u32()?;
        if len > MAX_LEN {
            return Err(DecodeError::Oversize { len, at });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.len()?;
        let at = self.pos;
        std::str::from_utf8(self.take(n)?).map_err(|_| DecodeError::Utf8 { at })
    }

    /// Reads a [`VarId`].
    pub fn var(&mut self) -> Result<VarId, DecodeError> {
        Ok(VarId::from_index(self.u32()? as usize))
    }

    /// Reads a [`ConstraintId`].
    pub fn cid(&mut self) -> Result<ConstraintId, DecodeError> {
        Ok(ConstraintId::from_index(self.u32()? as usize))
    }

    /// Reads a [`Value`].
    pub fn value(&mut self) -> Result<Value, DecodeError> {
        self.value_at_depth(0)
    }

    fn value_at_depth(&mut self, depth: u32) -> Result<Value, DecodeError> {
        let at = self.pos;
        if depth > MAX_LIST_DEPTH {
            return Err(DecodeError::TooDeep { at });
        }
        Ok(match self.u8()? {
            0 => Value::Nil,
            1 => Value::Bool(self.bool()?),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::str(self.str()?),
            5 => Value::BitWidth(self.u32()?),
            6 => {
                let (lo, hi) = (self.f64()?, self.f64()?);
                // A corrupt span could violate the `lo <= hi` constructor
                // invariant; build the struct directly to stay panic-free
                // and let the caller's checksum layer reject the record.
                Value::Span(Span { lo, hi })
            }
            7 => Value::TypeRef(TypeTag {
                hierarchy: self.u32()?,
                node: self.u32()?,
            }),
            8 => {
                let (x0, y0) = (self.i64()?, self.i64()?);
                let (x1, y1) = (self.i64()?, self.i64()?);
                Value::Rect(Rect::new(Point::new(x0, y0), Point::new(x1, y1)))
            }
            9 => {
                let n = self.len()?;
                let mut vs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    vs.push(self.value_at_depth(depth + 1)?);
                }
                Value::List(vs)
            }
            10 => {
                let (lo, hi) = (self.i64()?, self.i64()?);
                // A corrupt interval could violate the `lo <= hi`
                // constructor invariant; build the struct directly (as with
                // Span above) and let the checksum layer reject the record.
                Value::Interval(Interval { lo, hi })
            }
            11 => {
                // Likewise: bits == 0 (the empty domain) is corrupt but
                // must decode without panicking.
                Value::FinSet(FinSet { bits: self.u64()? })
            }
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "Value",
                    at,
                })
            }
        })
    }

    /// Reads a [`DependencyRecord`].
    pub fn record(&mut self) -> Result<DependencyRecord, DecodeError> {
        let at = self.pos;
        Ok(match self.u8()? {
            0 => DependencyRecord::All,
            1 => DependencyRecord::Single(self.var()?),
            2 => {
                let n = self.len()?;
                let mut vs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    vs.push(self.var()?);
                }
                DependencyRecord::Vars(vs)
            }
            3 => DependencyRecord::Opaque(self.u64()?),
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "DependencyRecord",
                    at,
                })
            }
        })
    }

    /// Reads a [`Justification`].
    pub fn justification(&mut self) -> Result<Justification, DecodeError> {
        let at = self.pos;
        Ok(match self.u8()? {
            0 => Justification::Unset,
            1 => Justification::User,
            2 => Justification::Application,
            3 => Justification::Update,
            4 => Justification::Tentative,
            5 => Justification::DefaultValue,
            6 => Justification::Propagated {
                constraint: self.cid()?,
                record: self.record()?,
            },
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "Justification",
                    at,
                })
            }
        })
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a [`Violation`].
    pub fn violation(&mut self) -> Result<Violation, DecodeError> {
        let at = self.pos;
        let kind = match self.u8()? {
            0 => ViolationKind::Revisit,
            1 => ViolationKind::OverwriteDenied,
            2 => ViolationKind::Unsatisfied,
            3 => ViolationKind::Custom(self.str()?.to_string()),
            4 => ViolationKind::BudgetExceeded { limit: self.u64()? },
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "ViolationKind",
                    at,
                })
            }
        };
        Ok(Violation {
            kind,
            variable: self.opt(|r| r.var())?,
            constraint: self.opt(|r| r.cid())?,
            rejected: self.opt(|r| r.value())?,
            kind_name: self.opt(|r| r.str().map(str::to_string))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        assert_eq!(r.value().unwrap(), v);
        assert!(r.is_empty(), "trailing bytes after {v}");
    }

    #[test]
    fn values_round_trip() {
        round_trip_value(Value::Nil);
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Int(-41));
        round_trip_value(Value::Float(2.5e-300));
        round_trip_value(Value::str("päth/with \"quotes\""));
        round_trip_value(Value::BitWidth(32));
        round_trip_value(Value::Span(Span::new(-1.0, 4.5)));
        round_trip_value(Value::TypeRef(TypeTag {
            hierarchy: 7,
            node: 123,
        }));
        round_trip_value(Value::Rect(Rect::new(
            Point::new(-3, 0),
            Point::new(40, 20),
        )));
        round_trip_value(Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::str("x"), Value::Nil]),
        ]));
        round_trip_value(Value::Interval(Interval::new(-9, 41)));
        round_trip_value(Value::Interval(Interval::new(i64::MIN, i64::MAX)));
        round_trip_value(Value::FinSet(FinSet::new(0b1011)));
        round_trip_value(Value::FinSet(FinSet::new(u64::MAX)));
        round_trip_value(Value::List(vec![
            Value::Interval(Interval::new(0, 3)),
            Value::FinSet(FinSet::new(1)),
        ]));
    }

    #[test]
    fn corrupt_domain_payloads_decode_without_panicking() {
        // Inverted interval bounds and an empty finite set violate the
        // constructor invariants but must decode structurally — rejection
        // belongs to the checksum layer, not the codec.
        let mut buf = vec![10u8];
        put_i64(&mut buf, 5);
        put_i64(&mut buf, -5);
        assert_eq!(
            Reader::new(&buf).value().unwrap(),
            Value::Interval(Interval { lo: 5, hi: -5 })
        );
        let mut buf = vec![11u8];
        put_u64(&mut buf, 0);
        assert_eq!(
            Reader::new(&buf).value().unwrap(),
            Value::FinSet(FinSet { bits: 0 })
        );
    }

    #[test]
    fn float_bits_survive() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Float(f64::NAN));
        let mut r = Reader::new(&buf);
        match r.value().unwrap() {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("{other:?}"),
        }
        round_trip_value(Value::Float(-0.0));
    }

    #[test]
    fn justifications_round_trip() {
        for j in [
            Justification::Unset,
            Justification::User,
            Justification::Application,
            Justification::Update,
            Justification::Tentative,
            Justification::DefaultValue,
            Justification::Propagated {
                constraint: ConstraintId::from_index(9),
                record: DependencyRecord::Single(VarId::from_index(4)),
            },
            Justification::Propagated {
                constraint: ConstraintId::from_index(0),
                record: DependencyRecord::Vars(vec![VarId::from_index(1), VarId::from_index(2)]),
            },
            Justification::Propagated {
                constraint: ConstraintId::from_index(1),
                record: DependencyRecord::Opaque(0xDEAD_BEEF),
            },
        ] {
            let mut buf = Vec::new();
            put_justification(&mut buf, &j);
            let mut r = Reader::new(&buf);
            assert_eq!(r.justification().unwrap(), j);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn violations_round_trip() {
        for v in [
            Violation::revisit(
                VarId::from_index(3),
                ConstraintId::from_index(1),
                Value::Int(9),
            ),
            Violation::overwrite_denied(
                VarId::from_index(0),
                Some(ConstraintId::from_index(2)),
                Value::Int(7),
            )
            .with_kind_name("equality"),
            Violation::unsatisfied(ConstraintId::from_index(5)),
            Violation::budget_exceeded(64),
            Violation::custom("drc spacing", None),
        ] {
            let mut buf = Vec::new();
            put_violation(&mut buf, &v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.violation().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_value(
            &mut buf,
            &Value::List(vec![Value::Int(5), Value::str("abc")]),
        );
        for cut in 0..buf.len() {
            let err = Reader::new(&buf[..cut]).value();
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut r = Reader::new(&[0xFF]);
        assert!(matches!(r.value(), Err(DecodeError::Tag { tag: 0xFF, .. })));
        let mut r = Reader::new(&[0xFF]);
        assert!(r.justification().is_err());
        let mut r = Reader::new(&[0xFF]);
        assert!(r.record().is_err());
    }

    #[test]
    fn oversize_length_is_rejected() {
        let mut buf = vec![4u8]; // Str tag
        put_u32(&mut buf, MAX_LEN + 1);
        assert!(matches!(
            Reader::new(&buf).value(),
            Err(DecodeError::Oversize { .. })
        ));
    }

    #[test]
    fn depth_limit_holds() {
        // MAX_LIST_DEPTH + 2 nested single-element lists.
        let mut buf = Vec::new();
        for _ in 0..(MAX_LIST_DEPTH + 2) {
            put_u8(&mut buf, 9);
            put_u32(&mut buf, 1);
        }
        put_u8(&mut buf, 0);
        assert!(matches!(
            Reader::new(&buf).value(),
            Err(DecodeError::TooDeep { .. })
        ));
    }
}
