use std::fmt;

/// Handle to a variable object in a [`Network`](crate::Network).
///
/// The thesis identifies a variable uniquely by its parent object plus field
/// name (§4.1.1); in the arena representation the handle is the identity and
/// the parent/name pair is carried as metadata for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The arena index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from an arena index. Ids are allocated sequentially
    /// by [`Network::add_variable`](crate::Network::add_variable), so
    /// clients driving a network remotely (e.g. through a batch protocol)
    /// can predict the handles a batch will allocate. Using an index that
    /// was never allocated panics on first access.
    pub fn from_index(index: usize) -> Self {
        VarId(u32::try_from(index).expect("variable index fits in u32"))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Handle to a constraint object in a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) u32);

impl ConstraintId {
    /// The arena index of this constraint.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from an arena index (see [`VarId::from_index`]).
    pub fn from_index(index: usize) -> Self {
        ConstraintId(u32::try_from(index).expect("constraint index fits in u32"))
    }
}

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Either node kind of a constraint network, used by dependency analysis
/// reports (thesis Fig. 4.11 collects both variables and constraints into
/// the antecedent set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// A variable node.
    Var(VarId),
    /// A constraint edge.
    Constraint(ConstraintId),
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::Var(v) => write!(f, "{v}"),
            Entity::Constraint(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(ConstraintId(7).to_string(), "c7");
        assert_eq!(Entity::Var(VarId(3)).to_string(), "v3");
        assert_eq!(Entity::Constraint(ConstraintId(7)).to_string(), "c7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VarId(1) < VarId(2));
        assert_eq!(VarId(4).index(), 4);
        assert_eq!(ConstraintId(9).index(), 9);
    }
}
