//! Determinism probe for the `ci.sh --par-differential` leg: builds a
//! seeded batch of cone-partitionable networks, replays each with an
//! 8-thread budget, and prints every variable's final value plus the
//! propagation counters. The CI leg runs this twice with the same seed
//! and requires byte-identical stdout — any scheduling-dependent value,
//! ordering, or counter difference in the parallel replay path shows up
//! as a diff.
//!
//! Usage: `cargo run --release -p stem-core --example par_replay_digest [seed]`

use stem_core::kinds::{Equality, Functional};
use stem_core::prng::SplitMix64;
use stem_core::{Justification, Network, Value, VarId};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE24);
    let mut rng = SplitMix64::new(seed);
    for round in 0..16 {
        // Every fifth round collapses to a single cone: the partitioner
        // finds nothing to split, so the plan levelizes into a wavefront
        // and the digest covers the pipelined path too.
        let cones = if round % 5 == 0 {
            1
        } else {
            rng.range_usize(2, 9)
        };
        let fan = rng.range_usize(2, 24);
        let mut net = Network::new();
        net.set_parallel_threads(8);
        net.set_parallel_min_steps(1);
        // Drop the per-task cost floor so these small cones really cross
        // the work-stealing pool instead of the inline below-cost path.
        net.set_parallel_cone_min_steps(1);
        let src = net.add_variable("src");
        let mut outs: Vec<VarId> = Vec::new();
        for i in 0..cones {
            let head = net.add_variable(format!("h{i}"));
            net.add_constraint(Equality::new(), [src, head]).unwrap();
            let mut args = Vec::with_capacity(fan + 1);
            for j in 0..fan {
                let m = net.add_variable(format!("m{i}_{j}"));
                net.add_constraint(Equality::new(), [head, m]).unwrap();
                args.push(m);
            }
            let out = net.add_variable(format!("o{i}"));
            args.push(out);
            net.add_constraint(Functional::uni_addition(), args)
                .unwrap();
            outs.push(out);
        }
        for _ in 0..rng.range_usize(3, 12) {
            let v = rng.range_i64(-1000, 1000);
            net.set(src, Value::Int(v), Justification::User).unwrap();
        }
        println!("round {round}: cones={cones} fan={fan}");
        for v in net.variables() {
            println!(
                "  {} = {:?} [{:?}]",
                net.var_name(v),
                net.value(v),
                net.justification(v)
            );
        }
        println!("  stats: {:?}", net.stats());
        // Printed field by field, deliberately omitting `cones_stolen`:
        // steal counts are schedule-dependent and would break the
        // two-run byte-identical diff this digest exists to enforce.
        let ps = net.par_stats();
        println!(
            "  par: plan_replays_parallel: {} plan_replays_wavefront: {} \
             cones_executed: {} parallel_fallbacks: {}",
            ps.plan_replays_parallel,
            ps.plan_replays_wavefront,
            ps.cones_executed,
            ps.parallel_fallbacks
        );
    }
}
