//! E19 — clock-period validation: the delay analyzer's worst-case path
//! estimate tells the designer the minimum clock period; the simulator's
//! setup checker independently confirms it. This closes the loop between
//! ch. 7's incremental delay checking and the external analysis tool of
//! ch. 6.

use stem_cells::{CellKit, DFF_SETUP_NS};
use stem_sim::{drive_bus, flatten, read_bus, Level, Simulator, TimingViolation};

/// Runs the 4-bit accumulator for three cycles at the given clock period
/// (in ps), returning whether all results were clean and the setup
/// violations the simulator recorded.
fn run_at_period(period_ps: u64) -> (bool, Vec<TimingViolation>) {
    let mut kit = CellKit::new();
    let acc = kit.accumulator("ACC4", 4);
    let flat = flatten(&kit.design, &kit.primitives, acc).unwrap();
    let mut sim = Simulator::new(flat);
    let clk = sim.port("clk").unwrap();
    sim.drive(clk, Level::L0, 0);
    sim.run_to_quiescence().unwrap();
    let t0 = sim.time() + 1;
    for i in 0..4 {
        let q = sim
            .netlist()
            .ports
            .get(&format!("acc{i}"))
            .copied()
            .unwrap();
        sim.drive(q, Level::L0, t0);
    }
    sim.run_to_quiescence().unwrap();
    let t = sim.time() + 1;
    drive_bus(&mut sim, "in", 4, 1, t);
    sim.run_to_quiescence().unwrap();

    // Free-running clock at the requested period: edges are scheduled
    // blind, not waiting for quiescence — exactly how a real clock works.
    // The first edge respects the setup window so only the *period* is
    // under test.
    let start = sim.time() + 1000;
    for cycle in 0..3u64 {
        sim.drive(clk, Level::L1, start + cycle * period_ps);
        sim.drive(clk, Level::L0, start + cycle * period_ps + period_ps / 2);
    }
    sim.run_to_quiescence().unwrap();
    let clean = read_bus(&sim, "acc", 4) == Some(3);
    let violations = sim.timing_violations().to_vec();
    (clean, violations)
}

#[test]
fn analyzer_minimum_period_is_confirmed_by_setup_checker() {
    // Minimum period = worst register-to-register path + setup:
    // clk→q of a flop, through the adder, back to a flop's d.
    let mut kit = CellKit::new();
    let _acc = kit.accumulator("ACC4", 4);
    // The registered loop's combinational part is the adder's a→s3 path
    // (feedback enters at a); measure it via the analyzer.
    let add = kit.design.class_by_name("ACC4_ADD").unwrap();
    let comb = kit
        .analyzer
        .delay(&mut kit.design, add, "a0", "s3")
        .unwrap()
        .unwrap();
    let clk_to_q = 2.0; // DFF characteristic delay in the library
    let min_period_ns = clk_to_q + comb + DFF_SETUP_NS;
    let min_period_ps = (min_period_ns * 1000.0) as u64;

    // Comfortably above the bound: clean accumulation, no violations.
    let (clean, violations) = run_at_period(min_period_ps * 2);
    assert!(clean, "slow clock must accumulate correctly");
    assert!(violations.is_empty());

    // Well below the bound the flops sample stale sums: the accumulation
    // is simply wrong (the checker only fires when data moves *inside*
    // the window — stale-but-stable inputs corrupt silently, which is
    // exactly why the analyzer's static bound matters).
    let (clean, _) = run_at_period(min_period_ps / 4);
    assert!(!clean, "fast clock must corrupt the accumulation");
}

/// Deterministic setup violation on a bare flip-flop: data toggling
/// 100 ps before the sampling edge (setup is 500 ps) yields X and a
/// recorded violation with full context.
#[test]
fn violation_record_carries_context() {
    let kit = CellKit::new();
    let dff = kit.gates.dff;
    let flat = flatten(&kit.design, &kit.primitives, dff).unwrap();
    let mut sim = Simulator::new(flat);
    let (d, clk, q) = (
        sim.port("d").unwrap(),
        sim.port("clk").unwrap(),
        sim.port("q").unwrap(),
    );
    sim.drive(clk, Level::L0, 0);
    sim.drive(d, Level::L0, 0);
    sim.run_to_quiescence().unwrap();

    // Clean sample first: data stable well beyond the window.
    let t = sim.time() + 2000;
    sim.drive(clk, Level::L1, t);
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.value(q), Level::L0);
    assert!(sim.timing_violations().is_empty());
    sim.drive(clk, Level::L0, sim.time() + 1000);
    sim.run_to_quiescence().unwrap();

    // Now toggle d 100 ps before the edge: inside the 500 ps window.
    let t = sim.time() + 2000;
    sim.drive(d, Level::L1, t - 100);
    sim.drive(clk, Level::L1, t);
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.value(q), Level::X, "metastable sample");
    let violations = sim.timing_violations();
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(v.data_age, 100);
    assert_eq!(v.required, (DFF_SETUP_NS * 1000.0) as u64);
    assert_eq!(v.at, t);
    assert!(v.element.contains("DFF"), "{v:?}");
}
