//! The structural carry-select adder: functional correctness on the
//! simulator and the *measured* speed/area trade-off that Fig. 8.1
//! characterises (CS faster but larger than RC).

use stem_cells::CellKit;
use stem_sim::{flatten, Level, Simulator};

fn drive_add(sim: &mut Simulator, width: usize, a: u64, b: u64, cin: bool) -> (u64, bool) {
    let t = sim.time() + 100;
    for i in 0..width {
        let pa = sim.port(&format!("a{i}")).unwrap();
        let pb = sim.port(&format!("b{i}")).unwrap();
        sim.drive(pa, Level::from_bool(a >> i & 1 == 1), t);
        sim.drive(pb, Level::from_bool(b >> i & 1 == 1), t);
    }
    sim.drive(sim.port("cin").unwrap(), Level::from_bool(cin), t);
    sim.run_to_quiescence().unwrap();
    let mut s = 0u64;
    for i in 0..width {
        if sim.value(sim.port(&format!("s{i}")).unwrap()) == Level::L1 {
            s |= 1 << i;
        }
    }
    (s, sim.value(sim.port("cout").unwrap()) == Level::L1)
}

#[test]
fn mux2_truth_table() {
    let mut kit = CellKit::new();
    let mux = kit.mux2("MUX");
    let flat = flatten(&kit.design, &kit.primitives, mux).unwrap();
    let mut sim = Simulator::new(flat);
    let (a, b, s, y) = (
        sim.port("a").unwrap(),
        sim.port("b").unwrap(),
        sim.port("s").unwrap(),
        sim.port("y").unwrap(),
    );
    for (va, vb, vs, expect) in [
        (0, 1, 0, 0),
        (0, 1, 1, 1),
        (1, 0, 0, 1),
        (1, 0, 1, 0),
        (1, 1, 0, 1),
        (0, 0, 1, 0),
    ] {
        let t = sim.time() + 100;
        sim.drive(a, Level::from_bool(va == 1), t);
        sim.drive(b, Level::from_bool(vb == 1), t);
        sim.drive(s, Level::from_bool(vs == 1), t);
        sim.run_to_quiescence().unwrap();
        assert_eq!(
            sim.value(y),
            Level::from_bool(expect == 1),
            "mux({va},{vb},{vs})"
        );
    }
}

#[test]
fn carry_select_adds_exhaustively_4bit() {
    let mut kit = CellKit::new();
    let csa = kit.carry_select_adder("CSA4", 4);
    let flat = flatten(&kit.design, &kit.primitives, csa).unwrap();
    let mut sim = Simulator::new(flat);
    sim.run_to_quiescence().unwrap(); // settle the tie cells
    for a in 0..16u64 {
        for b in 0..16u64 {
            for cin in [false, true] {
                let (s, cout) = drive_add(&mut sim, 4, a, b, cin);
                let expect = a + b + cin as u64;
                assert_eq!(s, expect & 0xF, "{a}+{b}+{cin}");
                assert_eq!(cout, expect > 0xF, "{a}+{b}+{cin} carry");
            }
        }
    }
}

#[test]
fn carry_select_8bit_spot_checks() {
    let mut kit = CellKit::new();
    let csa = kit.carry_select_adder("CSA8", 8);
    let flat = flatten(&kit.design, &kit.primitives, csa).unwrap();
    let mut sim = Simulator::new(flat);
    sim.run_to_quiescence().unwrap();
    for (a, b, cin) in [
        (0, 0, false),
        (255, 1, false),
        (170, 85, true),
        (200, 100, false),
    ] {
        let (s, cout) = drive_add(&mut sim, 8, a, b, cin);
        let expect = a + b + cin as u64;
        assert_eq!(s, expect & 0xFF, "{a}+{b}+{cin}");
        assert_eq!(cout, expect > 0xFF);
    }
}

/// The Fig. 8.1 premise, measured from structure: the carry-select adder
/// is faster on the carry path but larger than the ripple-carry adder of
/// the same width.
#[test]
fn fig8_1_premise_measured_from_structure() {
    let mut kit = CellKit::new();
    let rca = kit.ripple_carry_adder("RCA8", 8);
    let csa = kit.carry_select_adder("CSA8", 8);

    let d_rc = kit
        .analyzer
        .delay(&mut kit.design, rca, "cin", "cout")
        .unwrap()
        .unwrap();
    let d_cs = kit
        .analyzer
        .delay(&mut kit.design, csa, "cin", "cout")
        .unwrap()
        .unwrap();
    assert!(
        d_cs < d_rc,
        "carry-select must be faster: {d_cs} vs {d_rc} ns"
    );

    let a_rc = kit.design.class_bounding_box(rca).unwrap().area();
    let a_cs = kit.design.class_bounding_box(csa).unwrap().area();
    assert!(a_cs > a_rc, "carry-select must be larger: {a_cs} vs {a_rc}");

    // And the simulator agrees with the ordering on the sensitised path.
    let measure = |kit: &CellKit, class| {
        let flat = flatten(&kit.design, &kit.primitives, class).unwrap();
        let mut sim = Simulator::new(flat);
        sim.run_to_quiescence().unwrap();
        drive_add(&mut sim, 8, 0xFF, 0x00, false);
        let pcin = sim.port("cin").unwrap();
        let pcout = sim.port("cout").unwrap();
        sim.record(pcin);
        sim.record(pcout);
        let t = sim.time() + 1000;
        sim.drive(pcin, Level::L1, t);
        sim.run_to_quiescence().unwrap();
        sim.measure_delay(pcin, pcout).unwrap()
    };
    let m_rc = measure(&kit, rca);
    let m_cs = measure(&kit, csa);
    assert!(
        m_cs < m_rc,
        "simulated carry path: CS {m_cs} ps vs RC {m_rc} ps"
    );
}

/// The §5.1 ACCUMULATOR, structural and clocked: accumulating an input
/// stream over rising clock edges.
#[test]
fn accumulator_accumulates_over_clock_cycles() {
    use stem_sim::{drive_bus, read_bus};

    let mut kit = CellKit::new();
    let acc = kit.accumulator("ACC4", 4);
    let flat = flatten(&kit.design, &kit.primitives, acc).unwrap();
    let mut sim = Simulator::new(flat);
    let clk = sim.port("clk").unwrap();
    sim.drive(clk, Level::L0, 0);
    sim.run_to_quiescence().unwrap();

    // Preset: the flip-flops power up at X, and X + anything stays X, so
    // force the accumulator value to 0 by driving the feedback nodes once
    // (a tester's preset on the exposed acc pins).
    let t0 = sim.time() + 1;
    for i in 0..4 {
        let q = sim
            .netlist()
            .ports
            .get(&format!("acc{i}"))
            .copied()
            .unwrap();
        sim.drive(q, Level::L0, t0);
    }
    sim.run_to_quiescence().unwrap();
    assert_eq!(read_bus(&sim, "acc", 4), Some(0));

    // Accumulate 3, then 5, then 6 (wraps mod 16); each operand settles
    // through the adder before the clock edge samples it.
    let mut expect = 0u64;
    for add in [3u64, 5, 6] {
        let t = sim.time() + 100;
        drive_bus(&mut sim, "in", 4, add, t);
        sim.run_to_quiescence().unwrap();
        // Respect the flop setup window before the sampling edge.
        let t = sim.time() + 1000;
        sim.drive(clk, Level::L1, t);
        sim.run_to_quiescence().unwrap();
        expect = (expect + add) & 0xF;
        assert_eq!(read_bus(&sim, "acc", 4), Some(expect), "after adding {add}");
        let t = sim.time() + 100;
        sim.drive(clk, Level::L0, t);
        sim.run_to_quiescence().unwrap();
    }
    assert_eq!(read_bus(&sim, "acc", 4), Some(14), "3 + 5 + 6");
}

/// The accumulator's registered path has a computable worst-case delay.
#[test]
fn accumulator_delay_network() {
    let mut kit = CellKit::new();
    let acc = kit.accumulator("ACC4", 4);
    let d = kit
        .analyzer
        .delay(&mut kit.design, acc, "clk", "acc3")
        .unwrap()
        .unwrap();
    // clk→q of the last flop: the register's declared critical path.
    assert!(d > 0.0, "clk→acc3 = {d}");
}
