//! Library-level integration: structural adders verified functionally with
//! the simulator (E14 round trip) and temporally with the delay analyzer.

use stem_cells::{alu_fixture, fig8_4_family, CellKit, GATE_DELAY_NS};
use stem_core::Value;
use stem_sim::{flatten, Level, SimSession, Simulator};

/// Drives the n-bit RCA inputs with two operand values and returns the
/// decoded sum after quiescence.
fn add_on_silicon(sim: &mut Simulator, width: usize, a: u64, b: u64, cin: bool) -> (u64, bool) {
    let t = sim.time() + 10;
    for i in 0..width {
        let pa = sim.port(&format!("a{i}")).unwrap();
        let pb = sim.port(&format!("b{i}")).unwrap();
        sim.drive(pa, Level::from_bool(a >> i & 1 == 1), t);
        sim.drive(pb, Level::from_bool(b >> i & 1 == 1), t);
    }
    let pc = sim.port("cin").unwrap();
    sim.drive(pc, Level::from_bool(cin), t);
    sim.run_to_quiescence().unwrap();
    let mut s = 0u64;
    for i in 0..width {
        let ps = sim.port(&format!("s{i}")).unwrap();
        if sim.value(ps) == Level::L1 {
            s |= 1 << i;
        }
    }
    let cout = sim.value(sim.port("cout").unwrap()) == Level::L1;
    (s, cout)
}

#[test]
fn full_adder_truth_table_on_simulator() {
    let mut kit = CellKit::new();
    let fa = kit.full_adder("FA");
    let flat = flatten(&kit.design, &kit.primitives, fa).unwrap();
    let mut sim = Simulator::new(flat);
    for a in [false, true] {
        for b in [false, true] {
            for c in [false, true] {
                let t = sim.time() + 100;
                let (pa, pb, pc) = (
                    sim.port("a").unwrap(),
                    sim.port("b").unwrap(),
                    sim.port("cin").unwrap(),
                );
                sim.drive(pa, a.into(), t);
                sim.drive(pb, b.into(), t);
                sim.drive(pc, c.into(), t);
                sim.run_to_quiescence().unwrap();
                let total = a as u8 + b as u8 + c as u8;
                assert_eq!(
                    sim.value(sim.port("s").unwrap()),
                    Level::from_bool(total & 1 == 1),
                    "sum for {a}{b}{c}"
                );
                assert_eq!(
                    sim.value(sim.port("cout").unwrap()),
                    Level::from_bool(total >= 2),
                    "carry for {a}{b}{c}"
                );
            }
        }
    }
}

#[test]
fn ripple_carry_adder_adds_exhaustively_4bit() {
    let mut kit = CellKit::new();
    let rca = kit.ripple_carry_adder("RCA4", 4);
    let flat = flatten(&kit.design, &kit.primitives, rca).unwrap();
    let mut sim = Simulator::new(flat);
    for a in 0..16u64 {
        for b in 0..16u64 {
            let (s, cout) = add_on_silicon(&mut sim, 4, a, b, false);
            let expect = a + b;
            assert_eq!(s, expect & 0xF, "{a} + {b}");
            assert_eq!(cout, expect > 0xF, "{a} + {b} carry");
        }
    }
}

#[test]
fn adder_delay_scales_with_width() {
    let mut kit = CellKit::new();
    let rca2 = kit.ripple_carry_adder("RCA2", 2);
    let rca8 = kit.ripple_carry_adder("RCA8", 8);
    let d2 = kit
        .analyzer
        .delay(&mut kit.design, rca2, "cin", "cout")
        .unwrap()
        .unwrap();
    let d8 = kit
        .analyzer
        .delay(&mut kit.design, rca8, "cin", "cout")
        .unwrap()
        .unwrap();
    assert!(d8 > d2, "longer carry chain is slower: {d2} vs {d8}");
    // The carry chain grows by one (AND + OR + loading) stage per bit.
    let per_bit = (d8 - d2) / 6.0;
    assert!(
        (2.9..=3.5).contains(&per_bit),
        "per-bit carry delay {per_bit}"
    );
}

#[test]
fn analyzer_estimate_matches_simulator_critical_path_shape() {
    // The analyzer's worst-case estimate must upper-bound the simulator's
    // measured cin→cout propagation (same gates, loading included in the
    // estimate only).
    let mut kit = CellKit::new();
    let rca = kit.ripple_carry_adder("RCA4", 4);
    let est_ns = kit
        .analyzer
        .delay(&mut kit.design, rca, "cin", "cout")
        .unwrap()
        .unwrap();

    let flat = flatten(&kit.design, &kit.primitives, rca).unwrap();
    let mut sim = Simulator::new(flat);
    // Prime: a = 1111, b = 0000, cin 0 → carry chain sensitised.
    add_on_silicon(&mut sim, 4, 0xF, 0x0, false);
    let pcin = sim.port("cin").unwrap();
    let pcout = sim.port("cout").unwrap();
    sim.record(pcin);
    sim.record(pcout);
    let t = sim.time() + 100;
    sim.drive(pcin, Level::L1, t);
    sim.run_to_quiescence().unwrap();
    let measured_ps = sim.measure_delay(pcin, pcout).unwrap();
    let measured_ns = measured_ps as f64 / 1000.0;
    assert!(
        est_ns >= measured_ns,
        "estimate {est_ns} must bound measurement {measured_ns}"
    );
    assert!(
        est_ns <= measured_ns * 2.0,
        "estimate {est_ns} should be the same order as {measured_ns}"
    );
}

#[test]
fn register_samples_on_clock() {
    let mut kit = CellKit::new();
    let reg = kit.register_cell("REG4", 4);
    let flat = flatten(&kit.design, &kit.primitives, reg).unwrap();
    let mut sim = Simulator::new(flat);
    let clk = sim.port("clk").unwrap();
    sim.drive(clk, Level::L0, 0);
    for i in 0..4 {
        let p = sim.port(&format!("d{i}")).unwrap();
        sim.drive(p, Level::from_bool(i % 2 == 0), 10);
    }
    sim.run_to_quiescence().unwrap();
    // Clock after the flop setup window (500 ps in the library).
    sim.drive(clk, Level::L1, 1000);
    sim.run_to_quiescence().unwrap();
    for i in 0..4 {
        let q = sim.port(&format!("q{i}")).unwrap();
        assert_eq!(sim.value(q), Level::from_bool(i % 2 == 0), "q{i}");
    }
}

/// E14 — Fig. 6.3: session round trip with outdating on netlist edits.
#[test]
fn fig6_3_session_roundtrip_and_outdating() {
    let mut kit = CellKit::new();
    let fa = kit.full_adder("FA");
    let session = SimSession::open(&mut kit.design, &kit.primitives, fa).unwrap();
    assert!(!session.is_outdated());
    assert!(session.deck().text.contains("XXOR"));
    assert_eq!(session.deck().n_cards(), 5, "five gates in a full adder");

    // Run the "external process".
    let mut sim = session.simulator();
    let (pa, ps) = (sim.port("a").unwrap(), sim.port("s").unwrap());
    sim.drive(pa, Level::L1, 0);
    sim.drive(sim.port("b").unwrap(), Level::L0, 0);
    sim.drive(sim.port("cin").unwrap(), Level::L0, 0);
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.value(ps), Level::L1);

    // Editing the cell's netlist marks the session outdated.
    let some_net = kit.design.nets_of(fa)[0];
    let (inst, sig) = kit.design.net_connections(some_net)[0].clone();
    kit.design.disconnect(some_net, inst, &sig).unwrap();
    assert!(session.is_outdated());

    // Refresh re-extracts.
    let mut session = session;
    kit.design.connect(some_net, inst, &sig).unwrap();
    session.refresh(&mut kit.design, &kit.primitives).unwrap();
    assert!(!session.is_outdated());
    session.close(&mut kit.design);
}

#[test]
fn alu_fixture_delays_match_fig8_1() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    // With the generic adder's ideal 5D estimate: ALU = 3D + 5D = 8D.
    let d = kit
        .analyzer
        .delay(&mut kit.design, fx.alu, "in", "out")
        .unwrap()
        .unwrap();
    assert!((d - 8.0 * GATE_DELAY_NS).abs() < 1e-9, "3D + 5D = {d}");
    // The instance delay variable mirrors the generic class delay.
    let iv = kit
        .analyzer
        .instance_delay_var(fx.adder_inst, "a", "s")
        .unwrap();
    assert_eq!(kit.design.network().value(iv), &Value::Float(5.0));
}

#[test]
fn fig8_4_family_shape() {
    let mut kit = CellKit::new();
    let fam = fig8_4_family(&mut kit);
    assert!(kit.design.is_generic(fam.root));
    assert_eq!(fam.groups.len(), 2);
    for (group, leaves) in &fam.groups {
        assert!(kit.design.is_generic(*group));
        assert_eq!(leaves.len(), 2);
        for &leaf in leaves {
            assert!(!kit.design.is_generic(leaf));
            assert!(kit.design.is_descendant(leaf, fam.root));
            // Generic ideals really are best-case: leaf delay ≥ group delay,
            // leaf area ≥ group area.
            let gd = kit.analyzer.class_delay_var(*group, "a", "s").unwrap();
            let ld = kit.analyzer.class_delay_var(leaf, "a", "s").unwrap();
            let (gd, ld) = (
                kit.design.network().value(gd).as_f64().unwrap(),
                kit.design.network().value(ld).as_f64().unwrap(),
            );
            assert!(ld >= gd, "leaf {ld} ≥ ideal {gd}");
            let ga = kit.design.class_bounding_box(*group).unwrap().area();
            let la = kit.design.class_bounding_box(leaf).unwrap().area();
            assert!(la >= ga);
        }
    }
}

#[test]
fn logic_unit_is_bitwise_nand() {
    let mut kit = CellKit::new();
    let lu = kit.logic_unit("LU4", 4);
    let flat = flatten(&kit.design, &kit.primitives, lu).unwrap();
    let mut sim = Simulator::new(flat);
    for i in 0..4 {
        let pa = sim.port(&format!("a{i}")).unwrap();
        let pb = sim.port(&format!("b{i}")).unwrap();
        sim.drive(pa, Level::from_bool(i % 2 == 0), 0);
        sim.drive(pb, Level::L1, 0);
    }
    sim.run_to_quiescence().unwrap();
    for i in 0..4 {
        let py = sim.port(&format!("y{i}")).unwrap();
        assert_eq!(sim.value(py), Level::from_bool(i % 2 != 0), "y{i}");
    }
}
