//! Randomised (seeded, fully deterministic) tests over the cell library:
//! both adder architectures implement addition for random operands and
//! widths, and the delay analyzer's estimates stay monotone in width.

use stem_cells::CellKit;
use stem_core::prng::SplitMix64;
use stem_sim::{flatten, Level, Simulator};

const ITERS: usize = 16;

fn run_add(sim: &mut Simulator, width: usize, a: u64, b: u64, cin: bool) -> (u64, bool) {
    let t = sim.time() + 100;
    for i in 0..width {
        let pa = sim.port(&format!("a{i}")).unwrap();
        let pb = sim.port(&format!("b{i}")).unwrap();
        sim.drive(pa, Level::from_bool(a >> i & 1 == 1), t);
        sim.drive(pb, Level::from_bool(b >> i & 1 == 1), t);
    }
    sim.drive(sim.port("cin").unwrap(), Level::from_bool(cin), t);
    sim.run_to_quiescence().unwrap();
    let mut s = 0u64;
    for i in 0..width {
        if sim.value(sim.port(&format!("s{i}")).unwrap()) == Level::L1 {
            s |= 1 << i;
        }
    }
    (s, sim.value(sim.port("cout").unwrap()) == Level::L1)
}

/// Random operand sequences through a ripple-carry adder of random width
/// match u64 addition.
#[test]
fn rca_implements_addition() {
    let mut rng = SplitMix64::new(0xCE_01);
    for _ in 0..ITERS {
        let width = rng.range_usize(1, 9);
        let ops: Vec<(u64, u64, bool)> = (0..rng.range_usize(1, 8))
            .map(|_| (rng.next_u64(), rng.next_u64(), rng.next_bool()))
            .collect();
        let mut kit = CellKit::new();
        let rca = kit.ripple_carry_adder("RCA", width);
        let flat = flatten(&kit.design, &kit.primitives, rca).unwrap();
        let mut sim = Simulator::new(flat);
        let mask = (1u64 << width) - 1;
        for (a, b, cin) in ops {
            let (a, b) = (a & mask, b & mask);
            let (s, cout) = run_add(&mut sim, width, a, b, cin);
            let expect = a + b + cin as u64;
            assert_eq!(s, expect & mask);
            assert_eq!(cout, expect > mask);
        }
    }
}

/// The carry-select adder computes the same function as the ripple-carry
/// adder.
#[test]
fn csa_matches_rca() {
    let mut rng = SplitMix64::new(0xCE_02);
    for _ in 0..ITERS {
        let half = rng.range_usize(2, 5);
        let ops: Vec<(u64, u64, bool)> = (0..rng.range_usize(1, 6))
            .map(|_| (rng.next_u64(), rng.next_u64(), rng.next_bool()))
            .collect();
        let width = half * 2;
        let mut kit = CellKit::new();
        let csa = kit.carry_select_adder("CSA", width);
        let flat = flatten(&kit.design, &kit.primitives, csa).unwrap();
        let mut sim = Simulator::new(flat);
        sim.run_to_quiescence().unwrap();
        let mask = (1u64 << width) - 1;
        for (a, b, cin) in ops {
            let (a, b) = (a & mask, b & mask);
            let (s, cout) = run_add(&mut sim, width, a, b, cin);
            let expect = a + b + cin as u64;
            assert_eq!(s, expect & mask, "{} + {} + {}", a, b, cin);
            assert_eq!(cout, expect > mask);
        }
    }
}

/// Carry-chain delay estimates are strictly monotone in adder width.
#[test]
fn rca_delay_monotone_in_width() {
    let mut rng = SplitMix64::new(0xCE_03);
    for _ in 0..ITERS {
        let w1 = rng.range_usize(1, 6);
        let w2 = w1 + rng.range_usize(1, 4);
        let mut kit = CellKit::new();
        let a1 = kit.ripple_carry_adder("A1", w1);
        let a2 = kit.ripple_carry_adder("A2", w2);
        let d1 = kit
            .analyzer
            .delay(&mut kit.design, a1, "cin", "cout")
            .unwrap()
            .unwrap();
        let d2 = kit
            .analyzer
            .delay(&mut kit.design, a2, "cin", "cout")
            .unwrap()
            .unwrap();
        assert!(
            d2 > d1,
            "{w2}-bit ({d2}) must be slower than {w1}-bit ({d1})"
        );
    }
}
