//! The cell kit: one design environment pre-loaded with the gate library,
//! a primitive registry for the simulator, and a delay analyzer.

use crate::gates::{build_gates, Gates};
use stem_checking::DelayAnalyzer;
use stem_design::{CellClassId, Design, SignalDir};
use stem_sim::PrimitiveLibrary;

/// A design environment bundled with the standard-cell library and the
/// checking/simulation tool state the library cells were characterised
/// with.
#[derive(Debug)]
pub struct CellKit {
    /// The design environment.
    pub design: Design,
    /// Simulator models for the primitive gates.
    pub primitives: PrimitiveLibrary,
    /// Delay-checking tool state (declared delays, electrical parameters).
    pub analyzer: DelayAnalyzer,
    /// Primitive gate classes.
    pub gates: Gates,
}

impl Default for CellKit {
    fn default() -> Self {
        Self::new()
    }
}

impl CellKit {
    /// Creates a kit with the gate library built.
    pub fn new() -> Self {
        let mut design = Design::new();
        let mut primitives = PrimitiveLibrary::new();
        let mut analyzer = DelayAnalyzer::new();
        let gates = build_gates(&mut design, &mut primitives, &mut analyzer);
        CellKit {
            design,
            primitives,
            analyzer,
            gates,
        }
    }

    /// Builds an N-bit register from D flip-flops: signals `d0…`, `q0…`,
    /// `clk`, with the `clk → q(width-1)` delay declared.
    ///
    /// # Panics
    ///
    /// Panics for `width == 0`.
    pub fn register_cell(&mut self, name: &str, width: usize) -> CellClassId {
        assert!(width > 0, "zero-width register");
        let dff = self.gates.dff;
        let d = &mut self.design;
        let reg = d.define_class(name);
        for i in 0..width {
            d.add_signal(reg, format!("d{i}"), SignalDir::Input);
            d.set_signal_bit_width(reg, &format!("d{i}"), 1).unwrap();
            d.add_signal(reg, format!("q{i}"), SignalDir::Output);
            d.set_signal_bit_width(reg, &format!("q{i}"), 1).unwrap();
        }
        d.add_signal(reg, "clk", SignalDir::Input);
        d.set_signal_bit_width(reg, "clk", 1).unwrap();

        let dff_w = d.class_bounding_box(dff).expect("gate box").width();
        let nclk = d.add_net(reg, "nclk");
        d.connect_io(nclk, "clk").unwrap();
        for i in 0..width {
            let t = stem_geom::Transform::translation(stem_geom::Point::new(dff_w * i as i64, 0));
            let ff = d.instantiate(dff, reg, format!("ff{i}"), t).unwrap();
            let nd = d.add_net(reg, format!("nd{i}"));
            d.connect_io(nd, &format!("d{i}")).unwrap();
            d.connect(nd, ff, "d").unwrap();
            let nq = d.add_net(reg, format!("nq{i}"));
            d.connect(nq, ff, "q").unwrap();
            d.connect_io(nq, &format!("q{i}")).unwrap();
            d.connect(nclk, ff, "clk").unwrap();
        }
        self.analyzer
            .declare_delay(&mut self.design, reg, "clk", &format!("q{}", width - 1));
        reg
    }

    /// Builds an N-bit logic unit (bitwise NAND): signals `a0…`, `b0…`,
    /// `y0…`, with the bit-0 delay declared.
    ///
    /// # Panics
    ///
    /// Panics for `width == 0`.
    pub fn logic_unit(&mut self, name: &str, width: usize) -> CellClassId {
        assert!(width > 0, "zero-width logic unit");
        let nand = self.gates.nand2;
        let d = &mut self.design;
        let lu = d.define_class(name);
        for i in 0..width {
            d.add_signal(lu, format!("a{i}"), SignalDir::Input);
            d.add_signal(lu, format!("b{i}"), SignalDir::Input);
            d.add_signal(lu, format!("y{i}"), SignalDir::Output);
            for s in [format!("a{i}"), format!("b{i}"), format!("y{i}")] {
                d.set_signal_bit_width(lu, &s, 1).unwrap();
            }
        }
        let w = d.class_bounding_box(nand).expect("gate box").width();
        for i in 0..width {
            let t = stem_geom::Transform::translation(stem_geom::Point::new(w * i as i64, 0));
            let g = d.instantiate(nand, lu, format!("g{i}"), t).unwrap();
            let na = d.add_net(lu, format!("na{i}"));
            d.connect_io(na, &format!("a{i}")).unwrap();
            d.connect(na, g, "a").unwrap();
            let nb = d.add_net(lu, format!("nb{i}"));
            d.connect_io(nb, &format!("b{i}")).unwrap();
            d.connect(nb, g, "b").unwrap();
            let ny = d.add_net(lu, format!("ny{i}"));
            d.connect(ny, g, "y").unwrap();
            d.connect_io(ny, &format!("y{i}")).unwrap();
        }
        self.analyzer
            .declare_delay(&mut self.design, lu, "a0", "y0");
        lu
    }
}
