//! # stem-cells — standard cell library for the STEM reproduction
//!
//! The concrete cells the thesis's worked examples are built from:
//! primitive gates (with geometry, electrical parameters, declared delays
//! and simulator models), structural full adders and ripple-carry adders,
//! registers, logic units, and the characterised adder families of the
//! module-selection chapter (Figs. 8.1 and 8.4).
//!
//! Everything hangs off a [`CellKit`], which bundles a
//! [`Design`](stem_design::Design) with the tool state the cells were
//! characterised against.
//!
//! ```
//! use stem_cells::CellKit;
//!
//! let mut kit = CellKit::new();
//! let adder4 = kit.ripple_carry_adder("RCA4", 4);
//! // The carry chain's worst-case delay is computed hierarchically.
//! let t = kit
//!     .analyzer
//!     .delay(&mut kit.design, adder4, "cin", "cout")
//!     .unwrap()
//!     .unwrap();
//! assert!(t > 0.0);
//! ```

#![warn(missing_docs)]
mod adders;
mod datapath;
mod families;
mod gates;
mod kit;

pub use families::{
    adder8_family, adder8_interface, alu_fixture, characterize_adder8, fig8_4_family,
    synthetic_pruning_family, Adder8Family, AluFixture, PruningFamily, ADDER_HEIGHT,
    ADDER_UNIT_WIDTH,
};
pub use gates::{
    build_gates, gate_delay_units, Gates, DFF_SETUP_NS, GATE_DELAY_NS, GATE_IN_CAP_PF,
    GATE_OUT_RES_KOHM,
};
pub use kit::CellKit;
