//! Primitive gate cells: geometry, electrical parameters, declared delays
//! and simulator models.

use stem_checking::{DelayAnalyzer, ElectricalParams};
use stem_design::{CellClassId, Design, SignalDir};
use stem_geom::{Point, Rect};
use stem_sim::{PrimitiveKind, PrimitiveLibrary, PrimitiveSpec};

/// The unit gate delay "D" used throughout the library, in nanoseconds.
pub const GATE_DELAY_NS: f64 = 1.0;

/// Default input capacitance of a gate pin, in pF.
pub const GATE_IN_CAP_PF: f64 = 0.1;

/// Default output resistance of a gate driver, in kΩ.
pub const GATE_OUT_RES_KOHM: f64 = 1.0;

/// Setup time of the library flip-flop, in nanoseconds.
pub const DFF_SETUP_NS: f64 = 0.5;

/// Handles to the primitive gate classes.
#[derive(Debug, Clone, Copy)]
pub struct Gates {
    /// Inverter `a → y`.
    pub inv: CellClassId,
    /// Buffer `a → y`.
    pub buf: CellClassId,
    /// 2-input NAND `a, b → y`.
    pub nand2: CellClassId,
    /// 2-input NOR `a, b → y`.
    pub nor2: CellClassId,
    /// 2-input AND `a, b → y`.
    pub and2: CellClassId,
    /// 2-input OR `a, b → y`.
    pub or2: CellClassId,
    /// 2-input XOR `a, b → y`.
    pub xor2: CellClassId,
    /// D flip-flop `d, clk → q`.
    pub dff: CellClassId,
    /// Constant low driver `→ y`.
    pub tie0: CellClassId,
    /// Constant high driver `→ y`.
    pub tie1: CellClassId,
}

/// Delay (in units of [`GATE_DELAY_NS`]) of each gate kind.
pub fn gate_delay_units(kind: PrimitiveKind) -> f64 {
    match kind {
        PrimitiveKind::Inverter | PrimitiveKind::Buffer => 1.0,
        PrimitiveKind::Nand | PrimitiveKind::Nor => 1.2,
        PrimitiveKind::And | PrimitiveKind::Or => 1.5,
        PrimitiveKind::Xor => 2.0,
        PrimitiveKind::Dff => 2.0,
        PrimitiveKind::Const(_) => 0.0,
    }
}

/// Builds all primitive gates into a design, registering simulator models
/// and declared delays.
pub fn build_gates(
    d: &mut Design,
    primitives: &mut PrimitiveLibrary,
    analyzer: &mut DelayAnalyzer,
) -> Gates {
    let one_input = |d: &mut Design,
                     primitives: &mut PrimitiveLibrary,
                     analyzer: &mut DelayAnalyzer,
                     name: &str,
                     kind: PrimitiveKind|
     -> CellClassId {
        let c = d.define_class(name);
        d.add_signal(c, "a", SignalDir::Input);
        d.add_signal(c, "y", SignalDir::Output);
        d.set_signal_bit_width(c, "a", 1).unwrap();
        d.set_signal_bit_width(c, "y", 1).unwrap();
        d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 6, 10))
            .unwrap();
        d.set_signal_pin(c, "a", Point::new(0, 5));
        d.set_signal_pin(c, "y", Point::new(6, 5));
        let delay = gate_delay_units(kind) * GATE_DELAY_NS;
        analyzer.declare_delay(d, c, "a", "y");
        analyzer.set_estimate(d, c, "a", "y", delay).unwrap();
        analyzer.set_electrical(
            c,
            "a",
            ElectricalParams {
                in_capacitance: GATE_IN_CAP_PF,
                ..Default::default()
            },
        );
        analyzer.set_electrical(
            c,
            "y",
            ElectricalParams {
                out_resistance: GATE_OUT_RES_KOHM,
                ..Default::default()
            },
        );
        primitives.register(
            c,
            PrimitiveSpec {
                kind,
                inputs: vec!["a".into()],
                output: "y".into(),
                delay_ps: (delay * 1000.0) as u64,
                setup_ps: 0,
            },
        );
        c
    };

    let two_input = |d: &mut Design,
                     primitives: &mut PrimitiveLibrary,
                     analyzer: &mut DelayAnalyzer,
                     name: &str,
                     kind: PrimitiveKind|
     -> CellClassId {
        let c = d.define_class(name);
        d.add_signal(c, "a", SignalDir::Input);
        d.add_signal(c, "b", SignalDir::Input);
        d.add_signal(c, "y", SignalDir::Output);
        for s in ["a", "b", "y"] {
            d.set_signal_bit_width(c, s, 1).unwrap();
        }
        d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 8, 10))
            .unwrap();
        d.set_signal_pin(c, "a", Point::new(0, 3));
        d.set_signal_pin(c, "b", Point::new(0, 7));
        d.set_signal_pin(c, "y", Point::new(8, 5));
        let delay = gate_delay_units(kind) * GATE_DELAY_NS;
        for from in ["a", "b"] {
            analyzer.declare_delay(d, c, from, "y");
            analyzer.set_estimate(d, c, from, "y", delay).unwrap();
            analyzer.set_electrical(
                c,
                from,
                ElectricalParams {
                    in_capacitance: GATE_IN_CAP_PF,
                    ..Default::default()
                },
            );
        }
        analyzer.set_electrical(
            c,
            "y",
            ElectricalParams {
                out_resistance: GATE_OUT_RES_KOHM,
                ..Default::default()
            },
        );
        primitives.register(
            c,
            PrimitiveSpec {
                kind,
                inputs: vec!["a".into(), "b".into()],
                output: "y".into(),
                delay_ps: (delay * 1000.0) as u64,
                setup_ps: 0,
            },
        );
        c
    };

    let inv = one_input(d, primitives, analyzer, "INV", PrimitiveKind::Inverter);
    let buf = one_input(d, primitives, analyzer, "BUF", PrimitiveKind::Buffer);
    let nand2 = two_input(d, primitives, analyzer, "NAND2", PrimitiveKind::Nand);
    let nor2 = two_input(d, primitives, analyzer, "NOR2", PrimitiveKind::Nor);
    let and2 = two_input(d, primitives, analyzer, "AND2", PrimitiveKind::And);
    let or2 = two_input(d, primitives, analyzer, "OR2", PrimitiveKind::Or);
    let xor2 = two_input(d, primitives, analyzer, "XOR2", PrimitiveKind::Xor);

    // D flip-flop.
    let dff = d.define_class("DFF");
    d.add_signal(dff, "d", SignalDir::Input);
    d.add_signal(dff, "clk", SignalDir::Input);
    d.add_signal(dff, "q", SignalDir::Output);
    for s in ["d", "clk", "q"] {
        d.set_signal_bit_width(dff, s, 1).unwrap();
    }
    d.set_class_bounding_box(dff, Rect::with_extent(Point::ORIGIN, 12, 10))
        .unwrap();
    d.set_signal_pin(dff, "d", Point::new(0, 3));
    d.set_signal_pin(dff, "clk", Point::new(0, 7));
    d.set_signal_pin(dff, "q", Point::new(12, 5));
    let dff_delay = gate_delay_units(PrimitiveKind::Dff) * GATE_DELAY_NS;
    analyzer.declare_delay(d, dff, "clk", "q");
    analyzer
        .set_estimate(d, dff, "clk", "q", dff_delay)
        .unwrap();
    analyzer.set_electrical(
        dff,
        "d",
        ElectricalParams {
            in_capacitance: GATE_IN_CAP_PF,
            ..Default::default()
        },
    );
    analyzer.set_electrical(
        dff,
        "q",
        ElectricalParams {
            out_resistance: GATE_OUT_RES_KOHM,
            ..Default::default()
        },
    );
    primitives.register(
        dff,
        PrimitiveSpec {
            kind: PrimitiveKind::Dff,
            inputs: vec!["d".into(), "clk".into()],
            output: "q".into(),
            delay_ps: (dff_delay * 1000.0) as u64,
            setup_ps: (DFF_SETUP_NS * 1000.0) as u64,
        },
    );

    // Constant tie cells (no inputs).
    let tie = |d: &mut Design,
               primitives: &mut PrimitiveLibrary,
               name: &str,
               level: stem_sim::Level|
     -> CellClassId {
        let c = d.define_class(name);
        d.add_signal(c, "y", SignalDir::Output);
        d.set_signal_bit_width(c, "y", 1).unwrap();
        d.set_class_bounding_box(c, Rect::with_extent(Point::ORIGIN, 4, 10))
            .unwrap();
        d.set_signal_pin(c, "y", Point::new(4, 5));
        primitives.register(
            c,
            PrimitiveSpec {
                kind: PrimitiveKind::Const(level),
                inputs: vec![],
                output: "y".into(),
                delay_ps: 0,
                setup_ps: 0,
            },
        );
        c
    };
    let tie0 = tie(d, primitives, "TIE0", stem_sim::Level::L0);
    let tie1 = tie(d, primitives, "TIE1", stem_sim::Level::L1);

    Gates {
        inv,
        buf,
        nand2,
        nor2,
        and2,
        or2,
        xor2,
        dff,
        tie0,
        tie1,
    }
}
