//! The thesis's running composite example, built structurally: an
//! ACCUMULATOR "built by cascading an 8-bit REGISTER to an ADDER" (§5.1),
//! with the adder's output fed back into the register.

use crate::kit::CellKit;
use stem_design::{CellClassId, Design, NetId, SignalDir};
use stem_geom::{Point, Transform};

fn wire(d: &mut Design, net: NetId, pins: &[(stem_design::CellInstanceId, String)]) {
    for (inst, sig) in pins {
        d.connect(net, *inst, sig)
            .expect("datapath wiring is type-clean");
    }
}

impl CellKit {
    /// Builds a structural N-bit accumulator: on each rising clock edge
    /// the register captures `sum = acc + in`, so the register output
    /// accumulates the input stream.
    ///
    /// Signals: `in0…`, `acc0…` (the registered value), `clk`, `cout`.
    /// Declares the critical `clk → acc(width-1)` and combinational
    /// feedback delays.
    ///
    /// # Panics
    ///
    /// Panics for `width == 0`.
    pub fn accumulator(&mut self, name: &str, width: usize) -> CellClassId {
        assert!(width > 0, "zero-width accumulator");
        let adder = self.ripple_carry_adder(&format!("{name}_ADD"), width);
        let register = self.register_cell(&format!("{name}_REG"), width);

        let d = &mut self.design;
        let acc = d.define_class(name);
        for i in 0..width {
            d.add_signal(acc, format!("in{i}"), SignalDir::Input);
            d.set_signal_bit_width(acc, &format!("in{i}"), 1).unwrap();
            d.add_signal(acc, format!("acc{i}"), SignalDir::Output);
            d.set_signal_bit_width(acc, &format!("acc{i}"), 1).unwrap();
        }
        d.add_signal(acc, "clk", SignalDir::Input);
        d.set_signal_bit_width(acc, "clk", 1).unwrap();
        d.add_signal(acc, "cout", SignalDir::Output);
        d.set_signal_bit_width(acc, "cout", 1).unwrap();

        let add_w = d.class_bounding_box(adder).expect("built").width();
        let add = d
            .instantiate(adder, acc, "add", Transform::IDENTITY)
            .unwrap();
        let reg = d
            .instantiate(
                register,
                acc,
                "reg",
                Transform::translation(Point::new(add_w + 4, 0)),
            )
            .unwrap();

        // Clock and external operand.
        let nclk = d.add_net(acc, "nclk");
        d.connect_io(nclk, "clk").unwrap();
        d.connect(nclk, reg, "clk").unwrap();
        for i in 0..width {
            let nin = d.add_net(acc, format!("nin{i}"));
            d.connect_io(nin, &format!("in{i}")).unwrap();
            wire(d, nin, &[(add, format!("b{i}"))]);
        }
        // Feedback: register q → adder a, and out to the interface.
        for i in 0..width {
            let nq = d.add_net(acc, format!("nq{i}"));
            wire(d, nq, &[(reg, format!("q{i}")), (add, format!("a{i}"))]);
            d.connect_io(nq, &format!("acc{i}")).unwrap();
            // Sum back into the register.
            let ns = d.add_net(acc, format!("nsum{i}"));
            wire(d, ns, &[(add, format!("s{i}")), (reg, format!("d{i}"))]);
        }
        // Carry-in tied low; carry-out exposed.
        let t0 = d
            .instantiate(
                self.gates.tie0,
                acc,
                "t0",
                Transform::translation(Point::new(-6, 0)),
            )
            .unwrap();
        let ncin = d.add_net(acc, "ncin");
        wire(d, ncin, &[(t0, "y".to_string()), (add, "cin".to_string())]);
        let ncout = d.add_net(acc, "ncout");
        wire(d, ncout, &[(add, "cout".to_string())]);
        d.connect_io(ncout, "cout").unwrap();

        self.analyzer
            .declare_delay(&mut self.design, acc, "clk", &format!("acc{}", width - 1));
        self.analyzer
            .declare_delay(&mut self.design, acc, "in0", "cout");
        acc
    }
}
