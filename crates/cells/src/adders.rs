//! Structural adders: a gate-level full adder and N-bit ripple-carry
//! adders built from it.

use crate::kit::CellKit;
use stem_design::{CellClassId, CellInstanceId, Design, NetId, SignalDir};
use stem_geom::{Point, Transform};

fn wire(d: &mut Design, net: NetId, pins: &[(CellInstanceId, &str)]) {
    for (inst, sig) in pins {
        d.connect(net, *inst, sig)
            .expect("gate wiring is type-clean");
    }
}

impl CellKit {
    /// Builds a structural 1-bit full adder:
    /// `s = a ⊕ b ⊕ cin`, `cout = a·b + (a⊕b)·cin` — five gates.
    ///
    /// Declares the critical delays `a→s`, `a→cout`, `cin→s`, `cin→cout`
    /// so containing cells can route delay paths through it (§7.3).
    pub fn full_adder(&mut self, name: &str) -> CellClassId {
        let g = self.gates;
        let d = &mut self.design;
        let fa = d.define_class(name);
        for s in ["a", "b", "cin"] {
            d.add_signal(fa, s, SignalDir::Input);
            d.set_signal_bit_width(fa, s, 1).unwrap();
        }
        for s in ["s", "cout"] {
            d.add_signal(fa, s, SignalDir::Output);
            d.set_signal_bit_width(fa, s, 1).unwrap();
        }

        let place = |x: i64| Transform::translation(Point::new(x, 0));
        let x1 = d.instantiate(g.xor2, fa, "x1", place(0)).unwrap();
        let x2 = d.instantiate(g.xor2, fa, "x2", place(8)).unwrap();
        let g1 = d.instantiate(g.and2, fa, "g1", place(16)).unwrap();
        let g2 = d.instantiate(g.and2, fa, "g2", place(24)).unwrap();
        let o1 = d.instantiate(g.or2, fa, "o1", place(32)).unwrap();

        let na = d.add_net(fa, "na");
        d.connect_io(na, "a").unwrap();
        wire(d, na, &[(x1, "a"), (g1, "a")]);
        let nb = d.add_net(fa, "nb");
        d.connect_io(nb, "b").unwrap();
        wire(d, nb, &[(x1, "b"), (g1, "b")]);
        let ncin = d.add_net(fa, "ncin");
        d.connect_io(ncin, "cin").unwrap();
        wire(d, ncin, &[(x2, "b"), (g2, "b")]);
        let nx1 = d.add_net(fa, "nx1");
        wire(d, nx1, &[(x1, "y"), (x2, "a"), (g2, "a")]);
        let ns = d.add_net(fa, "ns");
        wire(d, ns, &[(x2, "y")]);
        d.connect_io(ns, "s").unwrap();
        let ng1 = d.add_net(fa, "ng1");
        wire(d, ng1, &[(g1, "y"), (o1, "a")]);
        let ng2 = d.add_net(fa, "ng2");
        wire(d, ng2, &[(g2, "y"), (o1, "b")]);
        let ncout = d.add_net(fa, "ncout");
        wire(d, ncout, &[(o1, "y")]);
        d.connect_io(ncout, "cout").unwrap();

        // Io-pins on the computed bounding box for compiler use.
        let bbox = d.class_bounding_box(fa).expect("gates placed");
        d.set_signal_pin(fa, "cin", Point::new(bbox.min().x, 5));
        d.set_signal_pin(fa, "cout", Point::new(bbox.max().x, 5));
        d.set_signal_pin(fa, "a", Point::new(3, bbox.max().y));
        d.set_signal_pin(fa, "b", Point::new(7, bbox.max().y));
        d.set_signal_pin(fa, "s", Point::new(20, bbox.min().y));

        for from in ["a", "b", "cin"] {
            for to in ["s", "cout"] {
                self.analyzer.declare_delay(&mut self.design, fa, from, to);
            }
        }
        fa
    }

    /// Builds a structural N-bit ripple-carry adder from full-adder
    /// slices, with clean signal names `a0…`, `b0…`, `s0…`, `cin`, `cout`.
    ///
    /// Declares the carry-chain and sum critical delays.
    ///
    /// # Panics
    ///
    /// Panics for `width == 0`.
    pub fn ripple_carry_adder(&mut self, name: &str, width: usize) -> CellClassId {
        assert!(width > 0, "zero-width adder");
        let fa = self.full_adder(&format!("{name}_FA"));
        let d = &mut self.design;
        let rca = d.define_class(name);
        for i in 0..width {
            for s in [format!("a{i}"), format!("b{i}")] {
                d.add_signal(rca, &s, SignalDir::Input);
                d.set_signal_bit_width(rca, &s, 1).unwrap();
            }
            d.add_signal(rca, format!("s{i}"), SignalDir::Output);
            d.set_signal_bit_width(rca, &format!("s{i}"), 1).unwrap();
        }
        d.add_signal(rca, "cin", SignalDir::Input);
        d.add_signal(rca, "cout", SignalDir::Output);
        d.set_signal_bit_width(rca, "cin", 1).unwrap();
        d.set_signal_bit_width(rca, "cout", 1).unwrap();

        let fa_width = d.class_bounding_box(fa).expect("built").width();
        let mut slices = Vec::new();
        for i in 0..width {
            let t = Transform::translation(Point::new(fa_width * i as i64, 0));
            slices.push(d.instantiate(fa, rca, format!("fa{i}"), t).unwrap());
        }
        // Operand and sum nets.
        for (i, &slice) in slices.iter().enumerate() {
            let na = d.add_net(rca, format!("na{i}"));
            d.connect_io(na, &format!("a{i}")).unwrap();
            d.connect(na, slice, "a").unwrap();
            let nb = d.add_net(rca, format!("nb{i}"));
            d.connect_io(nb, &format!("b{i}")).unwrap();
            d.connect(nb, slice, "b").unwrap();
            let ns = d.add_net(rca, format!("ns{i}"));
            d.connect(ns, slice, "s").unwrap();
            d.connect_io(ns, &format!("s{i}")).unwrap();
        }
        // Carry chain.
        let nc_in = d.add_net(rca, "nc0");
        d.connect_io(nc_in, "cin").unwrap();
        d.connect(nc_in, slices[0], "cin").unwrap();
        for i in 1..width {
            let nc = d.add_net(rca, format!("nc{i}"));
            d.connect(nc, slices[i - 1], "cout").unwrap();
            d.connect(nc, slices[i], "cin").unwrap();
        }
        let nc_out = d.add_net(rca, "ncout");
        d.connect(nc_out, slices[width - 1], "cout").unwrap();
        d.connect_io(nc_out, "cout").unwrap();

        self.analyzer
            .declare_delay(&mut self.design, rca, "cin", "cout");
        self.analyzer
            .declare_delay(&mut self.design, rca, "a0", "cout");
        self.analyzer
            .declare_delay(&mut self.design, rca, "cin", &format!("s{}", width - 1));
        self.analyzer
            .declare_delay(&mut self.design, rca, "a0", &format!("s{}", width - 1));
        rca
    }

    /// Builds a structural 2-to-1 multiplexer: `y = s ? b : a`, from four
    /// gates (`inv`, two `and2`, `or2`).
    pub fn mux2(&mut self, name: &str) -> CellClassId {
        let g = self.gates;
        let d = &mut self.design;
        let mux = d.define_class(name);
        for sgn in ["a", "b", "s"] {
            d.add_signal(mux, sgn, SignalDir::Input);
            d.set_signal_bit_width(mux, sgn, 1).unwrap();
        }
        d.add_signal(mux, "y", SignalDir::Output);
        d.set_signal_bit_width(mux, "y", 1).unwrap();

        let place = |x: i64| Transform::translation(Point::new(x, 0));
        let n1 = d.instantiate(g.inv, mux, "n1", place(0)).unwrap();
        let g1 = d.instantiate(g.and2, mux, "g1", place(8)).unwrap();
        let g2 = d.instantiate(g.and2, mux, "g2", place(16)).unwrap();
        let o1 = d.instantiate(g.or2, mux, "o1", place(24)).unwrap();

        let ns = d.add_net(mux, "ns");
        d.connect_io(ns, "s").unwrap();
        wire(d, ns, &[(n1, "a"), (g2, "b")]);
        let nns = d.add_net(mux, "nns");
        wire(d, nns, &[(n1, "y"), (g1, "b")]);
        let na = d.add_net(mux, "na");
        d.connect_io(na, "a").unwrap();
        wire(d, na, &[(g1, "a")]);
        let nb = d.add_net(mux, "nb");
        d.connect_io(nb, "b").unwrap();
        wire(d, nb, &[(g2, "a")]);
        let ng1 = d.add_net(mux, "ng1");
        wire(d, ng1, &[(g1, "y"), (o1, "a")]);
        let ng2 = d.add_net(mux, "ng2");
        wire(d, ng2, &[(g2, "y"), (o1, "b")]);
        let ny = d.add_net(mux, "ny");
        wire(d, ny, &[(o1, "y")]);
        d.connect_io(ny, "y").unwrap();

        for from in ["a", "b", "s"] {
            self.analyzer
                .declare_delay(&mut self.design, mux, from, "y");
        }
        mux
    }

    /// Builds a structural N-bit carry-select adder: the low half is a
    /// ripple-carry block; the high half is computed twice (carry-in 0 and
    /// carry-in 1 via tie cells) and selected by the low block's carry —
    /// the `ADD8.CS` of Fig. 8.1, built from real gates so its
    /// speed/area trade-off against the ripple-carry adder is *measured*,
    /// not asserted.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is even and ≥ 4.
    pub fn carry_select_adder(&mut self, name: &str, width: usize) -> CellClassId {
        assert!(
            width >= 4 && width.is_multiple_of(2),
            "width must be even and ≥ 4"
        );
        let half = width / 2;
        let lo_block = self.ripple_carry_adder(&format!("{name}_LO"), half);
        let hi_block = self.ripple_carry_adder(&format!("{name}_HI"), half);
        let mux = self.mux2(&format!("{name}_MUX"));
        let (tie0, tie1) = (self.gates.tie0, self.gates.tie1);

        let d = &mut self.design;
        let csa = d.define_class(name);
        for i in 0..width {
            for sgn in [format!("a{i}"), format!("b{i}")] {
                d.add_signal(csa, &sgn, SignalDir::Input);
                d.set_signal_bit_width(csa, &sgn, 1).unwrap();
            }
            d.add_signal(csa, format!("s{i}"), SignalDir::Output);
            d.set_signal_bit_width(csa, &format!("s{i}"), 1).unwrap();
        }
        d.add_signal(csa, "cin", SignalDir::Input);
        d.set_signal_bit_width(csa, "cin", 1).unwrap();
        d.add_signal(csa, "cout", SignalDir::Output);
        d.set_signal_bit_width(csa, "cout", 1).unwrap();

        let w_lo = d.class_bounding_box(lo_block).expect("built").width();
        let lo = d
            .instantiate(lo_block, csa, "lo", Transform::IDENTITY)
            .unwrap();
        let h0 = d
            .instantiate(
                hi_block,
                csa,
                "h0",
                Transform::translation(Point::new(w_lo + 4, 0)),
            )
            .unwrap();
        let h1 = d
            .instantiate(
                hi_block,
                csa,
                "h1",
                Transform::translation(Point::new(w_lo + 4, 12)),
            )
            .unwrap();
        let t0 = d
            .instantiate(tie0, csa, "t0", Transform::translation(Point::new(w_lo, 0)))
            .unwrap();
        let t1 = d
            .instantiate(
                tie1,
                csa,
                "t1",
                Transform::translation(Point::new(w_lo, 12)),
            )
            .unwrap();

        // Low-half operands and sums.
        for i in 0..half {
            let na = d.add_net(csa, format!("na{i}"));
            d.connect_io(na, &format!("a{i}")).unwrap();
            d.connect(na, lo, &format!("a{i}")).unwrap();
            let nb = d.add_net(csa, format!("nb{i}"));
            d.connect_io(nb, &format!("b{i}")).unwrap();
            d.connect(nb, lo, &format!("b{i}")).unwrap();
            let ns = d.add_net(csa, format!("ns{i}"));
            d.connect(ns, lo, &format!("s{i}")).unwrap();
            d.connect_io(ns, &format!("s{i}")).unwrap();
        }
        // High-half operands fan out to both speculative blocks.
        for i in 0..half {
            let gi = half + i;
            let na = d.add_net(csa, format!("na{gi}"));
            d.connect_io(na, &format!("a{gi}")).unwrap();
            d.connect(na, h0, &format!("a{i}")).unwrap();
            d.connect(na, h1, &format!("a{i}")).unwrap();
            let nb = d.add_net(csa, format!("nb{gi}"));
            d.connect_io(nb, &format!("b{gi}")).unwrap();
            d.connect(nb, h0, &format!("b{i}")).unwrap();
            d.connect(nb, h1, &format!("b{i}")).unwrap();
        }
        // Carry-in, speculative carries, and the select net.
        let ncin = d.add_net(csa, "ncin");
        d.connect_io(ncin, "cin").unwrap();
        d.connect(ncin, lo, "cin").unwrap();
        let n0 = d.add_net(csa, "ntie0");
        d.connect(n0, t0, "y").unwrap();
        d.connect(n0, h0, "cin").unwrap();
        let n1 = d.add_net(csa, "ntie1");
        d.connect(n1, t1, "y").unwrap();
        d.connect(n1, h1, "cin").unwrap();
        let nsel = d.add_net(csa, "nsel");
        d.connect(nsel, lo, "cout").unwrap();

        // Selection muxes for the high sums and the carry out.
        let mux_w = d.class_bounding_box(mux).expect("built").width();
        let base_x = w_lo + 4 + d.class_bounding_box(hi_block).expect("built").width() + 4;
        for i in 0..half {
            let gi = half + i;
            let m = d
                .instantiate(
                    mux,
                    csa,
                    format!("m{gi}"),
                    Transform::translation(Point::new(base_x + mux_w * i as i64, 0)),
                )
                .unwrap();
            let n_a = d.add_net(csa, format!("nh0s{i}"));
            d.connect(n_a, h0, &format!("s{i}")).unwrap();
            d.connect(n_a, m, "a").unwrap();
            let n_b = d.add_net(csa, format!("nh1s{i}"));
            d.connect(n_b, h1, &format!("s{i}")).unwrap();
            d.connect(n_b, m, "b").unwrap();
            d.connect(nsel, m, "s").unwrap();
            let n_y = d.add_net(csa, format!("nsum{gi}"));
            d.connect(n_y, m, "y").unwrap();
            d.connect_io(n_y, &format!("s{gi}")).unwrap();
        }
        let mc = d
            .instantiate(
                mux,
                csa,
                "mc",
                Transform::translation(Point::new(base_x + mux_w * half as i64, 0)),
            )
            .unwrap();
        let n_c0 = d.add_net(csa, "nh0c");
        d.connect(n_c0, h0, "cout").unwrap();
        d.connect(n_c0, mc, "a").unwrap();
        let n_c1 = d.add_net(csa, "nh1c");
        d.connect(n_c1, h1, "cout").unwrap();
        d.connect(n_c1, mc, "b").unwrap();
        d.connect(nsel, mc, "s").unwrap();
        let n_cout = d.add_net(csa, "ncout");
        d.connect(n_cout, mc, "y").unwrap();
        d.connect_io(n_cout, "cout").unwrap();

        self.analyzer
            .declare_delay(&mut self.design, csa, "cin", "cout");
        self.analyzer
            .declare_delay(&mut self.design, csa, "a0", "cout");
        self.analyzer
            .declare_delay(&mut self.design, csa, "cin", &format!("s{}", width - 1));
        self.analyzer
            .declare_delay(&mut self.design, csa, "a0", &format!("s{}", width - 1));
        csa
    }
}
