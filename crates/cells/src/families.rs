//! Characterised adder families and the ALU fixture of thesis Fig. 8.1 and
//! Fig. 8.4, for module-selection experiments.
//!
//! Fig. 8.1: a generic 8-bit adder `ADD8` with two realisations —
//! `ADD8.RC` (ripple-carry: delay 8D, area A) and `ADD8.CS` (carry-select:
//! delay 5D, area 2.2A) — used inside an `ALU` cascaded after a logic unit
//! `LU8` (delay 3D, area 2A).
//!
//! Fig. 8.4: a deeper generic hierarchy for search-tree pruning, where each
//! generic cell carries the *ideal* characteristics of its descendants
//! ("the best case estimates of what their descendents can attain").

use crate::gates::GATE_DELAY_NS;
use crate::kit::CellKit;
use stem_core::Violation;
use stem_design::{CellClassId, CellInstanceId, SignalDir};
use stem_geom::{Point, Rect, Transform};

/// The base area unit "A" of Fig. 8.1, as a rectangle width (height is
/// always [`ADDER_HEIGHT`]): area A = `ADDER_UNIT_WIDTH × ADDER_HEIGHT`.
pub const ADDER_UNIT_WIDTH: i64 = 80;

/// Common datapath height of the characterised cells.
pub const ADDER_HEIGHT: i64 = 20;

fn unit_rect(units_times_10: i64) -> Rect {
    // width = units/10 · 80, so 22 → 2.2A.
    Rect::with_extent(
        Point::ORIGIN,
        ADDER_UNIT_WIDTH * units_times_10 / 10,
        ADDER_HEIGHT,
    )
}

/// An 8-bit-adder interface class: bus signals `a`, `b`, `s` (8 bits) plus
/// `cin`, `cout`.
pub fn adder8_interface(kit: &mut CellKit, name: &str) -> CellClassId {
    let d = &mut kit.design;
    let c = d.define_class(name);
    for s in ["a", "b"] {
        d.add_signal(c, s, SignalDir::Input);
        d.set_signal_bit_width(c, s, 8).unwrap();
    }
    d.add_signal(c, "s", SignalDir::Output);
    d.set_signal_bit_width(c, "s", 8).unwrap();
    d.add_signal(c, "cin", SignalDir::Input);
    d.set_signal_bit_width(c, "cin", 1).unwrap();
    d.add_signal(c, "cout", SignalDir::Output);
    d.set_signal_bit_width(c, "cout", 1).unwrap();
    c
}

/// Characterises an adder class: bounding box (in tenths of the area unit
/// A) and `a → s` delay (in units of D).
pub fn characterize_adder8(
    kit: &mut CellKit,
    class: CellClassId,
    delay_d: f64,
    area_tenths: i64,
) -> Result<(), Violation> {
    kit.design
        .set_class_bounding_box(class, unit_rect(area_tenths))?;
    kit.analyzer.declare_delay(&mut kit.design, class, "a", "s");
    kit.analyzer
        .set_estimate(&mut kit.design, class, "a", "s", delay_d * GATE_DELAY_NS)
}

/// The Fig. 8.1 adder family.
#[derive(Debug, Clone, Copy)]
pub struct Adder8Family {
    /// Generic `ADD8` (ideal: delay 5D, area A).
    pub generic: CellClassId,
    /// `ADD8.RC`: delay 8D, area A.
    pub rc: CellClassId,
    /// `ADD8.CS`: delay 5D, area 2.2A.
    pub cs: CellClassId,
}

/// Builds the Fig. 8.1 family.
pub fn adder8_family(kit: &mut CellKit) -> Adder8Family {
    let generic = adder8_interface(kit, "ADD8");
    kit.design.set_generic(generic, true);
    // Ideal estimates: best delay of any subclass, best area of any.
    characterize_adder8(kit, generic, 5.0, 10).unwrap();

    let rc = kit.design.derive_class("ADD8.RC", generic);
    kit.analyzer.declare_delay(&mut kit.design, rc, "a", "s");
    kit.analyzer
        .set_estimate(&mut kit.design, rc, "a", "s", 8.0 * GATE_DELAY_NS)
        .unwrap();
    kit.design
        .set_class_bounding_box(rc, unit_rect(10))
        .unwrap();

    let cs = kit.design.derive_class("ADD8.CS", generic);
    kit.analyzer.declare_delay(&mut kit.design, cs, "a", "s");
    kit.analyzer
        .set_estimate(&mut kit.design, cs, "a", "s", 5.0 * GATE_DELAY_NS)
        .unwrap();
    kit.design
        .set_class_bounding_box(cs, unit_rect(22))
        .unwrap();

    Adder8Family { generic, rc, cs }
}

/// The Fig. 8.1 ALU fixture: `ALU = LU8 → ADD8(generic)`.
#[derive(Debug, Clone, Copy)]
pub struct AluFixture {
    /// The composite ALU class (delay = 3D + adder; area = 2A + adder).
    pub alu: CellClassId,
    /// The logic unit class (delay 3D, area 2A).
    pub lu8: CellClassId,
    /// The generic adder instance inside the ALU.
    pub adder_inst: CellInstanceId,
    /// The logic-unit instance inside the ALU.
    pub lu_inst: CellInstanceId,
    /// The adder family.
    pub family: Adder8Family,
}

/// Builds the ALU of Fig. 8.1 with a generic adder instance.
pub fn alu_fixture(kit: &mut CellKit) -> AluFixture {
    let family = adder8_family(kit);

    // LU8: characterised leaf, delay 3D, area 2A.
    let lu8 = {
        let d = &mut kit.design;
        let c = d.define_class("LU8");
        d.add_signal(c, "a", SignalDir::Input);
        d.set_signal_bit_width(c, "a", 8).unwrap();
        d.add_signal(c, "y", SignalDir::Output);
        d.set_signal_bit_width(c, "y", 8).unwrap();
        d.set_class_bounding_box(c, unit_rect(20)).unwrap();
        c
    };
    kit.analyzer.declare_delay(&mut kit.design, lu8, "a", "y");
    kit.analyzer
        .set_estimate(&mut kit.design, lu8, "a", "y", 3.0 * GATE_DELAY_NS)
        .unwrap();

    let d = &mut kit.design;
    let alu = d.define_class("ALU");
    d.add_signal(alu, "in", SignalDir::Input);
    d.set_signal_bit_width(alu, "in", 8).unwrap();
    d.add_signal(alu, "b", SignalDir::Input);
    d.set_signal_bit_width(alu, "b", 8).unwrap();
    d.add_signal(alu, "out", SignalDir::Output);
    d.set_signal_bit_width(alu, "out", 8).unwrap();

    let lu_inst = d.instantiate(lu8, alu, "lu", Transform::IDENTITY).unwrap();
    let adder_inst = d
        .instantiate(
            family.generic,
            alu,
            "add",
            Transform::translation(Point::new(2 * ADDER_UNIT_WIDTH, 0)),
        )
        .unwrap();

    let n_in = d.add_net(alu, "n_in");
    d.connect_io(n_in, "in").unwrap();
    d.connect(n_in, lu_inst, "a").unwrap();
    let n_mid = d.add_net(alu, "n_mid");
    d.connect(n_mid, lu_inst, "y").unwrap();
    d.connect(n_mid, adder_inst, "a").unwrap();
    let n_b = d.add_net(alu, "n_b");
    d.connect_io(n_b, "b").unwrap();
    d.connect(n_b, adder_inst, "b").unwrap();
    let n_out = d.add_net(alu, "n_out");
    d.connect(n_out, adder_inst, "s").unwrap();
    d.connect_io(n_out, "out").unwrap();

    kit.analyzer
        .declare_delay(&mut kit.design, alu, "in", "out");

    AluFixture {
        alu,
        lu8,
        adder_inst,
        lu_inst,
        family,
    }
}

/// The Fig. 8.4 pruning hierarchy: `Adder8` (generic root) with generic
/// sub-families whose leaves trade delay against area.
#[derive(Debug, Clone)]
pub struct PruningFamily {
    /// The generic root.
    pub root: CellClassId,
    /// `(generic group, leaves)` pairs.
    pub groups: Vec<(CellClassId, Vec<CellClassId>)>,
}

/// Builds the Fig. 8.4 hierarchy: `RippleCarryAdder8` (ideal 8D / 8A) with
/// leaves `RCAdd8S` (16D, 8A) and `RCAdd8F` (8D, 16A), plus a
/// `CarrySelectAdder8` group (ideal 5D / 16A) with leaves `CSAdd8S`
/// (7D, 16A) and `CSAdd8F` (5D, 24A).
pub fn fig8_4_family(kit: &mut CellKit) -> PruningFamily {
    let root = adder8_interface(kit, "Adder8");
    kit.design.set_generic(root, true);
    // Root ideals: best delay 5D, best area 8A.
    characterize_adder8(kit, root, 5.0, 80).unwrap();

    let derive = |kit: &mut CellKit, name: &str, parent, delay, area, generic| {
        let c = kit.design.derive_class(name, parent);
        kit.design.set_generic(c, generic);
        kit.analyzer.declare_delay(&mut kit.design, c, "a", "s");
        kit.analyzer
            .set_estimate(&mut kit.design, c, "a", "s", delay * GATE_DELAY_NS)
            .unwrap();
        kit.design
            .set_class_bounding_box(c, unit_rect(area))
            .unwrap();
        c
    };

    let ripple = derive(kit, "RippleCarryAdder8", root, 8.0, 80, true);
    let rc_s = derive(kit, "RCAdd8S", ripple, 16.0, 80, false);
    let rc_f = derive(kit, "RCAdd8F", ripple, 8.0, 160, false);

    let select = derive(kit, "CarrySelectAdder8", root, 5.0, 160, true);
    let cs_s = derive(kit, "CSAdd8S", select, 7.0, 160, false);
    let cs_f = derive(kit, "CSAdd8F", select, 5.0, 240, false);

    PruningFamily {
        root,
        groups: vec![(ripple, vec![rc_s, rc_f]), (select, vec![cs_s, cs_f])],
    }
}

/// A synthetic pruning hierarchy of configurable width for the selection
/// benchmarks (DESIGN.md E9): `n_groups` generic groups each holding
/// `leaves_per_group` realisations. Group `g` has ideal delay `5 + 3g` D
/// and ideal area `(8 + 4g)` A; its leaves degrade from the ideal.
pub fn synthetic_pruning_family(
    kit: &mut CellKit,
    n_groups: usize,
    leaves_per_group: usize,
) -> PruningFamily {
    let root = adder8_interface(kit, "GenericAdder8");
    kit.design.set_generic(root, true);
    characterize_adder8(kit, root, 5.0, 80).unwrap();

    let mut groups = Vec::new();
    for g in 0..n_groups {
        let ideal_delay = 5.0 + 3.0 * g as f64;
        let ideal_area = 80 + 40 * g as i64;
        let group = kit.design.derive_class(format!("Group{g}"), root);
        kit.design.set_generic(group, true);
        kit.analyzer.declare_delay(&mut kit.design, group, "a", "s");
        kit.analyzer
            .set_estimate(
                &mut kit.design,
                group,
                "a",
                "s",
                ideal_delay * GATE_DELAY_NS,
            )
            .unwrap();
        kit.design
            .set_class_bounding_box(group, unit_rect(ideal_area))
            .unwrap();
        let mut leaves = Vec::new();
        for l in 0..leaves_per_group {
            let leaf = kit.design.derive_class(format!("Group{g}Leaf{l}"), group);
            kit.analyzer.declare_delay(&mut kit.design, leaf, "a", "s");
            kit.analyzer
                .set_estimate(
                    &mut kit.design,
                    leaf,
                    "a",
                    "s",
                    (ideal_delay + l as f64) * GATE_DELAY_NS,
                )
                .unwrap();
            kit.design
                .set_class_bounding_box(leaf, unit_rect(ideal_area + 10 * l as i64))
                .unwrap();
            leaves.push(leaf);
        }
        groups.push((group, leaves));
    }
    PruningFamily { root, groups }
}
