//! # stem-modsel — module validation and selection (thesis ch. 8)
//!
//! "Module selection is the task of selecting a valid realization of a
//! generic cell instance in the context of a larger design." The algorithm
//! is generate-and-test over the subclass tree of the generic cell,
//! "augmented with selective testing and tree pruning":
//!
//! - **Selective testing** (§8.2, Fig. 8.2): the user orders a subset of
//!   property kinds (`#(#bBox #delays)` …) so the most constrained
//!   property is tested — and fails — first.
//! - **Tree pruning** (§8.2, Fig. 8.3): generic cells carry the *ideal*
//!   characteristics of their descendants; "if a generic cell fails the
//!   tests, then there is no need to test its descendents".
//!
//! Validity itself is decided by constraint propagation: candidate values
//! are tentatively assigned to the generic instance's variables
//! (`canBeSetTo:`, [`Network::can_be_set_to`]) and any violation in the
//! surrounding context rejects the candidate.
//!
//! [`Network::can_be_set_to`]: stem_core::Network::can_be_set_to

#![warn(missing_docs)]
use stem_checking::DelayAnalyzer;
use stem_core::{Justification, Value, Violation};
use stem_design::{CellClassId, CellInstanceId, Design, BOUNDING_BOX};

/// One property category of the selective test list (Fig. 8.2's
/// `#bBox` / `#signals` / `#delays`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestKind {
    /// Bounding-box fit.
    BBox,
    /// Signal bit widths and types against connected nets.
    Signals,
    /// Delay characteristics against the surrounding delay network.
    Delays,
}

/// All three tests in the default order.
pub const ALL_TESTS: [TestKind; 3] = [TestKind::BBox, TestKind::Signals, TestKind::Delays];

/// Knobs of the search (§8.2).
#[derive(Debug, Clone)]
pub struct SelectionOptions {
    /// Ordered property tests to apply (selective testing).
    pub priorities: Vec<TestKind>,
    /// Whether generic cells are tested to prune their subtrees.
    pub prune: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions {
            priorities: ALL_TESTS.to_vec(),
            prune: true,
        }
    }
}

/// Search effort counters, for the efficiency experiments (DESIGN.md E9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Candidate cells (leaf or generic) run through the test battery.
    pub candidates_tested: usize,
    /// Individual property tests executed.
    pub property_tests: usize,
    /// Generic subtrees skipped because the generic's ideals failed.
    pub pruned_subtrees: usize,
}

/// Result of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Valid (non-generic) realisations, in pre-order.
    pub valid: Vec<CellClassId>,
    /// Effort counters.
    pub stats: SelectionStats,
}

/// Selects all valid realisations for a generic cell instance
/// (`selectRealizationsFor:priorities:`, Fig. 8.3).
///
/// The instance's surrounding delay network is built first so its dual
/// delay variables exist for the delay tests.
///
/// # Errors
///
/// Returns a violation only if building the parent's delay network fails
/// outright (the context is already inconsistent).
pub fn select_realizations(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    inst: CellInstanceId,
    options: &SelectionOptions,
) -> Result<SelectionOutcome, Violation> {
    if options.priorities.contains(&TestKind::Delays) {
        // Make the instance's delay variables exist; a violating context is
        // reported to the caller rather than silently emptying the result.
        analyzer.ensure_built(d, d.instance_parent(inst))?;
    }
    let mut stats = SelectionStats::default();
    let generic = d.instance_class(inst);
    let mut valid = Vec::new();
    if !d.is_generic(generic) {
        // Fig. 8.3: a non-generic cell is its own (only) realisation.
        valid.push(generic);
        return Ok(SelectionOutcome { valid, stats });
    }
    for sub in d.subclasses(generic).to_vec() {
        valid_realizations(d, analyzer, sub, inst, options, &mut valid, &mut stats);
    }
    Ok(SelectionOutcome { valid, stats })
}

/// `validRealizationsFor:priorities:` (Fig. 8.3): pre-order traversal with
/// optional pruning at generic nodes.
fn valid_realizations(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    class: CellClassId,
    inst: CellInstanceId,
    options: &SelectionOptions,
    out: &mut Vec<CellClassId>,
    stats: &mut SelectionStats,
) {
    if d.is_generic(class) {
        if options.prune && !is_valid_realization(d, analyzer, class, inst, options, stats) {
            stats.pruned_subtrees += 1;
            return;
        }
        for sub in d.subclasses(class).to_vec() {
            valid_realizations(d, analyzer, sub, inst, options, out, stats);
        }
    } else if is_valid_realization(d, analyzer, class, inst, options, stats) {
        out.push(class);
    }
}

/// Result of a joint selection over several generic instances.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// Valid combinations; each inner vector is index-aligned with the
    /// requested instances.
    pub combinations: Vec<Vec<CellClassId>>,
    /// Candidate combinations (full or partial) that were probed.
    pub commits_tried: usize,
}

/// Joint module selection over several generic instances sharing budgets —
/// the step beyond thesis ch. 8's one-instance-at-a-time selection, in the
/// direction of its §9.3 call for "constraint satisfaction [that] attempts
/// to solve a constraint network by global considerations".
///
/// Backtracking search over the candidate realisations of each instance:
/// a candidate is *committed* by assigning its characteristic delays (and
/// default bounding box) to the instance's dual variables with
/// propagation live, so shared specifications (a total delay budget, a
/// pitch constraint) see every partial combination; dead branches are
/// pruned by the resulting violations. The network is checkpointed and
/// restored around the whole search, leaving no trace.
///
/// # Errors
///
/// Returns a violation if a surrounding delay network cannot be built.
pub fn select_joint_realizations(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    instances: &[CellInstanceId],
    options: &SelectionOptions,
) -> Result<JointOutcome, Violation> {
    // Build every surrounding delay network first.
    let parents: Vec<CellClassId> = instances.iter().map(|&i| d.instance_parent(i)).collect();
    for &p in &parents {
        analyzer.ensure_built(d, p)?;
    }
    // Candidate realisations per instance: the non-generic descendants,
    // individually pre-filtered (tree pruning applies per instance).
    let mut candidates: Vec<Vec<CellClassId>> = Vec::new();
    let mut per_instance_stats = SelectionStats::default();
    for &inst in instances {
        let single = select_realizations(d, analyzer, inst, options)?;
        per_instance_stats.candidates_tested += single.stats.candidates_tested;
        candidates.push(single.valid);
    }
    let mut out = JointOutcome {
        combinations: Vec::new(),
        commits_tried: 0,
    };
    let outer = d.network().snapshot();
    let mut chosen: Vec<CellClassId> = Vec::new();
    joint_search(
        d,
        analyzer,
        instances,
        &candidates,
        0,
        &mut chosen,
        &mut out,
    );
    d.network_mut().restore_snapshot(&outer);
    let _ = per_instance_stats;
    Ok(out)
}

fn joint_search(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    instances: &[CellInstanceId],
    candidates: &[Vec<CellClassId>],
    level: usize,
    chosen: &mut Vec<CellClassId>,
    out: &mut JointOutcome,
) {
    if level == instances.len() {
        out.combinations.push(chosen.clone());
        return;
    }
    let inst = instances[level];
    for &candidate in &candidates[level] {
        out.commits_tried += 1;
        let checkpoint = d.network().snapshot();
        if commit_candidate(d, analyzer, candidate, inst).is_ok() {
            chosen.push(candidate);
            joint_search(d, analyzer, instances, candidates, level + 1, chosen, out);
            chosen.pop();
        }
        d.network_mut().restore_snapshot(&checkpoint);
    }
}

/// Persistently (until snapshot rollback) assigns a candidate's
/// characteristics to the instance's dual variables, with propagation
/// checking the surrounding context.
fn commit_candidate(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    candidate: CellClassId,
    inst: CellInstanceId,
) -> Result<(), Violation> {
    let generic = d.instance_class(inst);
    // Delays.
    let decls: Vec<(String, String)> = analyzer
        .declared(generic)
        .iter()
        .map(|(decl, _)| (decl.from.clone(), decl.to.clone()))
        .collect();
    for (from, to) in decls {
        let Some(iv) = analyzer.instance_delay_var(inst, &from, &to) else {
            continue;
        };
        let Ok(Some(cand)) = analyzer.delay(d, candidate, &from, &to) else {
            continue;
        };
        let adjusted = cand + analyzer.load_adjust(d, inst, &to);
        d.network_mut()
            .set(iv, Value::Float(adjusted), Justification::Tentative)?;
    }
    // Bounding box: a user allotment is checked, a soft default replaced.
    if let Some(cand_box) = d.class_bounding_box(candidate) {
        let placed = d.instance_transform(inst).apply_rect(cand_box);
        let var = d
            .instance_property_var(inst, BOUNDING_BOX)
            .expect("built-in");
        let allotted_by_user = d.network().justification(var).is_user();
        if allotted_by_user {
            let allotted = d.network().value(var).as_rect().expect("user rect");
            if !allotted.can_contain_extent(placed) {
                return Err(Violation::custom("candidate exceeds allotment", None));
            }
        } else {
            d.network_mut()
                .set(var, Value::Rect(placed), Justification::Tentative)?;
        }
    }
    Ok(())
}

/// `isValidRealizationFor:priorities:` (Fig. 8.2): applies the selective
/// test list in order, failing fast.
pub fn is_valid_realization(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    candidate: CellClassId,
    inst: CellInstanceId,
    options: &SelectionOptions,
    stats: &mut SelectionStats,
) -> bool {
    stats.candidates_tested += 1;
    for &kind in &options.priorities {
        stats.property_tests += 1;
        let ok = match kind {
            TestKind::BBox => valid_bbox(d, candidate, inst),
            TestKind::Signals => valid_signals(d, candidate, inst),
            TestKind::Delays => valid_delays(d, analyzer, candidate, inst),
        };
        if !ok {
            return false;
        }
    }
    true
}

/// `validBBoxFor:` (Fig. 8.2): if the instance box is unset, the
/// candidate's default (transformed) box must be tentatively assignable;
/// otherwise the allotted instance box must be able to contain the
/// candidate's transformed box.
fn valid_bbox(d: &mut Design, candidate: CellClassId, inst: CellInstanceId) -> bool {
    let Some(cand_box) = d.class_bounding_box(candidate) else {
        return true; // nothing to check
    };
    let t = d.instance_transform(inst);
    let placed = t.apply_rect(cand_box);
    let var = d
        .instance_property_var(inst, BOUNDING_BOX)
        .expect("built-in");
    // Only a *user-specified* instance box is a hard allotment; a value
    // propagated from the generic's class box is a soft default (Fig. 7.7:
    // "if I am nil, or a propagated value … then update myself") and the
    // candidate is probed tentatively instead.
    match d.network().value(var).as_rect() {
        Some(allotted) if d.network().justification(var).is_user() => {
            allotted.can_contain_extent(placed)
        }
        _ => d.network_mut().can_be_set_to(var, Value::Rect(placed)),
    }
}

/// `validSignalsFor:` (Fig. 8.2): the candidate must offer every signal of
/// the generic interface, with bit widths and types acceptable to the
/// connected nets.
fn valid_signals(d: &mut Design, candidate: CellClassId, inst: CellInstanceId) -> bool {
    let generic = d.instance_class(inst);
    for sig in d.signals(generic).to_vec() {
        let Some(cand_sig) = d.signal_def(candidate, &sig.name).cloned() else {
            return false; // interface mismatch
        };
        // Bit width: tentatively push the candidate's width into the
        // instance's dual variable; net equalities object on mismatch.
        let cand_width = d.network().value(cand_sig.class_bit_width).clone();
        if !cand_width.is_nil() {
            let iv = d
                .instance_bit_width_var(inst, &sig.name)
                .expect("dual exists");
            if !d.network_mut().can_be_set_to(iv, cand_width) {
                return false;
            }
        }
        // Types: push candidate types at the connected net.
        if let Some(net) = d.connection(inst, &sig.name) {
            let (_, net_dt, net_et) = d.net_type_vars(net);
            let cand_dt = d.network().value(cand_sig.class_data_type).clone();
            if !cand_dt.is_nil() && !d.network_mut().can_be_set_to(net_dt, cand_dt) {
                return false;
            }
            let cand_et = d.network().value(cand_sig.class_electrical_type).clone();
            if !cand_et.is_nil() && !d.network_mut().can_be_set_to(net_et, cand_et) {
                return false;
            }
        }
    }
    true
}

/// `validDelaysFor:` (Fig. 8.2): for each dual delay variable of the
/// instance, the candidate's class delay — adjusted for the instance's
/// output loading — must be tentatively assignable without violating the
/// surrounding delay network's specifications.
fn valid_delays(
    d: &mut Design,
    analyzer: &mut DelayAnalyzer,
    candidate: CellClassId,
    inst: CellInstanceId,
) -> bool {
    let generic = d.instance_class(inst);
    let decls: Vec<(String, String)> = analyzer
        .declared(generic)
        .iter()
        .map(|(decl, _)| (decl.from.clone(), decl.to.clone()))
        .collect();
    for (from, to) in decls {
        let Some(inst_var) = analyzer.instance_delay_var(inst, &from, &to) else {
            continue; // no surrounding network routes through this delay
        };
        // Candidate's characteristic delay, computed on demand.
        let cand = match analyzer.delay(d, candidate, &from, &to) {
            Ok(Some(v)) => v,
            Ok(None) => continue, // uncharacterised: nothing to test
            Err(_) => return false,
        };
        let adjusted = cand + analyzer.load_adjust(d, inst, &to);
        if !d
            .network_mut()
            .can_be_set_to(inst_var, Value::Float(adjusted))
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = SelectionOptions::default();
        assert!(o.prune);
        assert_eq!(o.priorities, ALL_TESTS);
    }
}
