//! Joint module selection: two generic adders sharing one delay budget —
//! the global-considerations extension the thesis calls for in §9.3,
//! built on the ch. 8 machinery.

use stem_cells::{adder8_family, Adder8Family, CellKit, ADDER_UNIT_WIDTH};
use stem_design::{CellClassId, CellInstanceId, SignalDir};
use stem_geom::{Point, Rect, Transform};
use stem_modsel::{select_joint_realizations, SelectionOptions};

struct Pipeline {
    kit: CellKit,
    top: CellClassId,
    add1: CellInstanceId,
    add2: CellInstanceId,
    family: Adder8Family,
}

/// Two generic adders in series: total delay = d(add1) + d(add2).
fn pipeline(spec_d: f64) -> Pipeline {
    let mut kit = CellKit::new();
    let family = adder8_family(&mut kit);
    let d = &mut kit.design;
    let top = d.define_class("PIPE");
    d.add_signal(top, "in", SignalDir::Input);
    d.set_signal_bit_width(top, "in", 8).unwrap();
    d.add_signal(top, "out", SignalDir::Output);
    d.set_signal_bit_width(top, "out", 8).unwrap();
    let add1 = d
        .instantiate(family.generic, top, "add1", Transform::IDENTITY)
        .unwrap();
    let add2 = d
        .instantiate(
            family.generic,
            top,
            "add2",
            Transform::translation(Point::new(3 * ADDER_UNIT_WIDTH, 0)),
        )
        .unwrap();
    let n_in = d.add_net(top, "n_in");
    d.connect_io(n_in, "in").unwrap();
    d.connect(n_in, add1, "a").unwrap();
    let n_mid = d.add_net(top, "n_mid");
    d.connect(n_mid, add1, "s").unwrap();
    d.connect(n_mid, add2, "a").unwrap();
    let n_out = d.add_net(top, "n_out");
    d.connect(n_out, add2, "s").unwrap();
    d.connect_io(n_out, "out").unwrap();
    kit.analyzer
        .declare_delay(&mut kit.design, top, "in", "out");
    kit.analyzer
        .constrain_max(&mut kit.design, top, "in", "out", spec_d)
        .unwrap();
    Pipeline {
        kit,
        top,
        add1,
        add2,
        family,
    }
}

fn run(p: &mut Pipeline) -> Vec<Vec<CellClassId>> {
    select_joint_realizations(
        &mut p.kit.design,
        &mut p.kit.analyzer,
        &[p.add1, p.add2],
        &SelectionOptions::default(),
    )
    .unwrap()
    .combinations
}

#[test]
fn generous_budget_admits_all_combinations() {
    // RC=8D, CS=5D; spec 18D admits even RC+RC (16).
    let mut p = pipeline(18.0);
    let combos = run(&mut p);
    assert_eq!(combos.len(), 4);
}

#[test]
fn shared_budget_excludes_the_all_slow_combination() {
    // Spec 14D: RC+RC (16) fails; RC+CS (13), CS+RC (13), CS+CS (10) pass.
    let mut p = pipeline(14.0);
    let combos = run(&mut p);
    let (rc, cs) = (p.family.rc, p.family.cs);
    assert_eq!(combos.len(), 3);
    assert!(combos.contains(&vec![rc, cs]));
    assert!(combos.contains(&vec![cs, rc]));
    assert!(combos.contains(&vec![cs, cs]));
    assert!(!combos.contains(&vec![rc, rc]));
}

#[test]
fn tight_budget_forces_both_fast() {
    let mut p = pipeline(10.0);
    let combos = run(&mut p);
    assert_eq!(combos, vec![vec![p.family.cs, p.family.cs]]);
}

/// This is the case single-instance selection cannot express: each adder
/// *individually* qualifies under the budget (assuming the other keeps its
/// ideal), but the shared budget rejects slow+slow pairs.
#[test]
fn joint_is_stronger_than_independent_selection() {
    let mut p = pipeline(14.0);
    // Independent selection accepts RC for each slot (8 + ideal 5 = 13 ≤ 14)…
    let solo1 = stem_modsel::select_realizations(
        &mut p.kit.design,
        &mut p.kit.analyzer,
        p.add1,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert!(solo1.valid.contains(&p.family.rc));
    // …but jointly RC+RC is rejected.
    let combos = run(&mut p);
    assert!(!combos.contains(&vec![p.family.rc, p.family.rc]));
}

#[test]
fn per_instance_area_allotments_compose() {
    let mut p = pipeline(18.0);
    // Allot add1 only 1.2 A: it must be the ripple-carry realisation.
    let t = p.kit.design.instance_transform(p.add1);
    let budget = Rect::with_extent(t.apply(Point::ORIGIN), ADDER_UNIT_WIDTH * 12 / 10, 20);
    p.kit
        .design
        .set_instance_bounding_box(p.add1, budget)
        .unwrap();
    let combos = run(&mut p);
    let (rc, cs) = (p.family.rc, p.family.cs);
    assert_eq!(combos.len(), 2);
    assert!(combos.contains(&vec![rc, rc]));
    assert!(combos.contains(&vec![rc, cs]));
}

#[test]
fn search_leaves_no_trace() {
    let mut p = pipeline(14.0);
    let before = p
        .kit
        .analyzer
        .delay(&mut p.kit.design, p.top, "in", "out")
        .unwrap();
    let _ = run(&mut p);
    let after = p
        .kit
        .analyzer
        .delay(&mut p.kit.design, p.top, "in", "out")
        .unwrap();
    assert_eq!(before, after);
    assert!(p.kit.design.network().check_all().is_empty());
}

#[test]
fn infeasible_context_is_reported_as_a_violation() {
    // A 9D spec is below even the generics' ideal total (5 + 5): building
    // the surrounding delay network itself violates, which is surfaced to
    // the caller rather than silently returning nothing.
    let mut p = pipeline(9.0);
    let err = select_joint_realizations(
        &mut p.kit.design,
        &mut p.kit.analyzer,
        &[p.add1, p.add2],
        &SelectionOptions::default(),
    );
    assert!(err.is_err());
}

#[test]
fn cross_exclusive_budgets_yield_no_combinations() {
    // A 12D spec admits only carry-select (RC would give ≥ 13 even with
    // the other slot at its ideal), while 1.2A allotments admit only
    // ripple-carry: jointly unrealisable.
    let mut p = pipeline(12.0);
    for inst in [p.add1, p.add2] {
        let t = p.kit.design.instance_transform(inst);
        let budget = Rect::with_extent(t.apply(Point::ORIGIN), ADDER_UNIT_WIDTH * 12 / 10, 20);
        p.kit
            .design
            .set_instance_bounding_box(inst, budget)
            .unwrap();
    }
    let out = select_joint_realizations(
        &mut p.kit.design,
        &mut p.kit.analyzer,
        &[p.add1, p.add2],
        &SelectionOptions::default(),
    )
    .unwrap();
    assert!(out.combinations.is_empty());
}
