//! E8/E9 — thesis Fig. 8.1 (ALU module selection under tight area vs.
//! tight delay specs) and Fig. 8.4 (search-tree pruning via generic-cell
//! ideals).

use stem_cells::{alu_fixture, fig8_4_family, CellKit, ADDER_UNIT_WIDTH};
use stem_design::{CellClassId, CellInstanceId, SignalDir};
use stem_geom::{Point, Rect, Transform};
use stem_modsel::{select_realizations, SelectionOptions, TestKind};

/// Allot the adder instance an area budget of `tenths`/10 × A at its
/// placement.
fn allot_adder_area(kit: &mut CellKit, inst: CellInstanceId, tenths: i64) {
    let t = kit.design.instance_transform(inst);
    let origin = t.apply(Point::ORIGIN);
    let budget = Rect::with_extent(origin, ADDER_UNIT_WIDTH * tenths / 10, 20);
    kit.design.set_instance_bounding_box(inst, budget).unwrap();
}

/// Fig. 8.1(b): tight area (adder budget 1.2A), relaxed delay (≤ 11D) →
/// the ripple-carry realisation is selected.
#[test]
fn fig8_1b_tight_area_selects_rc() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", 11.0)
        .unwrap();
    allot_adder_area(&mut kit, fx.adder_inst, 12);

    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fx.family.rc], "only ADD8.RC fits the area");
}

/// Fig. 8.1(c): tight delay (≤ 8D), relaxed area (adder budget 2.2A) →
/// the carry-select realisation is selected.
#[test]
fn fig8_1c_tight_delay_selects_cs() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", 8.0)
        .unwrap();
    allot_adder_area(&mut kit, fx.adder_inst, 22);

    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fx.family.cs], "only ADD8.CS meets 8D");
}

/// Relaxed specs admit both realisations.
#[test]
fn relaxed_specs_admit_both() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", 11.0)
        .unwrap();
    allot_adder_area(&mut kit, fx.adder_inst, 22);

    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fx.family.rc, fx.family.cs]);
}

/// Impossible specs reject everything; the probe leaves no trace.
#[test]
fn impossible_specs_reject_all_and_restore() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", 8.0)
        .unwrap();
    allot_adder_area(&mut kit, fx.adder_inst, 12); // 1.2A and 8D: nobody fits

    let before = kit
        .analyzer
        .delay(&mut kit.design, fx.alu, "in", "out")
        .unwrap();
    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert!(out.valid.is_empty());
    let after = kit
        .analyzer
        .delay(&mut kit.design, fx.alu, "in", "out")
        .unwrap();
    assert_eq!(before, after, "tentative probes restored everything");
}

/// A non-generic instance is its own realisation (Fig. 8.3's base case).
#[test]
fn non_generic_instance_returns_itself() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.lu_inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert_eq!(out.valid, vec![fx.lu8]);
}

/// Selective testing (§8.2): restricting the priorities to `#(#bBox)`
/// skips the delay tests entirely, so the slow adder passes a tight-delay
/// context.
#[test]
fn selective_testing_restricts_properties() {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", 8.0)
        .unwrap();
    allot_adder_area(&mut kit, fx.adder_inst, 22);

    let opts = SelectionOptions {
        priorities: vec![TestKind::BBox],
        prune: true,
    };
    let out =
        select_realizations(&mut kit.design, &mut kit.analyzer, fx.adder_inst, &opts).unwrap();
    assert_eq!(out.valid, vec![fx.family.rc, fx.family.cs]);
}

/// Builds a bare context holding one instance of the Fig. 8.4 generic
/// root, with a delay path through it and a spec.
fn fig8_4_context(
    kit: &mut CellKit,
    spec_d: f64,
) -> (CellClassId, CellInstanceId, stem_cells::PruningFamily) {
    let fam = fig8_4_family(kit);
    let d = &mut kit.design;
    let top = d.define_class("TOP");
    d.add_signal(top, "a", SignalDir::Input);
    d.set_signal_bit_width(top, "a", 8).unwrap();
    d.add_signal(top, "s", SignalDir::Output);
    d.set_signal_bit_width(top, "s", 8).unwrap();
    let inst = d
        .instantiate(fam.root, top, "add", Transform::IDENTITY)
        .unwrap();
    let na = d.add_net(top, "na");
    d.connect_io(na, "a").unwrap();
    d.connect(na, inst, "a").unwrap();
    let ns = d.add_net(top, "ns");
    d.connect(ns, inst, "s").unwrap();
    d.connect_io(ns, "s").unwrap();
    kit.analyzer.declare_delay(&mut kit.design, top, "a", "s");
    kit.analyzer
        .constrain_max(&mut kit.design, top, "a", "s", spec_d)
        .unwrap();
    (top, inst, fam)
}

/// Fig. 8.4: with a 7D spec the whole ripple-carry subtree (ideal 8D) is
/// pruned without testing its leaves.
#[test]
fn fig8_4_pruning_skips_failing_subtree() {
    let mut kit = CellKit::new();
    let (_top, inst, fam) = fig8_4_context(&mut kit, 7.0);

    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    let (_, cs_leaves) = &fam.groups[1];
    assert_eq!(out.valid, *cs_leaves, "only the carry-select leaves pass");
    assert_eq!(out.stats.pruned_subtrees, 1, "ripple subtree pruned");
    // Tested: 2 generics + 2 carry-select leaves.
    assert_eq!(out.stats.candidates_tested, 4);
}

/// Without pruning, every leaf is tested (no generic probes, more leaf
/// tests).
#[test]
fn pruning_reduces_candidates_tested() {
    let mut kit = CellKit::new();
    let (_top, inst, fam) = fig8_4_context(&mut kit, 7.0);

    let no_prune = SelectionOptions {
        prune: false,
        ..Default::default()
    };
    let out = select_realizations(&mut kit.design, &mut kit.analyzer, inst, &no_prune).unwrap();
    let (_, cs_leaves) = &fam.groups[1];
    assert_eq!(out.valid, *cs_leaves, "same result without pruning");
    assert_eq!(out.stats.pruned_subtrees, 0);
    assert_eq!(out.stats.candidates_tested, 4, "all four leaves tested");
    // Same candidate count here (small tree), but the pruned run never
    // touched the expensive failing leaves; with wider trees the gap grows
    // (benchmarked in E9).
}

/// An 8D spec admits the ripple subtree again.
#[test]
fn fig8_4_relaxed_spec_passes_ripple_fast_leaf() {
    let mut kit = CellKit::new();
    let (_top, inst, fam) = fig8_4_context(&mut kit, 8.0);
    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    let (_, rc_leaves) = &fam.groups[0];
    let (_, cs_leaves) = &fam.groups[1];
    // RCAdd8F (8D) plus both carry-select leaves.
    assert_eq!(out.valid, vec![rc_leaves[1], cs_leaves[0], cs_leaves[1]]);
    assert_eq!(out.stats.pruned_subtrees, 0);
}

/// Interface mismatches fail the signals test.
#[test]
fn signal_interface_mismatch_rejected() {
    let mut kit = CellKit::new();
    let (_top, inst, fam) = fig8_4_context(&mut kit, 20.0);
    // A bogus subclass missing the interface (fresh class, not derived).
    let bogus = kit.design.define_class("Bogus8");
    kit.design.set_generic(bogus, false);
    // Manually graft it under the root via derive-free path: derive a real
    // one and compare against a non-derived sibling through priorities.
    let mut stats = stem_modsel::SelectionStats::default();
    let opts = SelectionOptions::default();
    assert!(!stem_modsel::is_valid_realization(
        &mut kit.design,
        &mut kit.analyzer,
        bogus,
        inst,
        &opts,
        &mut stats,
    ));
    let _ = fam;
}

/// Bit-width conflicts fail the signals test: a 16-bit variant of the
/// adder cannot realise an instance wired to 8-bit nets.
#[test]
fn wrong_bit_width_candidate_rejected() {
    let mut kit = CellKit::new();
    let (_top, inst, fam) = fig8_4_context(&mut kit, 20.0);
    let wide = kit.design.derive_class("Adder16", fam.root);
    // Overwrite the interface widths.
    let d = &mut kit.design;
    let bw = d.signal_def(wide, "a").unwrap().class_bit_width;
    d.network_mut().reset(bw);
    d.set_signal_bit_width(wide, "a", 16).unwrap();
    kit.analyzer.declare_delay(&mut kit.design, wide, "a", "s");
    kit.analyzer
        .set_estimate(&mut kit.design, wide, "a", "s", 5.0)
        .unwrap();
    kit.design
        .set_class_bounding_box(wide, Rect::with_extent(Point::ORIGIN, 80, 20))
        .unwrap();

    let mut stats = stem_modsel::SelectionStats::default();
    assert!(!stem_modsel::is_valid_realization(
        &mut kit.design,
        &mut kit.analyzer,
        wide,
        inst,
        &SelectionOptions::default(),
        &mut stats,
    ));
}

/// Sanity: selection works the same through the `Design`-level entry when
/// the generic has no subclasses at all.
#[test]
fn generic_without_subclasses_yields_nothing() {
    let mut kit = CellKit::new();
    let lonely = stem_cells::adder8_interface(&mut kit, "Lonely8");
    kit.design.set_generic(lonely, true);
    let top = kit.design.define_class("T");
    let inst = kit
        .design
        .instantiate(lonely, top, "x", Transform::IDENTITY)
        .unwrap();
    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        inst,
        &SelectionOptions::default(),
    )
    .unwrap();
    assert!(out.valid.is_empty());
    assert_eq!(out.stats.candidates_tested, 0);
}
