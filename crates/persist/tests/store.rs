//! Store lifecycle: append/reopen, segment rotation, torn-tail
//! truncation, checkpoint compaction, and snapshot fallback.

use std::fs;
use std::path::PathBuf;

use stem_core::{Value, VarId};
use stem_persist::{
    PersistCommand, PersistSource, SessionState, Snapshot, Store, StoreOptions, SyncPolicy,
    WalRecord,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-persist-store-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn batch(session: u64, seq: u64, n: usize) -> WalRecord {
    WalRecord::Batch {
        session,
        seq,
        commands: (0..n)
            .map(|i| PersistCommand::Set {
                var: VarId::from_index(i),
                value: Value::Int(seq as i64 * 100 + i as i64),
                source: PersistSource::User,
            })
            .collect(),
    }
}

#[test]
fn append_then_reopen_replays_in_order() {
    let dir = temp_dir("roundtrip");
    let records: Vec<_> = (1..=5).map(|q| batch(0, q, 2)).collect();
    {
        let (mut store, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
        for r in &records {
            store.append(r).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.appends, 5);
        assert!(s.bytes > 0);
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail, records);
    assert!(!rec.truncated);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rotation_spreads_segments_and_reopen_merges() {
    let dir = temp_dir("rotate");
    let records: Vec<_> = (1..=40).map(|q| batch(q % 3, q, 3)).collect();
    {
        let opts = StoreOptions {
            segment_bytes: 256,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        assert!(store.stats().segments > 3, "tiny threshold must rotate");
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail, records);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_truncates_to_committed_prefix() {
    let dir = temp_dir("torn");
    let records: Vec<_> = (1..=4).map(|q| batch(7, q, 2)).collect();
    let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
    for r in &records {
        store.append(r).unwrap();
    }
    drop(store);

    // Tear bytes off the single segment's tail, one at a time; each
    // reopen must yield some prefix of the records, never garbage.
    let seg = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .unwrap();
    let full = fs::read(&seg).unwrap();
    // Byte offsets at which a cut is a clean record boundary, not a tear.
    let mut boundaries = vec![8usize];
    for r in &records {
        boundaries.push(boundaries.last().unwrap() + r.encode_frame().len());
    }
    let mut prev_len = usize::MAX;
    for cut in (8..full.len()).rev() {
        fs::write(&seg, &full[..cut]).unwrap();
        let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(
            rec.tail.len() <= prev_len,
            "recovered more after cutting more"
        );
        prev_len = rec.tail.len();
        assert_eq!(rec.tail[..], records[..rec.tail.len()], "prefix property");
        assert_eq!(
            rec.truncated,
            !boundaries.contains(&cut),
            "tear flag wrong at cut {cut}"
        );
        // Each reopen creates a fresh active segment; drop it so the next
        // iteration still finds exactly one interesting segment.
        for extra in fs::read_dir(&dir).unwrap() {
            let p = extra.unwrap().path();
            if p != seg && p.extension().is_some_and(|e| e == "log") {
                fs::remove_file(p).unwrap();
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_covered_segments() {
    let dir = temp_dir("compact");
    let opts = StoreOptions {
        segment_bytes: 128,
        sync: SyncPolicy::Deferred,
        ..StoreOptions::default()
    };
    let (mut store, _) = Store::open(&dir, opts).unwrap();
    for q in 1..=20 {
        store.append(&batch(1, q, 2)).unwrap();
    }
    let covered = store.seal_for_checkpoint().unwrap();
    assert!(!covered.is_empty());

    // Appends racing the checkpoint land in the new active segment.
    store.append(&batch(1, 21, 2)).unwrap();

    let snap = Snapshot {
        next_session: 2,
        closed: vec![],
        sessions: vec![(1, 20, SessionState::default())],
    };
    store.write_snapshot(&snap, &covered).unwrap();
    let s = store.stats();
    assert_eq!(s.snapshots_written, 1);
    assert_eq!(s.bytes_since_checkpoint, 0);
    drop(store);

    let logs = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "log")
        })
        .count();
    assert!(logs <= 2, "covered segments deleted, found {logs}");

    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.snapshot, Some(snap));
    assert_eq!(rec.tail, vec![batch(1, 21, 2)], "only the uncovered record");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_prior() {
    let dir = temp_dir("snapfall");
    let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
    let older = Snapshot {
        next_session: 1,
        ..Snapshot::default()
    };
    let newer = Snapshot {
        next_session: 9,
        ..Snapshot::default()
    };
    store.write_snapshot(&older, &[]).unwrap();
    store.write_snapshot(&newer, &[]).unwrap();
    drop(store);

    // write_snapshot retires older snapshot files; re-create the older one
    // by hand, then corrupt the newest.
    fs::write(dir.join("snap-00000000.snap"), older.encode_file()).unwrap();
    let newest = dir.join("snap-00000001.snap");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&newest, bytes).unwrap();

    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.snapshot, Some(older), "fell back past the corrupt file");
    assert!(rec.truncated, "corruption was noticed");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn close_records_round_trip() {
    let dir = temp_dir("close");
    {
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&batch(3, 1, 1)).unwrap();
        store
            .append(&WalRecord::Close { session: 3, seq: 2 })
            .unwrap();
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail.len(), 2);
    assert_eq!(rec.tail[1], WalRecord::Close { session: 3, seq: 2 });
    let _ = fs::remove_dir_all(&dir);
}
