//! Store lifecycle: append/reopen, segment rotation, torn-tail
//! truncation, checkpoint compaction, and snapshot fallback.

use std::fs;
use std::io;
use std::path::PathBuf;

use stem_core::{Value, VarId};
use stem_persist::{
    failing_factory, ByteBudget, PersistCommand, PersistSource, SessionState, Snapshot, Store,
    StoreOptions, SyncPolicy, WalRecord,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-persist-store-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn batch(session: u64, seq: u64, n: usize) -> WalRecord {
    WalRecord::Batch {
        session,
        seq,
        key: 0,
        commands: (0..n)
            .map(|i| PersistCommand::Set {
                var: VarId::from_index(i),
                value: Value::Int(seq as i64 * 100 + i as i64),
                source: PersistSource::User,
            })
            .collect(),
    }
}

#[test]
fn append_then_reopen_replays_in_order() {
    let dir = temp_dir("roundtrip");
    let records: Vec<_> = (1..=5).map(|q| batch(0, q, 2)).collect();
    {
        let (mut store, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
        for r in &records {
            store.append(r).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.appends, 5);
        assert!(s.bytes > 0);
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail, records);
    assert!(!rec.truncated);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rotation_spreads_segments_and_reopen_merges() {
    let dir = temp_dir("rotate");
    let records: Vec<_> = (1..=40).map(|q| batch(q % 3, q, 3)).collect();
    {
        let opts = StoreOptions {
            segment_bytes: 256,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        assert!(store.stats().segments > 3, "tiny threshold must rotate");
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail, records);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_truncates_to_committed_prefix() {
    let dir = temp_dir("torn");
    let records: Vec<_> = (1..=4).map(|q| batch(7, q, 2)).collect();
    let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
    for r in &records {
        store.append(r).unwrap();
    }
    drop(store);

    // Tear bytes off the single segment's tail, one at a time; each
    // reopen must yield some prefix of the records, never garbage.
    let seg = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .unwrap();
    let full = fs::read(&seg).unwrap();
    // Byte offsets at which a cut is a clean record boundary, not a tear.
    let mut boundaries = vec![8usize];
    for r in &records {
        boundaries.push(boundaries.last().unwrap() + r.encode_frame().len());
    }
    let mut prev_len = usize::MAX;
    for cut in (8..full.len()).rev() {
        fs::write(&seg, &full[..cut]).unwrap();
        let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(
            rec.tail.len() <= prev_len,
            "recovered more after cutting more"
        );
        prev_len = rec.tail.len();
        assert_eq!(rec.tail[..], records[..rec.tail.len()], "prefix property");
        assert_eq!(
            rec.truncated,
            !boundaries.contains(&cut),
            "tear flag wrong at cut {cut}"
        );
        // Each reopen creates a fresh active segment; drop it so the next
        // iteration still finds exactly one interesting segment.
        for extra in fs::read_dir(&dir).unwrap() {
            let p = extra.unwrap().path();
            if p != seg && p.extension().is_some_and(|e| e == "log") {
                fs::remove_file(p).unwrap();
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_covered_segments() {
    let dir = temp_dir("compact");
    let opts = StoreOptions {
        segment_bytes: 128,
        sync: SyncPolicy::Deferred,
        ..StoreOptions::default()
    };
    let (mut store, _) = Store::open(&dir, opts).unwrap();
    for q in 1..=20 {
        store.append(&batch(1, q, 2)).unwrap();
    }
    let covered = store.seal_for_checkpoint().unwrap();
    assert!(!covered.is_empty());

    // Appends racing the checkpoint land in the new active segment.
    store.append(&batch(1, 21, 2)).unwrap();

    let snap = Snapshot {
        next_session: 2,
        closed: vec![],
        sessions: vec![(1, 20, SessionState::default())],
    };
    store.write_snapshot(&snap, &covered).unwrap();
    let s = store.stats();
    assert_eq!(s.snapshots_written, 1);
    assert_eq!(s.bytes_since_checkpoint, 0);
    drop(store);

    let logs = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "log")
        })
        .count();
    assert!(logs <= 2, "covered segments deleted, found {logs}");

    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.snapshot, Some(snap));
    assert_eq!(rec.tail, vec![batch(1, 21, 2)], "only the uncovered record");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_prior() {
    let dir = temp_dir("snapfall");
    let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
    let older = Snapshot {
        next_session: 1,
        ..Snapshot::default()
    };
    let newer = Snapshot {
        next_session: 9,
        ..Snapshot::default()
    };
    store.write_snapshot(&older, &[]).unwrap();
    store.write_snapshot(&newer, &[]).unwrap();
    drop(store);

    // write_snapshot retires older snapshot files; re-create the older one
    // by hand, then corrupt the newest.
    fs::write(dir.join("snap-00000000.snap"), older.encode_file()).unwrap();
    let newest = dir.join("snap-00000001.snap");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&newest, bytes).unwrap();

    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.snapshot, Some(older), "fell back past the corrupt file");
    assert!(rec.truncated, "corruption was noticed");
    let _ = fs::remove_dir_all(&dir);
}

/// The crash→recover→append→reopen sequence: a torn tail left by crash
/// #1 must be repaired at the first reopen, so records acknowledged
/// *after* that recovery (which land in a later segment) survive every
/// subsequent open instead of being dropped when the scan re-hits the
/// tear.
#[test]
fn torn_tail_is_repaired_and_later_appends_survive_reopen() {
    let dir = temp_dir("repair");
    let records: Vec<_> = (1..=3).map(|q| batch(5, q, 2)).collect();
    {
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
    }
    // Crash #1: tear into the last record of the first segment.
    let seg = dir.join("wal-00000000.log");
    let full = fs::read(&seg).unwrap();
    fs::write(&seg, &full[..full.len() - 3]).unwrap();

    {
        let (mut store, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.tail, records[..2], "pre-tear prefix recovered");
        assert!(rec.truncated);
        // The post-recovery generation commits new acknowledged data; it
        // lands in a later segment than the (now repaired) torn one.
        store.append(&batch(5, 3, 1)).unwrap();
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        rec.tail,
        vec![records[0].clone(), records[1].clone(), batch(5, 3, 1)],
        "acked post-recovery record must not be shadowed by the old tear"
    );
    assert!(!rec.truncated, "the tear was repaired at the previous open");
    let _ = fs::remove_dir_all(&dir);
}

/// A segment whose header is corrupt is quarantined aside; segments after
/// it still replay, and later opens neither re-report the damage nor
/// reuse the quarantined index.
#[test]
fn bad_magic_segment_is_quarantined_not_a_barrier() {
    let dir = temp_dir("quarantine");
    let records: Vec<_> = (1..=3).map(|q| batch(2, q, 2)).collect();
    {
        // segment_bytes: 1 rotates after every append → one record per
        // sealed segment.
        let opts = StoreOptions {
            segment_bytes: 1,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
    }
    let mid = dir.join("wal-00000001.log");
    let mut bytes = fs::read(&mid).unwrap();
    bytes[0] ^= 0xFF;
    fs::write(&mid, bytes).unwrap();

    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        rec.tail,
        vec![records[0].clone(), records[2].clone()],
        "records on both sides of the bad segment recovered"
    );
    assert!(rec.truncated);
    assert!(dir.join("wal-00000001.log.corrupt").exists());

    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail, vec![records[0].clone(), records[2].clone()]);
    assert!(!rec.truncated, "quarantine is judged once, not per open");
    let _ = fs::remove_dir_all(&dir);
}

/// Once a record's frame is written and fsynced it is committed; a
/// rotation failure right after must not surface as an append error,
/// because the record replays on recovery and the caller would otherwise
/// report an un-failed batch as failed.
#[test]
fn append_commits_even_when_rotation_fails() {
    let dir = temp_dir("rotfail");
    let frame_len = batch(1, 1, 2).encode_frame().len() as u64;
    // Enough for the open's segment magic (8) plus one full frame plus one
    // spare byte (keeps the post-frame fsync alive); the successor's magic
    // write then dies mid-rotation.
    let budget = ByteBudget::new(8 + frame_len + 1);
    {
        let opts = StoreOptions {
            segment_bytes: 1,
            sync: SyncPolicy::Always,
            file_factory: failing_factory(budget),
        };
        let (mut store, _) = Store::open(&dir, opts).unwrap();
        store
            .append(&batch(1, 1, 2))
            .expect("committed record: rotation failure must stay internal");
        store
            .append(&batch(1, 2, 2))
            .expect_err("budget exhausted: this record never hit the disk");
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail, vec![batch(1, 1, 2)], "exactly the acked record");
    assert!(!rec.truncated, "stillborn successor was cleaned up");
    let _ = fs::remove_dir_all(&dir);
}

/// Two live processes must not share a store directory: the second open
/// fails fast instead of clobbering the first writer's active segment.
#[test]
fn second_open_is_locked_out() {
    let dir = temp_dir("lock");
    let (store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
    let err = Store::open(&dir, StoreOptions::default())
        .err()
        .expect("second opener must be refused");
    assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    drop(store);
    Store::open(&dir, StoreOptions::default()).expect("lock released with its holder");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn close_records_round_trip() {
    let dir = temp_dir("close");
    {
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&batch(3, 1, 1)).unwrap();
        store
            .append(&WalRecord::Close { session: 3, seq: 2 })
            .unwrap();
    }
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail.len(), 2);
    assert_eq!(rec.tail[1], WalRecord::Close { session: 3, seq: 2 });
    let _ = fs::remove_dir_all(&dir);
}

/// The lease fence: once the cluster epoch moves past this store's
/// granted epoch, appends and snapshot writes are refused *before*
/// anything touches the log — the deposed writer's record never lands,
/// so it is rolled back and never acknowledged.
#[test]
fn fenced_store_refuses_appends_and_snapshots() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = temp_dir("fence");
    let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
    let epoch = Arc::new(AtomicU64::new(1));
    store.set_fence(1, Arc::clone(&epoch));

    // At its own epoch the store behaves normally.
    store.append(&batch(0, 1, 1)).unwrap();

    // Deposed: a newer lease exists somewhere else.
    epoch.store(2, Ordering::SeqCst);
    let err = store.append(&batch(0, 2, 1)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    let err = store.write_snapshot(&Snapshot::default(), &[]).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    drop(store);

    // Only the pre-fence record survives on disk.
    let (_, rec) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(rec.tail.len(), 1);
    assert_eq!(rec.tail[0].seq(), 1);
    let _ = fs::remove_dir_all(&dir);
}

/// Lease epochs persist and count up across grants, so a restarted
/// coordinator can never hand out an epoch a fenced store already saw.
#[test]
fn lease_epochs_are_monotonic_on_disk() {
    let dir = temp_dir("lease");
    fs::create_dir_all(&dir).unwrap();
    assert_eq!(stem_persist::Lease::load(&dir).unwrap(), None);
    let a = stem_persist::Lease::advance(&dir, 7).unwrap();
    let b = stem_persist::Lease::advance(&dir, 8).unwrap();
    assert!(b.epoch > a.epoch);
    assert_eq!(stem_persist::Lease::load(&dir).unwrap(), Some(b));
    let _ = fs::remove_dir_all(&dir);
}
