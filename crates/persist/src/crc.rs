//! CRC-32 (IEEE 802.3, the zlib/`crc32` polynomial), table-driven.
//!
//! In-tree because the workspace is hermetic. The checksum guards every
//! WAL record and snapshot body: a torn write at the end of a segment
//! shows up as a checksum (or length) mismatch, which recovery treats as
//! "log ends here", never as data.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello wal");
        let mut data = b"hello wal".to_vec();
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), base, "bit {i} flip undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}
