//! The on-disk store: a directory of WAL segments plus snapshot files.
//!
//! ```text
//! <dir>/wal-00000000.log    sealed segment (header magic + frames)
//! <dir>/wal-00000001.log    … more sealed segments …
//! <dir>/wal-00000002.log    active segment (single writer appends)
//! <dir>/snap-00000000.snap  checkpoint files; highest valid one wins
//! ```
//!
//! ## Lifecycle
//!
//! Appends go to the active segment; once it passes the rotation
//! threshold it is synced, sealed, and a fresh segment is opened. A
//! checkpoint seals the active segment first ([`Store::seal_for_checkpoint`]),
//! so every record written before the checkpoint's state gather lives in a
//! sealed segment; after the snapshot file is durably in place
//! ([`Store::write_snapshot`]) exactly those segments are deleted. Records
//! appended *during* the gather land in the new active segment and remain
//! — they are deduplicated at replay by the per-session sequence numbers,
//! never by file bookkeeping.
//!
//! ## Recovery
//!
//! [`Store::open`] picks the newest snapshot that passes its checksum,
//! then scans the remaining segments in order, stopping at the first
//! invalid frame anywhere (crash-only fault model: bytes past a torn
//! frame are garbage from the same interrupted write, and later segments
//! cannot contain acknowledged data if an earlier one is torn, because
//! appends are strictly ordered through one writer). New appends always
//! open a fresh segment, so a truncated tail is abandoned, not overwritten.

use std::collections::BTreeSet;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::record::{scan_frame, FrameScan, WalRecord};
use crate::snapshot::Snapshot;

/// Magic prefix of a WAL segment file (8 bytes, version included).
pub const SEGMENT_MAGIC: &[u8; 8] = b"STEMWAL1";

/// Minimal file abstraction the store writes through — real files in
/// production, [`FailingFile`](crate::fault::FailingFile) under fault
/// injection. Reads always go through the real filesystem: the fault
/// model is torn *writes*, and recovery must see exactly what a write
/// left behind.
pub trait StoreFile: Write + Send {
    /// Durably flushes written bytes (fsync / `fdatasync`).
    fn sync(&mut self) -> io::Result<()>;
}

impl StoreFile for fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Opens (create + truncate) a writable store file at `path`.
pub type FileFactory = Box<dyn Fn(&Path) -> io::Result<Box<dyn StoreFile>> + Send>;

fn real_files() -> FileFactory {
    Box::new(|path| {
        let f = fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(f) as Box<dyn StoreFile>)
    })
}

/// When appended records are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync inside every [`Store::append`] — nothing acknowledged is ever
    /// lost, at ~one disk flush per commit.
    #[default]
    Always,
    /// Never fsync from `append`; the owner calls [`Store::sync`] on its
    /// own schedule (the engine's interval-sync mode). A crash loses at
    /// most one interval of acknowledged commits — but never tears a
    /// committed prefix, since the kernel writes the log back in order of
    /// the page cache, and recovery truncates at the first bad record
    /// regardless.
    Deferred,
}

/// Store construction knobs.
pub struct StoreOptions {
    /// Active-segment size that triggers rotation.
    pub segment_bytes: u64,
    /// fsync policy for appends.
    pub sync: SyncPolicy,
    /// File opener — swap in a failing one for fault injection.
    pub file_factory: FileFactory,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::Always,
            file_factory: real_files(),
        }
    }
}

/// Counters the engine surfaces through `Engine::stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Records appended over this store's lifetime (excludes recovery).
    pub appends: u64,
    /// Frame bytes appended.
    pub bytes: u64,
    /// Snapshot files durably written.
    pub snapshots_written: u64,
    /// Log bytes appended since the last snapshot (checkpoint trigger).
    pub bytes_since_checkpoint: u64,
    /// Segment files currently on disk (sealed + active).
    pub segments: u64,
}

/// What [`Store::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Newest checksum-valid snapshot, if any.
    pub snapshot: Option<Snapshot>,
    /// Valid log records after (and not covered by) the snapshot, in
    /// append order. Per-session sequence filtering is the caller's job.
    pub tail: Vec<WalRecord>,
    /// Whether a torn/corrupt frame was dropped during the scan.
    pub truncated: bool,
}

/// A directory-backed segmented WAL + snapshot store. Single writer; the
/// engine serialises access behind a mutex.
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    file: Box<dyn StoreFile>,
    seg_index: u64,
    seg_bytes: u64,
    sealed: Vec<u64>,
    next_snap: u64,
    dirty: bool,
    stats: StoreStats,
}

fn parse_index(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn seg_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("wal-{idx:08}.log"))
}

fn snap_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("snap-{idx:08}.snap"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Make renames/creates durable. Directory fsync is a Unix notion;
    // if the platform refuses, the data files themselves are still synced.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, returning the store
    /// positioned for appends plus everything recovered from disk.
    pub fn open(dir: impl Into<PathBuf>, opts: StoreOptions) -> io::Result<(Store, Recovered)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut seg_indexes = BTreeSet::new();
        let mut snap_indexes = BTreeSet::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // Leftover from a crash mid-snapshot: never renamed into
                // place, so it was never the truth. Discard.
                let _ = fs::remove_file(entry.path());
            } else if let Some(i) = parse_index(name, "wal-", ".log") {
                seg_indexes.insert(i);
            } else if let Some(i) = parse_index(name, "snap-", ".snap") {
                snap_indexes.insert(i);
            }
        }

        let mut recovered = Recovered::default();
        for &i in snap_indexes.iter().rev() {
            if let Ok(bytes) = fs::read(snap_path(&dir, i)) {
                if let Some(snap) = Snapshot::decode_file(&bytes) {
                    recovered.snapshot = Some(snap);
                    break;
                }
                recovered.truncated = true;
            }
        }

        'segments: for &i in &seg_indexes {
            let bytes = fs::read(seg_path(&dir, i))?;
            let Some(mut rest) = bytes.strip_prefix(SEGMENT_MAGIC.as_slice()) else {
                recovered.truncated |= !bytes.is_empty();
                break;
            };
            loop {
                match scan_frame(rest) {
                    FrameScan::Ok { payload, rest: r } => {
                        match WalRecord::decode_payload(payload) {
                            Ok(rec) => recovered.tail.push(rec),
                            Err(_) => {
                                recovered.truncated = true;
                                break 'segments;
                            }
                        }
                        rest = r;
                    }
                    FrameScan::End => {
                        if !rest.is_empty() {
                            recovered.truncated = true;
                            break 'segments;
                        }
                        break;
                    }
                }
            }
        }

        // Appends never touch an existing segment: a fresh one both avoids
        // writing after a torn tail and keeps sealed files immutable.
        let seg_index = seg_indexes.iter().next_back().map_or(0, |i| i + 1);
        let mut file = (opts.file_factory)(&seg_path(&dir, seg_index))?;
        file.write_all(SEGMENT_MAGIC)?;
        file.sync()?;
        sync_dir(&dir)?;

        let sealed: Vec<u64> = seg_indexes.into_iter().collect();
        let stats = StoreStats {
            segments: sealed.len() as u64 + 1,
            ..StoreStats::default()
        };
        let store = Store {
            next_snap: snap_indexes.iter().next_back().map_or(0, |i| i + 1),
            dir,
            opts,
            file,
            seg_index,
            seg_bytes: SEGMENT_MAGIC.len() as u64,
            sealed,
            dirty: false,
            stats,
        };
        Ok((store, recovered))
    }

    /// Appends one record, rotating and fsyncing per policy. Returns the
    /// frame size in bytes. On error the record must be treated as *not
    /// logged*: the caller rolls the batch back and refuses to ack.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<usize> {
        let frame = rec.encode_frame();
        self.file.write_all(&frame)?;
        self.dirty = true;
        self.seg_bytes += frame.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        self.stats.bytes_since_checkpoint += frame.len() as u64;
        if self.opts.sync == SyncPolicy::Always {
            self.sync()?;
        }
        if self.seg_bytes >= self.opts.segment_bytes {
            self.rotate()?;
        }
        Ok(frame.len())
    }

    /// Durably flushes any unsynced appends (interval-sync driver).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync()?;
            self.dirty = false;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        self.sealed.push(self.seg_index);
        self.seg_index += 1;
        let mut file = (self.opts.file_factory)(&seg_path(&self.dir, self.seg_index))?;
        file.write_all(SEGMENT_MAGIC)?;
        self.file = file;
        self.dirty = true;
        self.seg_bytes = SEGMENT_MAGIC.len() as u64;
        self.stats.segments += 1;
        Ok(())
    }

    /// Seals the active segment (if it holds any records) and returns every
    /// sealed segment index. Call *before* gathering checkpoint state:
    /// all records already appended are then in sealed segments, so the
    /// gathered state covers them, and only them may be deleted once the
    /// snapshot lands ([`Store::write_snapshot`]).
    pub fn seal_for_checkpoint(&mut self) -> io::Result<Vec<u64>> {
        if self.seg_bytes > SEGMENT_MAGIC.len() as u64 {
            self.rotate()?;
        }
        Ok(self.sealed.clone())
    }

    /// Durably writes `snap` (tmp + fsync + rename + dir fsync), then
    /// retires the `covered` segments and all older snapshot files. A
    /// crash before the rename leaves the previous snapshot authoritative;
    /// a crash after it can only lose files the snapshot supersedes.
    pub fn write_snapshot(&mut self, snap: &Snapshot, covered: &[u64]) -> io::Result<()> {
        let idx = self.next_snap;
        let final_path = snap_path(&self.dir, idx);
        let tmp_path = final_path.with_extension("snap.tmp");
        {
            let mut f = (self.opts.file_factory)(&tmp_path)?;
            f.write_all(&snap.encode_file())?;
            f.sync()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir)?;
        self.next_snap = idx + 1;
        self.stats.snapshots_written += 1;
        self.stats.bytes_since_checkpoint = 0;

        for old in 0..idx {
            let _ = fs::remove_file(snap_path(&self.dir, old));
        }
        for &seg in covered {
            if fs::remove_file(seg_path(&self.dir, seg)).is_ok() {
                self.sealed.retain(|&s| s != seg);
                self.stats.segments = self.stats.segments.saturating_sub(1);
            }
        }
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Running counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
