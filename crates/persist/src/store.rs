//! The on-disk store: a directory of WAL segments plus snapshot files.
//!
//! ```text
//! <dir>/wal-00000000.log    sealed segment (header magic + frames)
//! <dir>/wal-00000001.log    … more sealed segments …
//! <dir>/wal-00000002.log    active segment (single writer appends)
//! <dir>/snap-00000000.snap  checkpoint files; highest valid one wins
//! ```
//!
//! ## Lifecycle
//!
//! Appends go to the active segment; once it passes the rotation
//! threshold it is synced, sealed, and a fresh segment is opened. A
//! checkpoint seals the active segment first ([`Store::seal_for_checkpoint`]),
//! so every record written before the checkpoint's state gather lives in a
//! sealed segment; after the snapshot file is durably in place
//! ([`Store::write_snapshot`]) exactly those segments are deleted. Records
//! appended *during* the gather land in the new active segment and remain
//! — they are deduplicated at replay by the per-session sequence numbers,
//! never by file bookkeeping.
//!
//! ## Recovery
//!
//! [`Store::open`] picks the newest snapshot that passes its checksum,
//! then scans the remaining segments in order. Within one segment the
//! scan stops at the first invalid frame (crash-only fault model: bytes
//! past a torn frame in a file are garbage from the same interrupted
//! write) — but the scan then *continues with the next segment*. A torn
//! tail in segment `k` only proves the writer died while appending to
//! `k`; any `k+1` on disk was created by a *later* process generation
//! that already recovered the pre-tear prefix, so its records are
//! acknowledged data that must not be dropped. Each torn segment is also
//! repaired in place at open (truncated to its checksum-valid prefix and
//! fsynced), and a segment whose header never made it to disk is renamed
//! aside, so the damage is dealt with once instead of being re-judged on
//! every open. New appends always go to a fresh segment, so a truncated
//! tail is abandoned, never overwritten.
//!
//! ## Single writer
//!
//! The store directory is guarded by an advisory `LOCK` file held (via
//! `File::try_lock`) for the store's lifetime. A second process opening
//! the same directory fails fast instead of computing the same fresh
//! active-segment index and clobbering the first writer's segment; the
//! OS drops the lock when the holder exits, so a crash never wedges the
//! store.

use std::collections::BTreeSet;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::record::{scan_frame, FrameScan, WalRecord};
use crate::snapshot::Snapshot;

/// Magic prefix of a WAL segment file (8 bytes, version included).
pub const SEGMENT_MAGIC: &[u8; 8] = b"STEMWAL1";

/// Deferred-mode appends accumulate in memory and hit the file in runs of
/// this size (or at the next `sync`/rotation), so the per-commit cost of
/// interval-sync durability is a memcpy rather than a `write` syscall.
const WRITE_BUF_FLUSH: usize = 128 << 10;

/// Advisory lock file guarding the store directory against a second
/// concurrent writer process.
const LOCK_FILE: &str = "LOCK";

/// Minimal file abstraction the store writes through — real files in
/// production, [`FailingFile`](crate::fault::FailingFile) under fault
/// injection. Reads always go through the real filesystem: the fault
/// model is torn *writes*, and recovery must see exactly what a write
/// left behind.
pub trait StoreFile: Write + Send {
    /// Durably flushes written bytes (fsync / `fdatasync`).
    fn sync(&mut self) -> io::Result<()>;
}

impl StoreFile for fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Opens (create + truncate) a writable store file at `path`.
pub type FileFactory = Box<dyn Fn(&Path) -> io::Result<Box<dyn StoreFile>> + Send>;

fn real_files() -> FileFactory {
    Box::new(|path| {
        let f = fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(f) as Box<dyn StoreFile>)
    })
}

/// When appended records are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync inside every [`Store::append`] — nothing acknowledged is ever
    /// lost, at ~one disk flush per commit.
    #[default]
    Always,
    /// Never fsync from `append`; the owner calls [`Store::sync`] on its
    /// own schedule (the engine's interval-sync mode). A crash loses at
    /// most one interval of acknowledged commits — but never tears a
    /// committed prefix, since the kernel writes the log back in order of
    /// the page cache, and recovery truncates at the first bad record
    /// regardless.
    Deferred,
}

/// Store construction knobs.
pub struct StoreOptions {
    /// Active-segment size that triggers rotation.
    pub segment_bytes: u64,
    /// fsync policy for appends.
    pub sync: SyncPolicy,
    /// File opener — swap in a failing one for fault injection.
    pub file_factory: FileFactory,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::Always,
            file_factory: real_files(),
        }
    }
}

/// Counters the engine surfaces through `Engine::stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Records appended over this store's lifetime (excludes recovery).
    pub appends: u64,
    /// Frame bytes appended.
    pub bytes: u64,
    /// Snapshot files durably written.
    pub snapshots_written: u64,
    /// Log bytes appended since the last snapshot (checkpoint trigger).
    pub bytes_since_checkpoint: u64,
    /// Segment files currently on disk (sealed + active).
    pub segments: u64,
}

/// What [`Store::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Newest checksum-valid snapshot, if any.
    pub snapshot: Option<Snapshot>,
    /// Valid log records after (and not covered by) the snapshot, in
    /// append order. Per-session sequence filtering is the caller's job.
    pub tail: Vec<WalRecord>,
    /// Whether a torn/corrupt frame was dropped during the scan (the
    /// damaged segment was also repaired or quarantined on disk, so the
    /// flag does not reappear on later opens).
    pub truncated: bool,
}

/// A directory-backed segmented WAL + snapshot store. Single writer; the
/// engine serialises access behind a mutex, and the directory's `LOCK`
/// file (held for the store's lifetime) excludes other processes.
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    file: Box<dyn StoreFile>,
    seg_index: u64,
    seg_bytes: u64,
    sealed: Vec<u64>,
    next_snap: u64,
    dirty: bool,
    /// Deferred-mode write buffer for the active segment; always empty
    /// under [`SyncPolicy::Always`] and after any `sync`/rotation.
    buf: Vec<u8>,
    stats: StoreStats,
    /// Lease fence: `(my_epoch, cluster_epoch)`. When the shared cluster
    /// epoch moves past this store's granted epoch, appends and snapshot
    /// writes are refused ([`Store::set_fence`]).
    fence: Option<(u64, Arc<AtomicU64>)>,
    /// Holds the directory's advisory lock; released on drop (or crash).
    _lock: fs::File,
}

fn parse_index(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn seg_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("wal-{idx:08}.log"))
}

fn snap_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("snap-{idx:08}.snap"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Make renames/creates durable. Directory fsync is a Unix notion;
    // if the platform refuses, the data files themselves are still synced.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Acquires the store directory's advisory lock, failing fast if another
/// live process holds it. The lock file stays empty; only the OS lock on
/// it matters, and the OS releases that when the holder exits, so a
/// crashed process never wedges the store.
fn acquire_lock(dir: &Path) -> io::Result<fs::File> {
    let lock = fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join(LOCK_FILE))?;
    lock.try_lock().map_err(|err| match err {
        fs::TryLockError::Error(e) => e,
        fs::TryLockError::WouldBlock => io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("store at {} is locked by another process", dir.display()),
        ),
    })?;
    Ok(lock)
}

/// Truncates a torn segment to its checksum-valid prefix, durably.
/// `set_len` is a metadata operation: a crash mid-repair cannot tear the
/// surviving records the way rewriting the file could.
fn repair_segment(path: &Path, keep: u64) -> io::Result<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    f.sync_all()?;
    Ok(())
}

/// Retires a segment whose header never made it to disk: an empty file
/// (crash between create and magic write) is deleted, anything else is
/// renamed out of the `wal-*.log` namespace so later opens ignore it
/// without re-judging the corruption.
fn quarantine_segment(path: &Path, empty: bool) -> io::Result<()> {
    if empty {
        fs::remove_file(path)
    } else {
        fs::rename(path, path.with_extension("log.corrupt"))
    }
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, returning the store
    /// positioned for appends plus everything recovered from disk.
    pub fn open(dir: impl Into<PathBuf>, opts: StoreOptions) -> io::Result<(Store, Recovered)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let lock = acquire_lock(&dir)?;

        let mut seg_indexes = BTreeSet::new();
        let mut snap_indexes = BTreeSet::new();
        // Indexes burnt by quarantined (`.log.corrupt`) segments: never
        // reused, so a fresh segment cannot collide with a quarantined
        // name and the on-disk append order stays the index order.
        let mut burnt = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // Leftover from a crash mid-snapshot: never renamed into
                // place, so it was never the truth. Discard.
                let _ = fs::remove_file(entry.path());
            } else if let Some(i) = parse_index(name, "wal-", ".log") {
                seg_indexes.insert(i);
            } else if let Some(i) = parse_index(name, "wal-", ".log.corrupt") {
                burnt = burnt.max(i + 1);
            } else if let Some(i) = parse_index(name, "snap-", ".snap") {
                snap_indexes.insert(i);
            }
        }

        let mut recovered = Recovered::default();
        for &i in snap_indexes.iter().rev() {
            if let Ok(bytes) = fs::read(snap_path(&dir, i)) {
                if let Some(snap) = Snapshot::decode_file(&bytes) {
                    recovered.snapshot = Some(snap);
                    break;
                }
                recovered.truncated = true;
            }
        }

        // Scan every segment in index (= append) order. A bad frame ends
        // that *segment* — frame lengths chain, so resynchronising inside
        // a file is impossible — but never the scan: later segments were
        // written by later process generations on top of the recovered
        // prefix and hold acknowledged records. Damaged segments are
        // repaired (or quarantined) here, once, so the fault is not
        // re-judged on every open.
        let mut live_indexes = BTreeSet::new();
        for &i in &seg_indexes {
            let path = seg_path(&dir, i);
            let bytes = fs::read(&path)?;
            let Some(mut rest) = bytes.strip_prefix(SEGMENT_MAGIC.as_slice()) else {
                recovered.truncated |= !bytes.is_empty();
                quarantine_segment(&path, bytes.is_empty())?;
                continue;
            };
            live_indexes.insert(i);
            let mut valid = SEGMENT_MAGIC.len() as u64;
            loop {
                match scan_frame(rest) {
                    FrameScan::Ok { payload, rest: r } => {
                        match WalRecord::decode_payload(payload) {
                            Ok(rec) => {
                                recovered.tail.push(rec);
                                valid += 8 + payload.len() as u64;
                                rest = r;
                            }
                            Err(_) => {
                                recovered.truncated = true;
                                repair_segment(&path, valid)?;
                                break;
                            }
                        }
                    }
                    FrameScan::End => {
                        if !rest.is_empty() {
                            recovered.truncated = true;
                            repair_segment(&path, valid)?;
                        }
                        break;
                    }
                }
            }
        }

        // Appends never touch an existing segment: a fresh one both avoids
        // writing after a torn tail and keeps sealed files immutable.
        let seg_index = seg_indexes
            .iter()
            .next_back()
            .map_or(0, |i| i + 1)
            .max(burnt);
        let seg_indexes = live_indexes;
        let mut file = (opts.file_factory)(&seg_path(&dir, seg_index))?;
        file.write_all(SEGMENT_MAGIC)?;
        file.sync()?;
        sync_dir(&dir)?;

        let sealed: Vec<u64> = seg_indexes.into_iter().collect();
        let stats = StoreStats {
            segments: sealed.len() as u64 + 1,
            ..StoreStats::default()
        };
        let store = Store {
            next_snap: snap_indexes.iter().next_back().map_or(0, |i| i + 1),
            dir,
            opts,
            file,
            seg_index,
            seg_bytes: SEGMENT_MAGIC.len() as u64,
            sealed,
            dirty: false,
            buf: Vec::new(),
            stats,
            fence: None,
            _lock: lock,
        };
        Ok((store, recovered))
    }

    /// Arms the lease fence: this store was granted `epoch`, and `current`
    /// is the cluster's live epoch cell (bumped by the coordinator when it
    /// re-grants the lease to someone else). Once `current` exceeds
    /// `epoch`, [`Store::append`] and [`Store::write_snapshot`] refuse
    /// with [`io::ErrorKind::PermissionDenied`] — the record is *not*
    /// logged, so the owning engine rolls the batch back and never acks
    /// it. That is the whole fencing contract: a deposed leader's late
    /// write can fail, but it can never silently land in a log the new
    /// leader has already caught up from.
    pub fn set_fence(&mut self, epoch: u64, current: Arc<AtomicU64>) {
        self.fence = Some((epoch, current));
    }

    /// Returns an error if the lease fence has been overtaken.
    fn check_fence(&self) -> io::Result<()> {
        if let Some((mine, current)) = &self.fence {
            let now = current.load(Ordering::SeqCst);
            if now > *mine {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    format!("append fenced: lease epoch {mine} superseded by {now}"),
                ));
            }
        }
        Ok(())
    }

    /// Appends one record, fsyncing per policy. Returns the frame size in
    /// bytes. On error the record must be treated as *not logged*: the
    /// caller rolls the batch back and refuses to ack. Conversely, `Ok`
    /// means the record is committed (and, under [`SyncPolicy::Always`],
    /// durable) — segment rotation happens *after* that commit point and
    /// its failure is deliberately not surfaced here: the record is
    /// already in the log and would replay on recovery, so reporting the
    /// batch as failed would be a lie. A failed rotation simply leaves
    /// the current segment active (oversized) and is retried when the
    /// next append crosses the threshold again.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<usize> {
        self.check_fence()?;
        let frame = rec.encode_frame();
        match self.opts.sync {
            SyncPolicy::Always => self.file.write_all(&frame)?,
            SyncPolicy::Deferred => {
                // Buffer the frame; it reaches the file at the next flush
                // threshold, explicit `sync`, rotation, or drop. The loss
                // window is the same one Deferred already grants (un-synced
                // page cache), just extended into user space.
                self.buf.extend_from_slice(&frame);
                if self.buf.len() >= WRITE_BUF_FLUSH {
                    self.flush_buf()?;
                }
            }
        }
        self.dirty = true;
        self.seg_bytes += frame.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        self.stats.bytes_since_checkpoint += frame.len() as u64;
        if self.opts.sync == SyncPolicy::Always {
            self.sync()?;
        }
        if self.seg_bytes >= self.opts.segment_bytes {
            let _ = self.rotate();
        }
        Ok(frame.len())
    }

    /// Writes the deferred-mode buffer through to the active segment file.
    /// A failed flush is a Deferred-mode loss event (the records were
    /// acknowledged against the buffer): the error surfaces to the sync
    /// driver, and recovery truncates whatever torn tail the partial
    /// write left behind.
    fn flush_buf(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Durably flushes any unsynced appends (interval-sync driver).
    pub fn sync(&mut self) -> io::Result<()> {
        self.flush_buf()?;
        if self.dirty {
            self.file.sync()?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Seals the active segment and opens its successor. The successor is
    /// brought fully up (opened, magic written) *before* any store state
    /// changes: a failure leaves the store exactly as it was, still
    /// appending to the current segment, and in particular never leaves
    /// the active segment's index in `sealed` where a checkpoint could
    /// delete it out from under the writer.
    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let next = self.seg_index + 1;
        let path = seg_path(&self.dir, next);
        let result = (self.opts.file_factory)(&path).and_then(|mut file| {
            file.write_all(SEGMENT_MAGIC)?;
            Ok(file)
        });
        let file = match result {
            Ok(file) => file,
            Err(err) => {
                // Drop the stillborn successor so a later open does not
                // find a headerless segment to quarantine.
                let _ = fs::remove_file(&path);
                return Err(err);
            }
        };
        self.sealed.push(self.seg_index);
        self.seg_index = next;
        self.file = file;
        self.dirty = true;
        self.seg_bytes = SEGMENT_MAGIC.len() as u64;
        self.stats.segments += 1;
        Ok(())
    }

    /// Seals the active segment (if it holds any records) and returns every
    /// sealed segment index. Call *before* gathering checkpoint state:
    /// all records already appended are then in sealed segments, so the
    /// gathered state covers them, and only them may be deleted once the
    /// snapshot lands ([`Store::write_snapshot`]).
    pub fn seal_for_checkpoint(&mut self) -> io::Result<Vec<u64>> {
        if self.seg_bytes > SEGMENT_MAGIC.len() as u64 {
            self.rotate()?;
        }
        Ok(self.sealed.clone())
    }

    /// Durably writes `snap` (tmp + fsync + rename + dir fsync), then
    /// retires the `covered` segments and all older snapshot files. A
    /// crash before the rename leaves the previous snapshot authoritative;
    /// a crash after it can only lose files the snapshot supersedes.
    ///
    /// Returns whether every covered segment is gone from disk — callers
    /// that retire bookkeeping tied to those segments (the engine's
    /// closed-session ids) must see `true` before forgetting anything.
    pub fn write_snapshot(&mut self, snap: &Snapshot, covered: &[u64]) -> io::Result<bool> {
        self.check_fence()?;
        let idx = self.next_snap;
        let final_path = snap_path(&self.dir, idx);
        let tmp_path = final_path.with_extension("snap.tmp");
        {
            let mut f = (self.opts.file_factory)(&tmp_path)?;
            f.write_all(&snap.encode_file())?;
            f.sync()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir)?;
        self.next_snap = idx + 1;
        self.stats.snapshots_written += 1;
        self.stats.bytes_since_checkpoint = 0;

        for old in 0..idx {
            let _ = fs::remove_file(snap_path(&self.dir, old));
        }
        let mut all_removed = true;
        for &seg in covered {
            let gone = match fs::remove_file(seg_path(&self.dir, seg)) {
                Ok(()) => true,
                Err(err) => err.kind() == io::ErrorKind::NotFound,
            };
            if gone {
                self.sealed.retain(|&s| s != seg);
                self.stats.segments = self.stats.segments.saturating_sub(1);
            } else {
                all_removed = false;
            }
        }
        sync_dir(&self.dir)?;
        Ok(all_removed)
    }

    /// Running counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sealed segment indexes currently on disk, in append order. These
    /// are the shippable units: sealed files are immutable and were fully
    /// synced by the rotation that sealed them.
    pub fn sealed_segments(&self) -> Vec<u64> {
        self.sealed.clone()
    }

    /// Reads the raw bytes of a *sealed* segment for shipping to a
    /// replica. The active segment is refused: it is still being appended
    /// to (and under deferred sync some of it may only exist in memory),
    /// so its bytes are not yet a stable replication unit.
    pub fn read_segment(&self, index: u64) -> io::Result<Vec<u8>> {
        if index == self.seg_index {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("segment {index} is active; seal it before shipping"),
            ));
        }
        fs::read(seg_path(&self.dir, index))
    }

    /// Raw bytes of the newest snapshot file, if one exists — the bulk
    /// bootstrap a replica ingests before replaying shipped segments.
    pub fn latest_snapshot_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        if self.next_snap == 0 {
            return Ok(None);
        }
        match fs::read(snap_path(&self.dir, self.next_snap - 1)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err),
        }
    }
}

impl Drop for Store {
    /// Flush (without fsync) so records buffered under deferred sync are
    /// visible to a clean-process reopen — dropping a store has always
    /// meant "the process survived", and the crash fault model is
    /// exercised by abandoning the directory, not by dropping.
    fn drop(&mut self) {
        let _ = self.flush_buf();
    }
}

/// Decodes a shipped segment image (as returned by [`Store::read_segment`])
/// into its records. Unlike crash recovery — which tolerates a torn tail
/// because the writer may have died mid-append — a shipped segment was
/// sealed and fully synced before it ever left the leader, so *anything*
/// short of a perfect decode (bad magic, torn frame, trailing garbage,
/// undecodable payload) is transport or software corruption and is
/// reported as an error rather than silently truncated.
pub fn decode_segment(bytes: &[u8]) -> io::Result<Vec<WalRecord>> {
    let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let Some(mut rest) = bytes.strip_prefix(SEGMENT_MAGIC.as_slice()) else {
        return Err(corrupt("shipped segment missing STEMWAL1 header"));
    };
    let mut records = Vec::new();
    loop {
        match scan_frame(rest) {
            FrameScan::Ok { payload, rest: r } => {
                let rec = WalRecord::decode_payload(payload)
                    .map_err(|e| corrupt(&format!("shipped segment payload: {e}")))?;
                records.push(rec);
                rest = r;
            }
            FrameScan::End => {
                if !rest.is_empty() {
                    return Err(corrupt("shipped segment has a torn or corrupt frame"));
                }
                return Ok(records);
            }
        }
    }
}
