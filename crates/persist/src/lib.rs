//! # stem-persist — durable sessions for the STEM engine
//!
//! A segmented write-ahead log of committed engine commands plus periodic
//! snapshot checkpoints, with crash recovery that reconstructs every
//! session exactly as of its last acknowledged commit.
//!
//! The thesis frames committed network state as a replayable history of
//! justified value changes (dependency records, ch. 5); this crate makes
//! that history literal bytes. The design splits into:
//!
//! - [`codec`](stem_core::codec) (in `stem-core`): stable binary encoding
//!   for values, ids and justifications.
//! - [`command`]: the closed, replayable command vocabulary
//!   ([`PersistCommand`], [`PersistSpec`]) the engine logs.
//! - [`record`]: checksummed `[len][crc][payload]` WAL frames
//!   ([`WalRecord`]).
//! - [`state`] / [`snapshot`]: per-session rebuildable images and the
//!   checkpoint file format ([`SessionState`], [`Snapshot`]).
//! - [`store`]: the directory of segments + snapshots ([`Store`]), with
//!   rotation, compaction, fsync policy, and torn-write truncation.
//! - [`lease`]: durable leadership leases ([`Lease`]) whose monotonic
//!   epochs fence a deposed leader's late appends (`Store::set_fence`).
//! - [`fault`]: byte-budget fault injection ([`FailingFile`]) proving the
//!   recovery invariant at every possible crash point.
//!
//! Everything is in-tree and `std`-only: no serde, no external crates.
//!
//! ## The recovery invariant
//!
//! For any crash point, reopening the store yields exactly the prefix of
//! batches that were fully committed (logged *and* acknowledged): a batch
//! is acknowledged only after its record is appended, and a record is
//! replayed only if its checksum holds and every earlier record's did —
//! so a half-applied batch is unobservable in either direction.

#![warn(missing_docs)]

pub mod command;
pub mod crc;
pub mod fault;
pub mod group;
pub mod lease;
pub mod record;
pub mod snapshot;
pub mod state;
pub mod store;

pub use command::{PersistCommand, PersistSource, PersistSpec};
pub use fault::{failing_factory, ByteBudget, FailingFile};
pub use group::GroupCommit;
pub use lease::Lease;
pub use record::WalRecord;
pub use snapshot::Snapshot;
pub use state::{SessionState, SlotState};
pub use store::{
    decode_segment, FileFactory, Recovered, Store, StoreFile, StoreOptions, StoreStats, SyncPolicy,
};
