//! Fault injection: a [`StoreFile`] that dies after a byte budget.
//!
//! [`FailingFile`] writes through to a real file until a shared budget
//! runs out, then *short-writes* the final chunk and fails every later
//! operation. What lands on disk is exactly the prefix a crash at that
//! byte would leave — the crash-matrix tests sweep the budget across
//! every byte of a scripted workload and assert recovery reconstructs
//! precisely the acknowledged prefix each time.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::store::{FileFactory, StoreFile};

/// Shared budget of bytes that may still reach disk, across every file
/// the factory opens (the "power supply" of the simulated machine).
#[derive(Debug, Clone)]
pub struct ByteBudget(Arc<AtomicU64>);

impl ByteBudget {
    /// A budget of `n` writable bytes.
    pub fn new(n: u64) -> Self {
        ByteBudget(Arc::new(AtomicU64::new(n)))
    }

    /// Bytes left before the injected crash.
    pub fn remaining(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Claims up to `want` bytes; returns how many were granted.
    fn claim(&self, want: u64) -> u64 {
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let grant = cur.min(want);
            match self
                .0
                .compare_exchange(cur, cur - grant, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return grant,
                Err(now) => cur = now,
            }
        }
    }
}

/// The error every post-crash operation returns.
fn crashed() -> io::Error {
    io::Error::other("injected crash: byte budget exhausted")
}

/// A real file that honours a [`ByteBudget`].
pub struct FailingFile {
    inner: fs::File,
    budget: ByteBudget,
}

impl FailingFile {
    /// Wraps `inner` under `budget`.
    pub fn new(inner: fs::File, budget: ByteBudget) -> Self {
        FailingFile { inner, budget }
    }
}

impl Write for FailingFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let grant = self.budget.claim(buf.len() as u64) as usize;
        if grant == 0 {
            return Err(crashed());
        }
        // Short write of the granted prefix: callers using write_all will
        // come back for the rest and hit the exhausted budget — exactly a
        // torn frame on disk.
        self.inner.write_all(&buf[..grant])?;
        Ok(grant)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.budget.remaining() == 0 {
            return Err(crashed());
        }
        self.inner.flush()
    }
}

impl StoreFile for FailingFile {
    fn sync(&mut self) -> io::Result<()> {
        if self.budget.remaining() == 0 {
            return Err(crashed());
        }
        self.inner.sync_data()
    }
}

/// A [`FileFactory`] whose files share one byte budget. File creation
/// itself stays free (metadata, not data bytes); once the budget is
/// exhausted, opens fail too.
pub fn failing_factory(budget: ByteBudget) -> FileFactory {
    Box::new(move |path: &Path| {
        if budget.remaining() == 0 {
            return Err(crashed());
        }
        let f = fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(FailingFile::new(f, budget.clone())) as Box<dyn StoreFile>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_claims_exactly() {
        let b = ByteBudget::new(10);
        assert_eq!(b.claim(4), 4);
        assert_eq!(b.claim(7), 6);
        assert_eq!(b.claim(1), 0);
        assert_eq!(b.remaining(), 0);
    }
}
