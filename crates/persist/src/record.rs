//! WAL record payloads and the checksummed on-disk frame.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! A record is valid only if the full frame is present *and* the checksum
//! matches. Scanning stops at the first invalid frame *of a segment*:
//! with appends going through a single writer and crashes being the only
//! fault model, bytes after a torn frame in the same file can only be
//! garbage from the same interrupted write. Later segment files are a
//! different matter — they were written by later process generations —
//! and the store keeps scanning them (see `store`'s recovery notes).

use crate::command::PersistCommand;
use crate::crc::crc32;
use stem_core::codec::{put_u32, put_u64, put_u8, DecodeError, Reader};

/// Upper bound on a single record payload; anything larger is corrupt.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// One entry of the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed batch's mutating commands.
    Batch {
        /// Owning session id.
        session: u64,
        /// Per-session commit sequence number (1-based, dense).
        seq: u64,
        /// Client-assigned idempotence key (0 = unkeyed). Unlike `seq`,
        /// which counts *committed* batches densely, the key counts the
        /// client's *submitted* mutating batches — a violated-and-rolled-
        /// back batch consumes a key but never a seq. Recovery rebuilds
        /// each session's dedup high-water mark from these so a client
        /// resubmitting after failover cannot double-apply an already
        /// committed batch.
        key: u64,
        /// The batch's mutating commands, in order.
        commands: Vec<PersistCommand>,
    },
    /// The session was closed; recovery must not resurrect it.
    Close {
        /// Closed session id.
        session: u64,
        /// Sequence number of the close (one past the last batch).
        seq: u64,
    },
}

impl WalRecord {
    /// Owning session id.
    pub fn session(&self) -> u64 {
        match self {
            WalRecord::Batch { session, .. } | WalRecord::Close { session, .. } => *session,
        }
    }

    /// Per-session sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Batch { seq, .. } | WalRecord::Close { seq, .. } => *seq,
        }
    }

    /// Encodes the payload (frame not included).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            WalRecord::Batch {
                session,
                seq,
                key,
                commands,
            } => {
                put_u8(&mut buf, 0);
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, *key);
                put_u32(&mut buf, commands.len() as u32);
                for c in commands {
                    c.encode(&mut buf);
                }
            }
            WalRecord::Close { session, seq } => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *seq);
            }
        }
        buf
    }

    /// Decodes a payload produced by [`WalRecord::encode_payload`].
    pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            0 => {
                let session = r.u64()?;
                let seq = r.u64()?;
                let key = r.u64()?;
                let n = r.len()?;
                let mut commands = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    commands.push(PersistCommand::decode(&mut r)?);
                }
                WalRecord::Batch {
                    session,
                    seq,
                    key,
                    commands,
                }
            }
            1 => WalRecord::Close {
                session: r.u64()?,
                seq: r.u64()?,
            },
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "WalRecord",
                    at: 0,
                })
            }
        };
        if !r.is_empty() {
            // Trailing bytes mean the frame length disagrees with the
            // payload grammar — corrupt either way.
            return Err(DecodeError::Eof { at: r.position() });
        }
        Ok(rec)
    }

    /// Encodes the full on-disk frame: `[len][crc][payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }
}

/// Wraps a payload in the `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Result of pulling one frame off the front of `buf`.
pub enum FrameScan<'a> {
    /// A complete, checksum-valid frame; `rest` is the remaining input.
    Ok {
        /// The verified payload.
        payload: &'a [u8],
        /// Bytes after the frame.
        rest: &'a [u8],
    },
    /// End of useful data: empty input, torn frame, bad length, or bad
    /// checksum. Scanning must stop here.
    End,
}

/// Reads one frame from the front of `buf`, verifying length and checksum.
pub fn scan_frame(buf: &[u8]) -> FrameScan<'_> {
    if buf.len() < 8 {
        return FrameScan::End;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return FrameScan::End;
    }
    let end = 8 + len as usize;
    if buf.len() < end {
        return FrameScan::End;
    }
    let payload = &buf[8..end];
    if crc32(payload) != crc {
        return FrameScan::End;
    }
    FrameScan::Ok {
        payload,
        rest: &buf[end..],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{PersistSource, PersistSpec};
    use stem_core::{Value, VarId};

    fn sample() -> WalRecord {
        WalRecord::Batch {
            session: 7,
            seq: 3,
            key: 9,
            commands: vec![
                PersistCommand::AddVariable {
                    name: "width".into(),
                },
                PersistCommand::Set {
                    var: VarId::from_index(0),
                    value: Value::Int(64),
                    source: PersistSource::Application,
                },
                PersistCommand::AddConstraint {
                    spec: PersistSpec::LeConst(Value::Int(128)),
                    args: vec![VarId::from_index(0)],
                },
            ],
        }
    }

    #[test]
    fn frame_round_trip() {
        let rec = sample();
        let bytes = rec.encode_frame();
        match scan_frame(&bytes) {
            FrameScan::Ok { payload, rest } => {
                assert!(rest.is_empty());
                assert_eq!(WalRecord::decode_payload(payload).unwrap(), rec);
            }
            FrameScan::End => panic!("frame did not scan"),
        }
    }

    #[test]
    fn every_truncation_reads_as_end() {
        let bytes = sample().encode_frame();
        for cut in 0..bytes.len() {
            assert!(
                matches!(scan_frame(&bytes[..cut]), FrameScan::End),
                "torn frame of {cut} bytes scanned as valid"
            );
        }
    }

    #[test]
    fn every_bitflip_reads_as_end_or_decode_error() {
        let rec = sample();
        let bytes = rec.encode_frame();
        for i in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[i / 8] ^= 1 << (i % 8);
            match scan_frame(&bad) {
                FrameScan::End => {}
                FrameScan::Ok { payload, .. } => {
                    // A flip in the length prefix can still frame-scan if it
                    // shortens into bytes whose crc… no: crc is over the
                    // payload, so any surviving scan means the flip landed
                    // outside this frame's bytes — impossible here. Defend
                    // anyway: the payload must decode to the original.
                    assert_eq!(
                        WalRecord::decode_payload(payload).unwrap(),
                        rec,
                        "bit {i} flip produced a different valid record"
                    );
                }
            }
        }
    }

    #[test]
    fn close_round_trips_and_chains() {
        let a = WalRecord::Batch {
            session: 1,
            seq: 1,
            key: 0,
            commands: vec![PersistCommand::SetValueChangeLimit { limit: 4 }],
        };
        let b = WalRecord::Close { session: 1, seq: 2 };
        let mut bytes = a.encode_frame();
        bytes.extend(b.encode_frame());

        let FrameScan::Ok { payload, rest } = scan_frame(&bytes) else {
            panic!("first frame")
        };
        assert_eq!(WalRecord::decode_payload(payload).unwrap(), a);
        let FrameScan::Ok { payload, rest } = scan_frame(rest) else {
            panic!("second frame")
        };
        assert_eq!(WalRecord::decode_payload(payload).unwrap(), b);
        assert!(rest.is_empty());
        assert_eq!(b.session(), 1);
        assert_eq!(b.seq(), 2);
    }

    /// A batch exercising every domain-flavored spec and value kind.
    fn domain_sample() -> WalRecord {
        use stem_core::{FinSet, Interval};
        WalRecord::Batch {
            session: 11,
            seq: 5,
            key: 2,
            commands: vec![
                PersistCommand::Set {
                    var: VarId::from_index(0),
                    value: Value::Interval(Interval::new(-3, 4096)),
                    source: PersistSource::User,
                },
                PersistCommand::Set {
                    var: VarId::from_index(1),
                    value: Value::FinSet(FinSet::new(0x8000_0000_0000_0101)),
                    source: PersistSource::Update,
                },
                PersistCommand::AddConstraint {
                    spec: PersistSpec::DomAdd {
                        views: [(1, 0), (-1, 7), (1, -2)],
                        out: Some(2),
                    },
                    args: vec![
                        VarId::from_index(0),
                        VarId::from_index(1),
                        VarId::from_index(2),
                    ],
                },
                PersistCommand::AddConstraint {
                    spec: PersistSpec::DomLe {
                        c: -4,
                        views: [(-1, 0), (-1, 0)],
                        out: None,
                    },
                    args: vec![VarId::from_index(0), VarId::from_index(1)],
                },
                PersistCommand::AddConstraint {
                    spec: PersistSpec::DomAllDiff,
                    args: vec![VarId::from_index(1), VarId::from_index(2)],
                },
                PersistCommand::AddConstraint {
                    spec: PersistSpec::DomReifLe {
                        c: 9,
                        views: [(1, 1), (1, -1)],
                    },
                    args: vec![
                        VarId::from_index(3),
                        VarId::from_index(0),
                        VarId::from_index(1),
                    ],
                },
            ],
        }
    }

    #[test]
    fn domain_record_round_trips() {
        let rec = domain_sample();
        let bytes = rec.encode_frame();
        let FrameScan::Ok { payload, rest } = scan_frame(&bytes) else {
            panic!("domain frame did not scan")
        };
        assert!(rest.is_empty());
        assert_eq!(WalRecord::decode_payload(payload).unwrap(), rec);
    }

    #[test]
    fn every_truncation_of_domain_record_reads_as_end() {
        let bytes = domain_sample().encode_frame();
        for cut in 0..bytes.len() {
            assert!(
                matches!(scan_frame(&bytes[..cut]), FrameScan::End),
                "torn domain frame of {cut} bytes scanned as valid"
            );
        }
    }

    #[test]
    fn every_bitflip_of_domain_record_reads_as_end_or_original() {
        let rec = domain_sample();
        let bytes = rec.encode_frame();
        for i in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[i / 8] ^= 1 << (i % 8);
            match scan_frame(&bad) {
                FrameScan::End => {}
                FrameScan::Ok { payload, .. } => {
                    assert_eq!(
                        WalRecord::decode_payload(payload).unwrap(),
                        rec,
                        "bit {i} flip produced a different valid domain record"
                    );
                }
            }
        }
    }
}
