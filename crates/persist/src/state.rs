//! Checkpointed session state: everything a worker needs to rebuild a
//! session's `Network` without replaying its whole history.
//!
//! The state is *structural + raw values*, not a serialised `Network`:
//! variables (name, value, justification), the constraint arena including
//! tombstones (so replayed ids line up), and the value-change limit. The
//! restoring worker re-adds the structure with propagation disabled, then
//! stores values and justifications verbatim — identical observable state
//! (values, justifications, violation sweeps) without re-running
//! propagation.

use crate::command::PersistSpec;
use stem_core::codec::{
    put_bool, put_justification, put_str, put_u32, put_u64, put_u8, put_value, put_var,
    DecodeError, Reader,
};
use stem_core::{Justification, Value};

/// One slot of the constraint arena.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotState {
    /// A live constraint: spec, argument variables, enabled flag.
    Live {
        /// What the constraint does.
        spec: PersistSpec,
        /// Its argument variables, by arena index.
        args: Vec<stem_core::VarId>,
        /// Whether it participates in propagation.
        enabled: bool,
    },
    /// A removed constraint; the slot is kept so later ids keep their
    /// positions.
    Tombstone,
}

/// Rebuildable image of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// Per-variable `(name, value, justification)`, in arena order.
    pub vars: Vec<(String, Value, Justification)>,
    /// Constraint arena, in arena order, tombstones included.
    pub slots: Vec<SlotState>,
    /// The session's value-change rule (thesis one-value-change rule when 1).
    pub value_change_limit: u32,
    /// Highest client idempotence key a *successful* batch carried
    /// (`WalRecord::Batch::key`; 0 = none seen). Checkpointing this with
    /// the state lets recovery re-arm duplicate suppression without
    /// replaying history from before the snapshot.
    pub dedup: u64,
}

impl Default for SessionState {
    /// An empty session. The change limit defaults to 1 — the thesis's
    /// one-value-change rule and [`stem_core::Network::new`]'s default —
    /// so a session recovered purely from its log tail (no snapshot)
    /// restores onto a limit a fresh network accepts.
    fn default() -> Self {
        SessionState {
            vars: Vec::new(),
            slots: Vec::new(),
            value_change_limit: 1,
            dedup: 0,
        }
    }
}

impl SessionState {
    /// Appends the state to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.vars.len() as u32);
        for (name, value, just) in &self.vars {
            put_str(buf, name);
            put_value(buf, value);
            put_justification(buf, just);
        }
        put_u32(buf, self.slots.len() as u32);
        for slot in &self.slots {
            match slot {
                SlotState::Tombstone => put_u8(buf, 0),
                SlotState::Live {
                    spec,
                    args,
                    enabled,
                } => {
                    put_u8(buf, 1);
                    spec.encode(buf);
                    put_u32(buf, args.len() as u32);
                    for a in args {
                        put_var(buf, *a);
                    }
                    put_bool(buf, *enabled);
                }
            }
        }
        put_u32(buf, self.value_change_limit);
        put_u64(buf, self.dedup);
    }

    /// Reads a state from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<SessionState, DecodeError> {
        let n_vars = r.len()?;
        let mut vars = Vec::with_capacity(n_vars.min(4096));
        for _ in 0..n_vars {
            let name = r.str()?.to_owned();
            let value = r.value()?;
            let just = r.justification()?;
            vars.push((name, value, just));
        }
        let n_slots = r.len()?;
        let mut slots = Vec::with_capacity(n_slots.min(4096));
        for _ in 0..n_slots {
            let at = r.position();
            slots.push(match r.u8()? {
                0 => SlotState::Tombstone,
                1 => {
                    let spec = PersistSpec::decode(r)?;
                    let n = r.len()?;
                    let mut args = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        args.push(r.var()?);
                    }
                    let enabled = r.bool()?;
                    SlotState::Live {
                        spec,
                        args,
                        enabled,
                    }
                }
                tag => {
                    return Err(DecodeError::Tag {
                        tag,
                        what: "SlotState",
                        at,
                    })
                }
            });
        }
        let value_change_limit = r.u32()?;
        let dedup = r.u64()?;
        Ok(SessionState {
            vars,
            slots,
            value_change_limit,
            dedup,
        })
    }
}
