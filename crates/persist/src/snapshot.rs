//! Checkpoint files: a full image of every live session at a moment in
//! (per-session) logical time.
//!
//! A snapshot carries, per session, the commit sequence number it is
//! consistent with. There is no global cut: workers gather their sessions
//! independently, so session A's image may include commits that session
//! B's image predates. That is safe because sessions share nothing — the
//! recovery condition is per-session: replay record `(s, q)` iff
//! `q > seq(s in snapshot)` and `s` is not closed.
//!
//! On disk: 8-byte magic, then one checksummed frame (same `[len][crc]`
//! layout as WAL records) holding the whole snapshot. A torn snapshot
//! write therefore fails its checksum and recovery falls back to the
//! previous snapshot — which is why snapshots are written to a temp name,
//! synced, renamed into place, and only then allowed to retire older
//! files.

use crate::record::{frame, scan_frame, FrameScan};
use crate::state::SessionState;
use stem_core::codec::{put_u32, put_u64, DecodeError, Reader};

/// Magic prefix of a snapshot file (8 bytes, version included).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"STEMSNP1";

/// A point-in-time image of the whole engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The engine's next session id to allocate.
    pub next_session: u64,
    /// Ids of sessions closed before this snapshot; recovery must not
    /// resurrect them from older log records.
    pub closed: Vec<u64>,
    /// Per live session: `(id, last committed seq, state)`.
    pub sessions: Vec<(u64, u64, SessionState)>,
}

impl Snapshot {
    /// Encodes the full snapshot file image (magic + checksummed frame).
    pub fn encode_file(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(256);
        put_u64(&mut payload, self.next_session);
        put_u32(&mut payload, self.closed.len() as u32);
        for id in &self.closed {
            put_u64(&mut payload, *id);
        }
        put_u32(&mut payload, self.sessions.len() as u32);
        for (id, seq, state) in &self.sessions {
            put_u64(&mut payload, *id);
            put_u64(&mut payload, *seq);
            state.encode(&mut payload);
        }
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&frame(&payload));
        out
    }

    /// Decodes a snapshot file image; `None` for anything torn, truncated,
    /// or checksum-invalid (the caller falls back to an older snapshot).
    pub fn decode_file(bytes: &[u8]) -> Option<Snapshot> {
        let body = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice())?;
        let FrameScan::Ok { payload, rest } = scan_frame(body) else {
            return None;
        };
        if !rest.is_empty() {
            return None;
        }
        Self::decode_payload(payload).ok()
    }

    fn decode_payload(payload: &[u8]) -> Result<Snapshot, DecodeError> {
        let mut r = Reader::new(payload);
        let next_session = r.u64()?;
        let n_closed = r.len()?;
        let mut closed = Vec::with_capacity(n_closed.min(4096));
        for _ in 0..n_closed {
            closed.push(r.u64()?);
        }
        let n_sessions = r.len()?;
        let mut sessions = Vec::with_capacity(n_sessions.min(4096));
        for _ in 0..n_sessions {
            let id = r.u64()?;
            let seq = r.u64()?;
            sessions.push((id, seq, SessionState::decode(&mut r)?));
        }
        if !r.is_empty() {
            return Err(DecodeError::Eof { at: r.position() });
        }
        Ok(Snapshot {
            next_session,
            closed,
            sessions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::PersistSpec;
    use crate::state::SlotState;
    use stem_core::{Justification, Value, VarId};

    fn sample() -> Snapshot {
        Snapshot {
            next_session: 5,
            closed: vec![1, 3],
            sessions: vec![
                (0, 12, SessionState::default()),
                (
                    4,
                    2,
                    SessionState {
                        vars: vec![
                            ("a".into(), Value::Int(3), Justification::User),
                            ("b".into(), Value::Nil, Justification::Unset),
                        ],
                        slots: vec![
                            SlotState::Tombstone,
                            SlotState::Live {
                                spec: PersistSpec::Scale {
                                    gain: 2.0,
                                    offset: -1.0,
                                },
                                args: vec![VarId::from_index(0), VarId::from_index(1)],
                                enabled: false,
                            },
                        ],
                        value_change_limit: 2,
                        dedup: 6,
                    },
                ),
            ],
        }
    }

    #[test]
    fn file_round_trip() {
        let snap = sample();
        assert_eq!(Snapshot::decode_file(&snap.encode_file()), Some(snap));
    }

    #[test]
    fn torn_or_corrupt_file_is_none() {
        let bytes = sample().encode_file();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::decode_file(&bytes[..cut]).is_none(),
                "torn snapshot of {cut} bytes decoded"
            );
        }
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0x40;
        assert!(Snapshot::decode_file(&bad).is_none());
        let mut grown = bytes;
        grown.push(0);
        assert!(Snapshot::decode_file(&grown).is_none(), "trailing byte");
    }
}
