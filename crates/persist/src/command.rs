//! The persisted command vocabulary: a `Send`, codec-stable mirror of the
//! engine's batch commands.
//!
//! The engine's own `Command` cannot be logged directly — its
//! `ConstraintSpec::Custom` variant carries an arbitrary closure, which has
//! no byte representation. This mirror is the closed, replayable subset;
//! the engine converts commands into it before applying a batch and
//! refuses custom kinds when durability is on, so everything that reaches
//! the log is guaranteed to replay.

use stem_core::codec::{
    put_bool, put_cid, put_f64, put_i64, put_str, put_u32, put_u8, put_value, put_var, DecodeError,
    Reader,
};
use stem_core::{ConstraintId, Value, VarId};

/// A `Send` + codec-stable constraint description (the closed subset of
/// the engine's `ConstraintSpec`).
#[derive(Debug, Clone, PartialEq)]
pub enum PersistSpec {
    /// All arguments equal.
    Equality,
    /// Last argument = sum of the others.
    Sum,
    /// Last argument = max of the others.
    Max,
    /// Last argument = min of the others.
    Min,
    /// Last argument = product of the others.
    Product,
    /// Last argument = `gain * first + offset`.
    Scale {
        /// Multiplier.
        gain: f64,
        /// Addend.
        offset: f64,
    },
    /// Check-only predicate: every argument ≤ the bound.
    LeConst(Value),
    /// Check-only predicate: every argument ≥ the bound.
    GeConst(Value),
    /// Check-only predicate: every argument = the constant.
    EqConst(Value),
    /// Check-only predicate: `args[0] ≤ args[1]`.
    Le,
    /// Check-only predicate: `args[0] < args[1]`.
    Lt,
    /// Bounds-consistent domain relation `v0(x) + v1(y) = v2(z)` over
    /// affine views `(a, b) ↦ a·x + b`; `out == None` propagates all
    /// three ways, `Some(i)` only narrows argument `i`.
    DomAdd {
        /// Per-argument affine views `(a, b)`.
        views: [(i64, i64); 3],
        /// Directional output argument, when restricted.
        out: Option<u8>,
    },
    /// Bounds-consistent domain relation `v0(x) ≤ v1(y) + c`.
    DomLe {
        /// The offset `c`.
        c: i64,
        /// Per-argument affine views `(a, b)`.
        views: [(i64, i64); 2],
        /// Directional output argument, when restricted.
        out: Option<u8>,
    },
    /// All arguments pairwise distinct (bounds reasoning).
    DomAllDiff,
    /// Reified inequality: `args[0] ⇔ (v0(args[1]) ≤ v1(args[2]) + c)`.
    DomReifLe {
        /// The offset `c`.
        c: i64,
        /// Affine views over `args[1]`/`args[2]`.
        views: [(i64, i64); 2],
    },
}

impl PersistSpec {
    /// Appends the spec to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PersistSpec::Equality => put_u8(buf, 0),
            PersistSpec::Sum => put_u8(buf, 1),
            PersistSpec::Max => put_u8(buf, 2),
            PersistSpec::Min => put_u8(buf, 3),
            PersistSpec::Product => put_u8(buf, 4),
            PersistSpec::Scale { gain, offset } => {
                put_u8(buf, 5);
                put_f64(buf, *gain);
                put_f64(buf, *offset);
            }
            PersistSpec::LeConst(v) => {
                put_u8(buf, 6);
                put_value(buf, v);
            }
            PersistSpec::GeConst(v) => {
                put_u8(buf, 7);
                put_value(buf, v);
            }
            PersistSpec::EqConst(v) => {
                put_u8(buf, 8);
                put_value(buf, v);
            }
            PersistSpec::Le => put_u8(buf, 9),
            PersistSpec::Lt => put_u8(buf, 10),
            PersistSpec::DomAdd { views, out } => {
                put_u8(buf, 11);
                for (a, b) in views {
                    put_i64(buf, *a);
                    put_i64(buf, *b);
                }
                // 255 = non-directional, mirroring the kind's `OUT_ALL`
                // (arity is bounded well below it).
                put_u8(buf, out.unwrap_or(u8::MAX));
            }
            PersistSpec::DomLe { c, views, out } => {
                put_u8(buf, 12);
                put_i64(buf, *c);
                for (a, b) in views {
                    put_i64(buf, *a);
                    put_i64(buf, *b);
                }
                put_u8(buf, out.unwrap_or(u8::MAX));
            }
            PersistSpec::DomAllDiff => put_u8(buf, 13),
            PersistSpec::DomReifLe { c, views } => {
                put_u8(buf, 14);
                put_i64(buf, *c);
                for (a, b) in views {
                    put_i64(buf, *a);
                    put_i64(buf, *b);
                }
            }
        }
    }

    /// Reads a spec from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<PersistSpec, DecodeError> {
        let at = r.position();
        Ok(match r.u8()? {
            0 => PersistSpec::Equality,
            1 => PersistSpec::Sum,
            2 => PersistSpec::Max,
            3 => PersistSpec::Min,
            4 => PersistSpec::Product,
            5 => PersistSpec::Scale {
                gain: r.f64()?,
                offset: r.f64()?,
            },
            6 => PersistSpec::LeConst(r.value()?),
            7 => PersistSpec::GeConst(r.value()?),
            8 => PersistSpec::EqConst(r.value()?),
            9 => PersistSpec::Le,
            10 => PersistSpec::Lt,
            11 => PersistSpec::DomAdd {
                views: [
                    (r.i64()?, r.i64()?),
                    (r.i64()?, r.i64()?),
                    (r.i64()?, r.i64()?),
                ],
                out: match r.u8()? {
                    u8::MAX => None,
                    o => Some(o),
                },
            },
            12 => PersistSpec::DomLe {
                c: r.i64()?,
                views: [(r.i64()?, r.i64()?), (r.i64()?, r.i64()?)],
                out: match r.u8()? {
                    u8::MAX => None,
                    o => Some(o),
                },
            },
            13 => PersistSpec::DomAllDiff,
            14 => PersistSpec::DomReifLe {
                c: r.i64()?,
                views: [(r.i64()?, r.i64()?), (r.i64()?, r.i64()?)],
            },
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "PersistSpec",
                    at,
                })
            }
        })
    }
}

/// Claimed provenance of a persisted `Set` (mirrors the engine's `Source`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PersistSource {
    /// A direct designer edit.
    #[default]
    User,
    /// A tool/application computation.
    Application,
    /// Consistency-maintenance refresh.
    Update,
    /// A class-definition default.
    DefaultValue,
}

impl PersistSource {
    fn encode(self, buf: &mut Vec<u8>) {
        put_u8(
            buf,
            match self {
                PersistSource::User => 0,
                PersistSource::Application => 1,
                PersistSource::Update => 2,
                PersistSource::DefaultValue => 3,
            },
        );
    }

    fn decode(r: &mut Reader<'_>) -> Result<PersistSource, DecodeError> {
        let at = r.position();
        Ok(match r.u8()? {
            0 => PersistSource::User,
            1 => PersistSource::Application,
            2 => PersistSource::Update,
            3 => PersistSource::DefaultValue,
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "PersistSource",
                    at,
                })
            }
        })
    }
}

/// One mutating command of a committed batch, as stored in the log.
///
/// Read-only commands (`Get`, `Probe`, `DumpValues`, `CheckAll`) are never
/// logged: replaying them would be a no-op, and a batch with no mutating
/// command writes no record at all.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistCommand {
    /// Adds a plain variable.
    AddVariable {
        /// Display name.
        name: String,
    },
    /// Assigns a value with full propagation.
    Set {
        /// Target variable.
        var: VarId,
        /// New value.
        value: Value,
        /// Claimed provenance.
        source: PersistSource,
    },
    /// Erases a variable to `Nil`/unset without propagation.
    Unset {
        /// Target variable.
        var: VarId,
    },
    /// Installs a constraint over `args`.
    AddConstraint {
        /// What the constraint does.
        spec: PersistSpec,
        /// Its argument variables.
        args: Vec<VarId>,
    },
    /// Removes a constraint.
    RemoveConstraint {
        /// Target constraint.
        constraint: ConstraintId,
    },
    /// Enables or disables one constraint.
    EnableConstraint {
        /// Target constraint.
        constraint: ConstraintId,
        /// New enabled state.
        enabled: bool,
    },
    /// Enables/disables every constraint of a kind.
    SetKindEnabled {
        /// Kind label, e.g. `"equality"`.
        kind_name: String,
        /// New enabled state.
        enabled: bool,
    },
    /// Relaxes/tightens the per-cycle value-change rule.
    SetValueChangeLimit {
        /// New limit.
        limit: u32,
    },
}

impl PersistCommand {
    /// Appends the command to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PersistCommand::AddVariable { name } => {
                put_u8(buf, 0);
                put_str(buf, name);
            }
            PersistCommand::Set { var, value, source } => {
                put_u8(buf, 1);
                put_var(buf, *var);
                put_value(buf, value);
                source.encode(buf);
            }
            PersistCommand::Unset { var } => {
                put_u8(buf, 2);
                put_var(buf, *var);
            }
            PersistCommand::AddConstraint { spec, args } => {
                put_u8(buf, 3);
                spec.encode(buf);
                put_u32(buf, args.len() as u32);
                for a in args {
                    put_var(buf, *a);
                }
            }
            PersistCommand::RemoveConstraint { constraint } => {
                put_u8(buf, 4);
                put_cid(buf, *constraint);
            }
            PersistCommand::EnableConstraint {
                constraint,
                enabled,
            } => {
                put_u8(buf, 5);
                put_cid(buf, *constraint);
                put_bool(buf, *enabled);
            }
            PersistCommand::SetKindEnabled { kind_name, enabled } => {
                put_u8(buf, 6);
                put_str(buf, kind_name);
                put_bool(buf, *enabled);
            }
            PersistCommand::SetValueChangeLimit { limit } => {
                put_u8(buf, 7);
                put_u32(buf, *limit);
            }
        }
    }

    /// Reads a command from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<PersistCommand, DecodeError> {
        let at = r.position();
        Ok(match r.u8()? {
            0 => PersistCommand::AddVariable {
                name: r.str()?.to_owned(),
            },
            1 => PersistCommand::Set {
                var: r.var()?,
                value: r.value()?,
                source: PersistSource::decode(r)?,
            },
            2 => PersistCommand::Unset { var: r.var()? },
            3 => {
                let spec = PersistSpec::decode(r)?;
                let n = r.len()?;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(r.var()?);
                }
                PersistCommand::AddConstraint { spec, args }
            }
            4 => PersistCommand::RemoveConstraint {
                constraint: r.cid()?,
            },
            5 => PersistCommand::EnableConstraint {
                constraint: r.cid()?,
                enabled: r.bool()?,
            },
            6 => PersistCommand::SetKindEnabled {
                kind_name: r.str()?.to_owned(),
                enabled: r.bool()?,
            },
            7 => PersistCommand::SetValueChangeLimit { limit: r.u32()? },
            tag => {
                return Err(DecodeError::Tag {
                    tag,
                    what: "PersistCommand",
                    at,
                })
            }
        })
    }
}
