//! Group commit: one fsync covers many concurrent commits.
//!
//! Commit-sync durability pays ~one disk flush per batch, which caps a
//! multi-session engine at fsync rate regardless of how many worker
//! threads commit concurrently. The coordinator here keeps the durability
//! contract (an acknowledged batch is on disk) while sharing flushes:
//! every committer appends its record under the store lock, then joins a
//! *sync epoch*. The first committer to find no flush in progress elects
//! itself leader, re-takes the store lock, observes how many records have
//! been appended so far (`cover`), and issues a single fsync that makes
//! all of them durable at once; everyone whose epoch the flush covered is
//! released together. Committers that arrive while a flush is in flight
//! simply wait — by the time the current flush finishes and the next
//! leader reads its own `cover`, their records are included, so nobody
//! ever waits for more than two flushes.
//!
//! ## Ordering argument
//!
//! `appended` is only incremented while holding the store lock, *after*
//! the record's bytes are in the store (file or deferred write buffer).
//! The leader reads `cover = appended` while *itself* holding the store
//! lock, so every record counted by `cover` is fully appended before the
//! `Store::sync` that follows (which flushes the write buffer first).
//! `synced >= epoch` therefore really does mean "my record is durable".
//!
//! ## Failure
//!
//! If the flush fails, every committer covered by it gets an error and
//! the engine rolls those batches back without acking — the same
//! semantics as a failed inline fsync under commit-sync: the record may
//! physically exist in the log as an orphan, and per-session sequence
//! replay deduplicates it if the session retries.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::record::WalRecord;
use crate::store::Store;

#[derive(Default)]
struct GcState {
    /// Records appended so far (bumped under the store lock).
    appended: u64,
    /// Highest epoch made durable by a completed flush.
    synced: u64,
    /// Highest epoch covered by a *failed* flush; those commits error out.
    failed: u64,
    /// Message of the most recent flush failure.
    failed_msg: String,
    /// Whether a committer is currently driving a flush.
    leader: bool,
}

/// Shared-fsync commit coordinator wrapped around the engine's store.
pub struct GroupCommit {
    store: Arc<Mutex<Store>>,
    state: Mutex<GcState>,
    cv: Condvar,
    syncs: AtomicU64,
    commits: AtomicU64,
}

impl GroupCommit {
    /// Wraps `store` (which should be opened with
    /// [`SyncPolicy::Deferred`](crate::store::SyncPolicy::Deferred) so the
    /// coordinator owns all fsyncs).
    pub fn new(store: Arc<Mutex<Store>>) -> GroupCommit {
        GroupCommit {
            store,
            state: Mutex::new(GcState::default()),
            cv: Condvar::new(),
            syncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    /// The wrapped store, for non-commit paths (checkpoints, shipping).
    pub fn store(&self) -> &Arc<Mutex<Store>> {
        &self.store
    }

    /// Appends `rec` and returns once a flush has made it durable (or
    /// failed). Returns the frame size in bytes, like [`Store::append`].
    pub fn append_durable(&self, rec: &WalRecord) -> io::Result<usize> {
        // Lock order is always store → state, so `appended` counts exactly
        // the records whose bytes are already in the store.
        let (frame_len, epoch) = {
            let mut store = self.store.lock().unwrap();
            let n = store.append(rec)?;
            let mut g = self.state.lock().unwrap();
            g.appended += 1;
            (n, g.appended)
        };
        self.commits.fetch_add(1, Ordering::Relaxed);

        let mut g = self.state.lock().unwrap();
        loop {
            if g.synced >= epoch {
                return Ok(frame_len);
            }
            if g.failed >= epoch {
                return Err(io::Error::other(format!(
                    "group commit flush failed: {}",
                    g.failed_msg
                )));
            }
            if !g.leader {
                g.leader = true;
                drop(g);
                let result = {
                    let mut store = self.store.lock().unwrap();
                    let cover = self.state.lock().unwrap().appended;
                    store.sync().map(|()| cover).map_err(|e| (cover, e))
                };
                g = self.state.lock().unwrap();
                g.leader = false;
                match result {
                    Ok(cover) => {
                        g.synced = g.synced.max(cover);
                        self.syncs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err((cover, err)) => {
                        g.failed = g.failed.max(cover);
                        g.failed_msg = err.to_string();
                    }
                }
                self.cv.notify_all();
            } else {
                g = self.cv.wait(g).unwrap();
            }
        }
    }

    /// Completed group flushes (each one covered ≥1 commit).
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Commits acknowledged through the coordinator.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{StoreOptions, SyncPolicy};
    use std::sync::mpsc;
    use std::thread;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stem-group-{tag}-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_deferred(dir: &std::path::Path) -> Store {
        let (store, _) = Store::open(
            dir,
            StoreOptions {
                sync: SyncPolicy::Deferred,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store
    }

    fn rec(session: u64, seq: u64) -> WalRecord {
        WalRecord::Batch {
            session,
            seq,
            key: 0,
            commands: vec![crate::command::PersistCommand::SetValueChangeLimit {
                limit: seq as u32,
            }],
        }
    }

    #[test]
    fn concurrent_commits_share_fsyncs_and_all_persist() {
        let dir = temp_dir("share");
        let gc = Arc::new(GroupCommit::new(Arc::new(Mutex::new(open_deferred(&dir)))));
        const THREADS: u64 = 8;
        const PER: u64 = 25;

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let gc = Arc::clone(&gc);
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for s in 1..=PER {
                    gc.append_durable(&rec(t, s)).unwrap();
                }
                tx.send(t).unwrap();
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count() as u64, THREADS);
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(gc.commits(), THREADS * PER);
        // Every commit waited for a flush, but concurrent committers share
        // them: strictly fewer flushes than commits (with 8 threads the
        // coordinator typically needs far fewer; ≥1 is all that's certain
        // beyond the sharing bound).
        let syncs = gc.syncs();
        assert!(syncs >= 1, "at least one flush must have happened");
        assert!(
            syncs <= THREADS * PER,
            "flushes ({syncs}) cannot exceed commits"
        );

        // Everything acknowledged is on disk: drop and reopen.
        drop(gc);
        let (_store, recovered) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovered.tail.len() as u64, THREADS * PER);
        assert!(!recovered.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_committer_still_durable_per_append() {
        let dir = temp_dir("single");
        let gc = GroupCommit::new(Arc::new(Mutex::new(open_deferred(&dir))));
        for s in 1..=5 {
            gc.append_durable(&rec(0, s)).unwrap();
        }
        assert_eq!(gc.commits(), 5);
        assert_eq!(gc.syncs(), 5, "uncontended commits flush one-for-one");
        drop(gc);
        let (_store, recovered) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovered.tail.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
