//! Durable leadership leases with monotonic epochs.
//!
//! A lease is the cluster tier's fencing token: exactly one engine per
//! shard is supposed to append to the shard's WAL, and the lease's
//! `epoch` names which incarnation that is. The file lives next to the
//! WAL it guards (`LEASE` in the store directory) and is replaced
//! atomically (tmp + fsync + rename + dir sync), so a crash between
//! advances leaves either the old epoch or the new one — never a torn
//! record and never a *lower* epoch.
//!
//! Epochs only move through [`Lease::advance`], which re-reads the file
//! and writes `epoch + 1`: monotonicity holds by construction as long as
//! advances are serialised, which the single-coordinator router
//! guarantees (it owns every shard's failover path). The store enforces
//! the fence itself — see `Store::set_fence` — so a deposed leader's
//! late append is refused at the commit point, before any
//! acknowledgement can escape.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::record::{frame, scan_frame, FrameScan};
use stem_core::codec::{put_u64, Reader};

/// Magic prefix of the lease file.
pub const LEASE_MAGIC: &[u8; 8] = b"STEMLSE1";

/// Name of the lease file inside a store directory.
pub const LEASE_FILE: &str = "LEASE";

/// One leadership lease: who currently owns a shard's WAL, and at which
/// epoch. Higher epochs fence lower ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Monotonic fencing token; starts at 1 on the first advance.
    pub epoch: u64,
    /// Caller-chosen holder tag (e.g. a shard generation number).
    /// Informational — fencing compares epochs only.
    pub holder: u64,
}

impl Lease {
    /// Reads the lease recorded in `dir`, or `None` if no lease was ever
    /// granted there. A torn or checksum-invalid file is an error, not
    /// `None`: treating damage as "no lease" would let an epoch restart
    /// from zero and un-fence a deposed leader.
    pub fn load(dir: &Path) -> io::Result<Option<Lease>> {
        let path = dir.join(LEASE_FILE);
        let mut bytes = Vec::new();
        match fs::File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        let corrupt = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt lease file at {}", path.display()),
            )
        };
        let rest = bytes.strip_prefix(LEASE_MAGIC).ok_or_else(corrupt)?;
        let FrameScan::Ok { payload, rest } = scan_frame(rest) else {
            return Err(corrupt());
        };
        if !rest.is_empty() {
            return Err(corrupt());
        }
        let mut r = Reader::new(payload);
        let lease = Lease {
            epoch: r.u64().map_err(|_| corrupt())?,
            holder: r.u64().map_err(|_| corrupt())?,
        };
        if !r.is_empty() {
            return Err(corrupt());
        }
        Ok(Some(lease))
    }

    /// Grants the next lease in `dir` to `holder`: epoch = previous
    /// epoch + 1 (1 if none was ever granted), written atomically.
    /// Returns the new lease.
    pub fn advance(dir: &Path, holder: u64) -> io::Result<Lease> {
        let prev = Lease::load(dir)?.map_or(0, |l| l.epoch);
        let lease = Lease {
            epoch: prev + 1,
            holder,
        };
        let mut payload = Vec::with_capacity(16);
        put_u64(&mut payload, lease.epoch);
        put_u64(&mut payload, lease.holder);
        let mut bytes = LEASE_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(&payload));

        let tmp = dir.join(format!("{LEASE_FILE}.tmp"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dir.join(LEASE_FILE))?;
        // Same best-effort directory fsync as the snapshot writer: the
        // rename must survive power loss on platforms that support it.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(lease)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("stem-lease-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fresh_dir_has_no_lease_and_epochs_count_up() {
        let dir = temp_dir("count");
        assert_eq!(Lease::load(&dir).unwrap(), None);
        assert_eq!(
            Lease::advance(&dir, 10).unwrap(),
            Lease {
                epoch: 1,
                holder: 10
            }
        );
        assert_eq!(
            Lease::advance(&dir, 11).unwrap(),
            Lease {
                epoch: 2,
                holder: 11
            }
        );
        // Re-read sees the latest grant.
        assert_eq!(
            Lease::load(&dir).unwrap(),
            Some(Lease {
                epoch: 2,
                holder: 11
            })
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lease_is_an_error_not_a_reset() {
        let dir = temp_dir("corrupt");
        Lease::advance(&dir, 1).unwrap();
        // Flip one payload byte: the checksum must catch it and the
        // failure must be loud — a silent None would restart epochs.
        let path = dir.join(LEASE_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(Lease::load(&dir).is_err());
        assert!(Lease::advance(&dir, 2).is_err(), "advance must not reset");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_tmp_is_ignored() {
        let dir = temp_dir("tmp");
        Lease::advance(&dir, 5).unwrap();
        fs::write(dir.join("LEASE.tmp"), b"garbage from a crashed advance").unwrap();
        assert_eq!(Lease::load(&dir).unwrap().unwrap().epoch, 1);
        assert_eq!(Lease::advance(&dir, 6).unwrap().epoch, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
