//! Randomised (seeded, fully deterministic) tests of the event-driven
//! simulator: at quiescence, a combinational DAG's node values equal the
//! direct recursive evaluation of its gates — event ordering and delays
//! must not matter for the final state.

use std::collections::HashMap;
use stem_core::prng::SplitMix64;
use stem_sim::{FlatElement, FlatNetlist, Level, NodeId, PrimitiveKind, Simulator};

const ITERS: usize = 64;

const KINDS: [PrimitiveKind; 7] = [
    PrimitiveKind::Inverter,
    PrimitiveKind::Buffer,
    PrimitiveKind::And,
    PrimitiveKind::Nand,
    PrimitiveKind::Or,
    PrimitiveKind::Nor,
    PrimitiveKind::Xor,
];

/// Builds a random combinational DAG: `n_inputs` primary inputs followed
/// by `gates` gate outputs, each gate reading earlier nodes only.
fn random_dag(
    n_inputs: usize,
    gate_seeds: &[(usize, u64)],
) -> (FlatNetlist, Vec<NodeId>, Vec<NodeId>) {
    let mut elements = Vec::new();
    let mut n_nodes = n_inputs;
    for &(kind_ix, seed) in gate_seeds {
        let kind = KINDS[kind_ix % KINDS.len()];
        let n_in = match kind {
            PrimitiveKind::Inverter | PrimitiveKind::Buffer => 1,
            _ => 2,
        };
        let inputs: Vec<NodeId> = (0..n_in)
            .map(|k| {
                let pick = (seed.rotate_left(k as u32 * 13)) as usize % n_nodes;
                NodeId::from_index(pick)
            })
            .collect();
        let output = NodeId::from_index(n_nodes);
        elements.push(FlatElement {
            path: format!("g{n_nodes}"),
            kind,
            inputs,
            output,
            delay_ps: 1 + (seed % 97),
            setup_ps: 0,
        });
        n_nodes += 1;
    }
    let mut ports = HashMap::new();
    for i in 0..n_inputs {
        ports.insert(format!("in{i}"), NodeId::from_index(i));
    }
    let inputs: Vec<NodeId> = (0..n_inputs).map(NodeId::from_index).collect();
    let outputs: Vec<NodeId> = (n_inputs..n_nodes).map(NodeId::from_index).collect();
    (
        FlatNetlist {
            nodes: (0..n_nodes).map(|i| format!("n{i}")).collect(),
            elements,
            ports,
        },
        inputs,
        outputs,
    )
}

/// Direct reference evaluation (topological — gates read earlier nodes).
fn reference_eval(nl: &FlatNetlist, input_levels: &[Level]) -> Vec<Level> {
    let mut values = vec![Level::X; nl.n_nodes()];
    values[..input_levels.len()].copy_from_slice(input_levels);
    for e in &nl.elements {
        let ins: Vec<Level> = e.inputs.iter().map(|n| values[n.index()]).collect();
        if let Some(out) = e.kind.eval(&ins) {
            values[e.output.index()] = out;
        }
    }
    values
}

fn random_gate_seeds(rng: &mut SplitMix64, max_gates: usize) -> Vec<(usize, u64)> {
    (0..rng.range_usize(1, max_gates))
        .map(|_| (rng.range_usize(0, 7), rng.next_u64()))
        .collect()
}

#[test]
fn quiescent_state_matches_direct_evaluation() {
    let mut rng = SplitMix64::new(0x51_01);
    for _ in 0..ITERS {
        let n_inputs = rng.range_usize(1, 6);
        let gate_seeds = random_gate_seeds(&mut rng, 40);
        let input_bits = rng.next_u64() as u32;
        let (nl, inputs, _) = random_dag(n_inputs, &gate_seeds);
        let mut sim = Simulator::new(nl.clone());
        let levels: Vec<Level> = (0..n_inputs)
            .map(|i| Level::from_bool(input_bits >> i & 1 == 1))
            .collect();
        for (node, &level) in inputs.iter().zip(&levels) {
            sim.drive(*node, level, 0);
        }
        sim.run_to_quiescence().unwrap();
        let expect = reference_eval(&nl, &levels);
        for (i, &want) in expect.iter().enumerate() {
            let node = NodeId::from_index(i);
            assert_eq!(
                sim.value(node),
                want,
                "node {} of {} gates",
                i,
                gate_seeds.len()
            );
        }
    }
}

/// Re-driving the same inputs is idempotent (no residual events).
#[test]
fn redriving_same_inputs_is_quiet() {
    let mut rng = SplitMix64::new(0x51_02);
    for _ in 0..ITERS {
        let n_inputs = rng.range_usize(1, 5);
        let gate_seeds = random_gate_seeds(&mut rng, 20);
        let input_bits = rng.next_u64() as u32;
        let (nl, inputs, outputs) = random_dag(n_inputs, &gate_seeds);
        let mut sim = Simulator::new(nl);
        for (i, node) in inputs.iter().enumerate() {
            sim.drive(*node, Level::from_bool(input_bits >> i & 1 == 1), 0);
        }
        sim.run_to_quiescence().unwrap();
        let before: Vec<Level> = outputs.iter().map(|&n| sim.value(n)).collect();
        let t = sim.time() + 10;
        for (i, node) in inputs.iter().enumerate() {
            sim.drive(*node, Level::from_bool(input_bits >> i & 1 == 1), t);
        }
        sim.run_to_quiescence().unwrap();
        let after: Vec<Level> = outputs.iter().map(|&n| sim.value(n)).collect();
        assert_eq!(before, after);
    }
}
