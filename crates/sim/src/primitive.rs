//! Primitive cell behaviours for the gate-level simulator, and the
//! registry mapping design cell classes to them.

use crate::level::Level;
use std::collections::HashMap;
use stem_design::CellClassId;

/// Behaviour of a leaf (primitive) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveKind {
    /// One input, one output, inverted.
    Inverter,
    /// One input, one output.
    Buffer,
    /// N inputs AND.
    And,
    /// N inputs NAND.
    Nand,
    /// N inputs OR.
    Or,
    /// N inputs NOR.
    Nor,
    /// N inputs XOR (parity).
    Xor,
    /// Positive-edge-triggered D flip-flop; inputs `[d, clk]`, output `q`.
    Dff,
    /// Constant driver.
    Const(Level),
}

impl PrimitiveKind {
    /// Combinationally evaluates the output from `inputs`; `Dff` and
    /// `Const` are handled by the simulator itself and return `None` here.
    pub fn eval(self, inputs: &[Level]) -> Option<Level> {
        let fold = |init: Level, f: fn(Level, Level) -> Level| inputs.iter().copied().fold(init, f);
        match self {
            PrimitiveKind::Inverter => Some(inputs.first()?.not()),
            PrimitiveKind::Buffer => Some(*inputs.first()?),
            PrimitiveKind::And => Some(fold(Level::L1, Level::and)),
            PrimitiveKind::Nand => Some(fold(Level::L1, Level::and).not()),
            PrimitiveKind::Or => Some(fold(Level::L0, Level::or)),
            PrimitiveKind::Nor => Some(fold(Level::L0, Level::or).not()),
            PrimitiveKind::Xor => Some(fold(Level::L0, Level::xor)),
            PrimitiveKind::Dff | PrimitiveKind::Const(_) => None,
        }
    }

    /// Deck card letter for the SPICE-like writer.
    pub fn card(self) -> &'static str {
        match self {
            PrimitiveKind::Inverter => "XINV",
            PrimitiveKind::Buffer => "XBUF",
            PrimitiveKind::And => "XAND",
            PrimitiveKind::Nand => "XNAND",
            PrimitiveKind::Or => "XOR",
            PrimitiveKind::Nor => "XNOR",
            PrimitiveKind::Xor => "XXOR",
            PrimitiveKind::Dff => "XDFF",
            PrimitiveKind::Const(_) => "V",
        }
    }
}

/// How a design cell class maps to a primitive: behaviour, ordered input
/// signal names, the output signal name, and a propagation delay.
#[derive(Debug, Clone)]
pub struct PrimitiveSpec {
    /// Behaviour.
    pub kind: PrimitiveKind,
    /// Input signal names, in evaluation order (`[d, clk]` for `Dff`).
    pub inputs: Vec<String>,
    /// Output signal name.
    pub output: String,
    /// Propagation delay in picoseconds.
    pub delay_ps: u64,
    /// Setup time in picoseconds (sequential elements): an input changing
    /// within this window before a sampling clock edge yields `X` and a
    /// recorded timing violation. Zero disables the check.
    pub setup_ps: u64,
}

impl PrimitiveSpec {
    /// Convenience constructor for a purely combinational spec
    /// (`setup_ps = 0`).
    pub fn combinational(
        kind: PrimitiveKind,
        inputs: Vec<String>,
        output: impl Into<String>,
        delay_ps: u64,
    ) -> Self {
        PrimitiveSpec {
            kind,
            inputs,
            output: output.into(),
            delay_ps,
            setup_ps: 0,
        }
    }
}

/// Registry of primitive cell classes — the simulator's "model library".
#[derive(Debug, Clone, Default)]
pub struct PrimitiveLibrary {
    specs: HashMap<CellClassId, PrimitiveSpec>,
}

impl PrimitiveLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class as a primitive.
    pub fn register(&mut self, class: CellClassId, spec: PrimitiveSpec) {
        self.specs.insert(class, spec);
    }

    /// The spec of a class, if primitive.
    pub fn spec(&self, class: CellClassId) -> Option<&PrimitiveSpec> {
        self.specs.get(&class)
    }

    /// Whether a class is a registered primitive.
    pub fn is_primitive(&self, class: CellClassId) -> bool {
        self.specs.contains_key(&class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_truth_tables() {
        use Level::*;
        assert_eq!(PrimitiveKind::Inverter.eval(&[L0]), Some(L1));
        assert_eq!(PrimitiveKind::Buffer.eval(&[L1]), Some(L1));
        assert_eq!(PrimitiveKind::And.eval(&[L1, L1, L1]), Some(L1));
        assert_eq!(PrimitiveKind::And.eval(&[L1, L0]), Some(L0));
        assert_eq!(PrimitiveKind::Nand.eval(&[L1, L1]), Some(L0));
        assert_eq!(PrimitiveKind::Or.eval(&[L0, L0]), Some(L0));
        assert_eq!(PrimitiveKind::Nor.eval(&[L0, L0]), Some(L1));
        assert_eq!(PrimitiveKind::Xor.eval(&[L1, L1, L1]), Some(L1));
        assert_eq!(PrimitiveKind::Xor.eval(&[L1, L1]), Some(L0));
        assert_eq!(PrimitiveKind::Dff.eval(&[L1, L1]), None);
    }

    #[test]
    fn empty_input_gates() {
        assert_eq!(PrimitiveKind::Inverter.eval(&[]), None);
        assert_eq!(
            PrimitiveKind::And.eval(&[]),
            Some(Level::L1),
            "empty AND identity"
        );
        assert_eq!(PrimitiveKind::Or.eval(&[]), Some(Level::L0));
    }

    #[test]
    fn library_roundtrip() {
        let mut d = stem_design::Design::new();
        let inv = d.define_class("INV");
        let mut lib = PrimitiveLibrary::new();
        assert!(!lib.is_primitive(inv));
        lib.register(
            inv,
            PrimitiveSpec {
                kind: PrimitiveKind::Inverter,
                inputs: vec!["a".into()],
                output: "y".into(),
                delay_ps: 100,
                setup_ps: 0,
            },
        );
        assert!(lib.is_primitive(inv));
        assert_eq!(lib.spec(inv).unwrap().delay_ps, 100);
    }
}
