//! The simulation session façade — Fig. 6.3's SpiceNet / SpiceSimulation /
//! SpicePlot round trip: extract the netlist (file-out), run the external
//! analysis engine, read results back (file-in), and mark everything
//! outdated when the cell's netlist changes.

use crate::deck::{write_deck, Deck};
use crate::flatten::{flatten, FlatNetlist, FlattenError};
use crate::primitive::PrimitiveLibrary;
use crate::simulator::Simulator;
use std::cell::Cell;
use std::rc::Rc;

use stem_design::{CellClassId, ChangeKey, Design, ViewHandle};

/// A simulation session bound to one cell: deck + netlist + outdating.
#[derive(Debug)]
pub struct SimSession {
    top: CellClassId,
    deck: Deck,
    netlist: FlatNetlist,
    outdated: Rc<Cell<bool>>,
    handle: ViewHandle,
}

impl SimSession {
    /// Extracts the cell's netlist and opens a session. The session is
    /// marked outdated whenever the cell's connectivity changes
    /// (`#changed` with a netlist-affecting key, §6.4.2: "all
    /// SpiceSimulation and SpicePlot windows on a cell are marked outdated
    /// when the cell's net-list is changed"). Pure layout changes do not
    /// outdate it.
    ///
    /// # Errors
    ///
    /// See [`FlattenError`].
    pub fn open(
        d: &mut Design,
        lib: &PrimitiveLibrary,
        top: CellClassId,
    ) -> Result<Self, FlattenError> {
        let netlist = flatten(d, lib, top)?;
        let deck = write_deck(d.class_name(top), &netlist);
        let outdated = Rc::new(Cell::new(false));
        let flag = outdated.clone();
        let handle = d.register_view(top, move |key| {
            if matches!(key, ChangeKey::Netlist | ChangeKey::Structure) {
                flag.set(true);
            }
        });
        Ok(SimSession {
            top,
            deck,
            netlist,
            outdated,
            handle,
        })
    }

    /// The cell under simulation.
    pub fn model(&self) -> CellClassId {
        self.top
    }

    /// Whether the design changed since extraction.
    pub fn is_outdated(&self) -> bool {
        self.outdated.get()
    }

    /// The extracted SPICE-like deck (the file-out text).
    pub fn deck(&self) -> &Deck {
        &self.deck
    }

    /// The extracted flat netlist.
    pub fn netlist(&self) -> &FlatNetlist {
        &self.netlist
    }

    /// Re-extracts after design changes.
    ///
    /// # Errors
    ///
    /// See [`FlattenError`].
    pub fn refresh(&mut self, d: &mut Design, lib: &PrimitiveLibrary) -> Result<(), FlattenError> {
        self.netlist = flatten(d, lib, self.top)?;
        self.deck = write_deck(d.class_name(self.top), &self.netlist);
        self.outdated.set(false);
        Ok(())
    }

    /// Launches the "external process": a fresh simulator over the
    /// extracted netlist. Control returns immediately (the thesis runs
    /// SPICE in the background); the caller drives stimuli and collects
    /// waveforms.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(self.netlist.clone())
    }

    /// Closes the session, unregistering the outdating callback.
    pub fn close(self, d: &mut Design) {
        d.unregister_view(self.handle);
    }
}
