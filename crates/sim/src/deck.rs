//! SPICE-like deck writing — the `SpiceNet` analog (thesis §6.4.2):
//! "SpiceNet maintains correspondence pointers between words in a SPICE
//! net-list and the actual subcells and nets, abstracting a database cell
//! into a paragraph of text."

use crate::flatten::FlatNetlist;
use crate::primitive::PrimitiveKind;
use std::fmt::Write as _;

/// A rendered deck plus the correspondence map from text lines back to
/// netlist elements.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The deck text.
    pub text: String,
    /// For each line of `text`, the element index it describes (comment,
    /// port and control lines map to `None`).
    pub element_of_line: Vec<Option<usize>>,
}

impl Deck {
    /// The element described by a given (0-based) line, if any.
    pub fn element_at_line(&self, line: usize) -> Option<usize> {
        self.element_of_line.get(line).copied().flatten()
    }

    /// Number of element cards in the deck.
    pub fn n_cards(&self) -> usize {
        self.element_of_line.iter().filter(|e| e.is_some()).count()
    }
}

/// Renders a flat netlist as a SPICE-like deck.
pub fn write_deck(title: &str, netlist: &FlatNetlist) -> Deck {
    let mut text = String::new();
    let mut map: Vec<Option<usize>> = Vec::new();
    let push =
        |text: &mut String, map: &mut Vec<Option<usize>>, line: String, el: Option<usize>| {
            let _ = writeln!(text, "{line}");
            map.push(el);
        };
    push(&mut text, &mut map, format!("* {title}"), None);
    push(
        &mut text,
        &mut map,
        format!(
            "* {} nodes, {} elements",
            netlist.n_nodes(),
            netlist.elements.len()
        ),
        None,
    );
    let mut ports: Vec<(&String, _)> = netlist.ports.iter().collect();
    ports.sort();
    for (name, node) in ports {
        push(&mut text, &mut map, format!("* .PORT {name} {node}"), None);
    }
    for (i, e) in netlist.elements.iter().enumerate() {
        let mut line = format!("{}_{} {}", e.kind.card(), sanitize(&e.path), e.output);
        for input in &e.inputs {
            let _ = write!(line, " {input}");
        }
        match e.kind {
            PrimitiveKind::Const(level) => {
                let _ = write!(line, " DC {level}");
            }
            _ => {
                let _ = write!(line, " TD={}PS", e.delay_ps);
            }
        }
        push(&mut text, &mut map, line, Some(i));
    }
    push(&mut text, &mut map, ".END".to_string(), None);
    Deck {
        text,
        element_of_line: map,
    }
}

fn sanitize(path: &str) -> String {
    path.replace(['/', ':', '.'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::{FlatElement, NodeId};
    use crate::level::Level;
    use std::collections::HashMap;

    fn sample() -> FlatNetlist {
        FlatNetlist {
            nodes: vec!["a".into(), "y".into(), "vdd".into()],
            elements: vec![
                FlatElement {
                    path: "top/i1".into(),
                    kind: PrimitiveKind::Inverter,
                    inputs: vec![NodeId(0)],
                    output: NodeId(1),
                    delay_ps: 120,
                    setup_ps: 0,
                },
                FlatElement {
                    path: "top/v1".into(),
                    kind: PrimitiveKind::Const(Level::L1),
                    inputs: vec![],
                    output: NodeId(2),
                    delay_ps: 0,
                    setup_ps: 0,
                },
            ],
            ports: HashMap::from([("a".to_string(), NodeId(0)), ("y".to_string(), NodeId(1))]),
        }
    }

    #[test]
    fn deck_structure() {
        let deck = write_deck("test circuit", &sample());
        assert!(deck.text.starts_with("* test circuit\n"));
        assert!(deck.text.contains("XINV_top_i1 n1 n0 TD=120PS"));
        assert!(deck.text.contains("V_top_v1 n2 DC 1"));
        assert!(deck.text.trim_end().ends_with(".END"));
        assert!(deck.text.contains("* .PORT a n0"));
        assert_eq!(deck.n_cards(), 2);
    }

    #[test]
    fn correspondence_map_points_back() {
        let deck = write_deck("t", &sample());
        let lines: Vec<&str> = deck.text.lines().collect();
        let inv_line = lines.iter().position(|l| l.starts_with("XINV")).unwrap();
        assert_eq!(deck.element_at_line(inv_line), Some(0));
        assert_eq!(deck.element_at_line(0), None, "title line");
    }
}
