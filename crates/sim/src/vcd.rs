//! Value-change-dump (VCD) export of recorded waveforms, so simulation
//! results can be viewed in standard waveform tools — the productionised
//! version of the thesis's SpicePlot output window (Fig. 6.3).

use crate::flatten::NodeId;
use crate::level::Level;
use crate::simulator::Simulator;
use std::fmt::Write as _;

fn code(i: usize) -> String {
    // Printable identifier codes, base-94 starting at '!'.
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn vcd_level(l: Level) -> char {
    match l {
        Level::L0 => '0',
        Level::L1 => '1',
        Level::X => 'x',
        Level::Z => 'z',
    }
}

/// Renders the recorded traces of `signals` as a VCD document (timescale
/// 1 ps). Nodes must have been [`Simulator::record`]ed before simulation.
pub fn write_vcd(sim: &Simulator, signals: &[(&str, NodeId)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$timescale 1ps $end");
    let _ = writeln!(out, "$scope module top $end");
    for (i, (name, _)) in signals.iter().enumerate() {
        let _ = writeln!(out, "$var wire 1 {} {} $end", code(i), name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values: x for everything (the simulator's power-up state).
    let _ = writeln!(out, "$dumpvars");
    for (i, _) in signals.iter().enumerate() {
        let _ = writeln!(out, "x{}", code(i));
    }
    let _ = writeln!(out, "$end");

    // Merge-sort all transitions by time.
    let mut events: Vec<(u64, usize, Level)> = Vec::new();
    for (i, (_, node)) in signals.iter().enumerate() {
        for &(t, l) in sim.trace(*node) {
            events.push((t, i, l));
        }
    }
    events.sort();
    let mut current_t: Option<u64> = None;
    for (t, i, l) in events {
        if current_t != Some(t) {
            let _ = writeln!(out, "#{t}");
            current_t = Some(t);
        }
        let _ = writeln!(out, "{}{}", vcd_level(l), code(i));
    }
    let _ = writeln!(out, "#{}", sim.time().max(current_t.unwrap_or(0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::{FlatElement, FlatNetlist};
    use crate::primitive::PrimitiveKind;
    use std::collections::HashMap;

    #[test]
    fn identifier_codes_are_printable_and_distinct() {
        let codes: Vec<String> = (0..200).map(code).collect();
        for c in &codes {
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)), "{c:?}");
        }
        let set: std::collections::HashSet<_> = codes.iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn vcd_structure() {
        let nl = FlatNetlist {
            nodes: vec!["a".into(), "y".into()],
            elements: vec![FlatElement {
                path: "i".into(),
                kind: PrimitiveKind::Inverter,
                inputs: vec![NodeId(0)],
                output: NodeId(1),
                delay_ps: 100,
                setup_ps: 0,
            }],
            ports: HashMap::from([("a".to_string(), NodeId(0)), ("y".to_string(), NodeId(1))]),
        };
        let mut sim = Simulator::new(nl);
        let (a, y) = (sim.port("a").unwrap(), sim.port("y").unwrap());
        sim.record(a);
        sim.record(y);
        sim.drive(a, Level::L0, 0);
        sim.drive(a, Level::L1, 500);
        sim.run_to_quiescence().unwrap();

        let vcd = write_vcd(&sim, &[("a", a), ("y", y)]);
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var wire 1 \" y $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        // a falls at 0, y rises at 100, a rises at 500, y falls at 600.
        assert!(vcd.contains("#0\n0!"), "{vcd}");
        assert!(vcd.contains("#100\n1\""), "{vcd}");
        assert!(vcd.contains("#500\n1!"), "{vcd}");
        assert!(vcd.contains("#600\n0\""), "{vcd}");
    }
}
