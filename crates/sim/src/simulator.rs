//! Event-driven gate-level simulation over a [`FlatNetlist`] — the
//! analysis engine standing in for the external SPICE process of thesis
//! §6.4.2 (see DESIGN.md, substitution table).

use crate::flatten::{FlatNetlist, NodeId};
use crate::level::Level;
use crate::primitive::PrimitiveKind;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted before quiescence — usually an
    /// oscillating combinational loop.
    Oscillation {
        /// Events processed before giving up.
        events: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oscillation { events } => {
                write!(f, "no quiescence after {events} events (oscillation?)")
            }
        }
    }
}

impl Error for SimError {}

type Event = (u64, u64, NodeId, Level); // (time, seq, node, level)

/// A recorded setup-time violation: a sequential element sampled an input
/// that changed within its setup window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// Hierarchical path of the offending element.
    pub element: String,
    /// Time of the sampling clock edge (ps).
    pub at: u64,
    /// How long before the edge the data input last changed (ps).
    pub data_age: u64,
    /// The element's required setup time (ps).
    pub required: u64,
}

/// The event-driven simulator.
///
/// All nodes start at [`Level::X`]; constant elements fire at t = 0;
/// stimuli are scheduled with [`Simulator::drive`]. Time is in
/// picoseconds.
#[derive(Debug)]
pub struct Simulator {
    netlist: FlatNetlist,
    values: Vec<Level>,
    queue: BinaryHeap<Reverse<Event>>,
    /// Element indices to re-evaluate when a node changes.
    fanout: Vec<Vec<usize>>,
    traces: HashMap<NodeId, Vec<(u64, Level)>>,
    /// Last transition time per node (for setup checks).
    last_change: Vec<u64>,
    timing_violations: Vec<TimingViolation>,
    time: u64,
    seq: u64,
    events_processed: usize,
    /// Event budget for [`Simulator::run_to_quiescence`].
    pub max_events: usize,
}

impl Simulator {
    /// Creates a simulator over a flattened netlist.
    pub fn new(netlist: FlatNetlist) -> Self {
        let n = netlist.n_nodes();
        let mut fanout = vec![Vec::new(); n];
        for (i, e) in netlist.elements.iter().enumerate() {
            for &input in &e.inputs {
                fanout[input.index()].push(i);
            }
        }
        let mut sim = Simulator {
            netlist,
            values: vec![Level::X; n],
            queue: BinaryHeap::new(),
            fanout,
            traces: HashMap::new(),
            last_change: vec![0; n],
            timing_violations: Vec::new(),
            time: 0,
            seq: 0,
            events_processed: 0,
            max_events: 1_000_000,
        };
        // Constant sources fire at t = 0.
        for i in 0..sim.netlist.elements.len() {
            if let PrimitiveKind::Const(level) = sim.netlist.elements[i].kind {
                let out = sim.netlist.elements[i].output;
                sim.schedule(0, out, level);
            }
        }
        sim
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &FlatNetlist {
        &self.netlist
    }

    /// Current simulation time (ps).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Node of a top-level port.
    pub fn port(&self, name: &str) -> Option<NodeId> {
        self.netlist.port(name)
    }

    /// Current level of a node.
    pub fn value(&self, node: NodeId) -> Level {
        self.values[node.index()]
    }

    /// Schedules an external stimulus.
    ///
    /// # Panics
    ///
    /// Panics when driving into the past.
    pub fn drive(&mut self, node: NodeId, level: Level, at: u64) {
        assert!(at >= self.time, "cannot drive into the past");
        self.schedule(at, node, level);
    }

    /// Starts recording a node's waveform.
    pub fn record(&mut self, node: NodeId) {
        self.traces.entry(node).or_default();
    }

    /// The recorded waveform of a node (empty unless [`record`]ed).
    ///
    /// [`record`]: Simulator::record
    pub fn trace(&self, node: NodeId) -> &[(u64, Level)] {
        self.traces.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Time of the last recorded transition on a node.
    pub fn last_event(&self, node: NodeId) -> Option<u64> {
        self.trace(node).last().map(|&(t, _)| t)
    }

    fn schedule(&mut self, at: u64, node: NodeId, level: Level) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, node, level)));
    }

    /// Processes events up to and including time `until`. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, until: u64) -> usize {
        let mut processed = 0;
        while let Some(&Reverse((t, ..))) = self.queue.peek() {
            if t > until {
                break;
            }
            self.step();
            processed += 1;
        }
        self.time = self.time.max(until);
        processed
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] when `max_events` is exhausted.
    pub fn run_to_quiescence(&mut self) -> Result<u64, SimError> {
        let start = self.events_processed;
        while !self.queue.is_empty() {
            if self.events_processed - start >= self.max_events {
                return Err(SimError::Oscillation {
                    events: self.events_processed - start,
                });
            }
            self.step();
        }
        Ok(self.time)
    }

    fn step(&mut self) {
        let Some(Reverse((t, _, node, level))) = self.queue.pop() else {
            return;
        };
        self.time = t;
        self.events_processed += 1;
        let old = self.values[node.index()];
        if old == level {
            return;
        }
        self.values[node.index()] = level;
        self.last_change[node.index()] = t;
        if let Some(tr) = self.traces.get_mut(&node) {
            tr.push((t, level));
        }
        for &ei in self.fanout[node.index()].clone().iter() {
            self.eval_element(ei, node, old, t);
        }
    }

    fn eval_element(&mut self, ei: usize, changed: NodeId, old: Level, now: u64) {
        let (kind, inputs, output, delay, setup) = {
            let e = &self.netlist.elements[ei];
            (e.kind, e.inputs.clone(), e.output, e.delay_ps, e.setup_ps)
        };
        match kind {
            PrimitiveKind::Dff => {
                // inputs = [d, clk]; positive edge on clk samples d.
                if inputs.len() != 2 {
                    return;
                }
                let clk = inputs[1];
                if changed == clk {
                    let new_clk = self.values[clk.index()];
                    // A rising edge is a clean 0→1; transitions through X
                    // do not sample.
                    let rising = old == Level::L0 && new_clk == Level::L1;
                    if rising {
                        let d_node = inputs[0];
                        let mut d = self.values[d_node.index()];
                        // Setup check: data changing within the setup
                        // window before the edge samples metastably (X).
                        let data_age = now.saturating_sub(self.last_change[d_node.index()]);
                        if setup > 0 && data_age < setup {
                            self.timing_violations.push(TimingViolation {
                                element: self.netlist.elements[ei].path.clone(),
                                at: now,
                                data_age,
                                required: setup,
                            });
                            d = Level::X;
                        }
                        self.schedule(now + delay, output, d);
                    }
                }
            }
            PrimitiveKind::Const(_) => {}
            _ => {
                let levels: Vec<Level> = inputs.iter().map(|&n| self.values[n.index()]).collect();
                if let Some(out) = kind.eval(&levels) {
                    self.schedule(now + delay, output, out);
                }
            }
        }
    }

    /// Setup-time violations recorded so far (in detection order).
    pub fn timing_violations(&self) -> &[TimingViolation] {
        &self.timing_violations
    }

    /// Propagation delay measured between the last recorded transitions of
    /// two nodes (both must be recorded).
    pub fn measure_delay(&self, from: NodeId, to: NodeId) -> Option<u64> {
        let tf = self.last_event(from)?;
        let tt = self.last_event(to)?;
        tt.checked_sub(tf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::FlatElement;
    use std::collections::HashMap;

    /// Hand-built netlist helper.
    fn netlist(n_nodes: usize, elements: Vec<FlatElement>, ports: &[(&str, u32)]) -> FlatNetlist {
        FlatNetlist {
            nodes: (0..n_nodes).map(|i| format!("n{i}")).collect(),
            elements,
            ports: ports
                .iter()
                .map(|(name, id)| (name.to_string(), NodeId(*id)))
                .collect(),
        }
    }

    fn el(kind: PrimitiveKind, inputs: &[u32], output: u32, delay: u64) -> FlatElement {
        FlatElement {
            path: "t".into(),
            kind,
            inputs: inputs.iter().map(|&i| NodeId(i)).collect(),
            output: NodeId(output),
            delay_ps: delay,
            setup_ps: 0,
        }
    }

    #[test]
    fn inverter_chain_accumulates_delay() {
        let nl = netlist(
            4,
            vec![
                el(PrimitiveKind::Inverter, &[0], 1, 100),
                el(PrimitiveKind::Inverter, &[1], 2, 100),
                el(PrimitiveKind::Inverter, &[2], 3, 100),
            ],
            &[("in", 0), ("out", 3)],
        );
        let mut sim = Simulator::new(nl);
        let (a, y) = (sim.port("in").unwrap(), sim.port("out").unwrap());
        sim.record(a);
        sim.record(y);
        sim.drive(a, Level::L0, 0);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(y), Level::L1);
        sim.drive(a, Level::L1, 1000);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(y), Level::L0);
        assert_eq!(sim.measure_delay(a, y), Some(300));
    }

    #[test]
    fn nand_gate_truth() {
        let nl = netlist(
            3,
            vec![el(PrimitiveKind::Nand, &[0, 1], 2, 50)],
            &[("a", 0), ("b", 1), ("y", 2)],
        );
        let mut sim = Simulator::new(nl);
        let (a, b, y) = (
            sim.port("a").unwrap(),
            sim.port("b").unwrap(),
            sim.port("y").unwrap(),
        );
        let check = |va: Level, vb: Level, expect: Level, sim: &mut Simulator| {
            let t = sim.time() + 10;
            sim.drive(a, va, t);
            sim.drive(b, vb, t);
            sim.run_to_quiescence().unwrap();
            assert_eq!(sim.value(y), expect, "{va} NAND {vb}");
        };
        check(Level::L0, Level::L0, Level::L1, &mut sim);
        check(Level::L0, Level::L1, Level::L1, &mut sim);
        check(Level::L1, Level::L0, Level::L1, &mut sim);
        check(Level::L1, Level::L1, Level::L0, &mut sim);
    }

    #[test]
    fn dff_samples_on_rising_edge() {
        let nl = netlist(
            3,
            vec![el(PrimitiveKind::Dff, &[0, 1], 2, 20)],
            &[("d", 0), ("clk", 1), ("q", 2)],
        );
        let mut sim = Simulator::new(nl);
        let (dn, clk, q) = (
            sim.port("d").unwrap(),
            sim.port("clk").unwrap(),
            sim.port("q").unwrap(),
        );
        sim.drive(clk, Level::L0, 0);
        sim.drive(dn, Level::L1, 10);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Level::X, "not clocked yet");
        sim.drive(clk, Level::L1, 100);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Level::L1, "sampled d on rising edge");
        // d changes while clk high: q holds.
        sim.drive(dn, Level::L0, 200);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Level::L1);
        // Falling edge: no sample.
        sim.drive(clk, Level::L0, 300);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Level::L1);
        // Next rising edge samples the new d.
        sim.drive(clk, Level::L1, 400);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Level::L0);
    }

    #[test]
    fn const_drives_at_time_zero() {
        let nl = netlist(
            2,
            vec![
                el(PrimitiveKind::Const(Level::L1), &[], 0, 0),
                el(PrimitiveKind::Inverter, &[0], 1, 10),
            ],
            &[("y", 1)],
        );
        let mut sim = Simulator::new(nl);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(sim.port("y").unwrap()), Level::L0);
    }

    #[test]
    fn ring_oscillator_detected() {
        // Odd inverter ring oscillates forever.
        let nl = netlist(
            3,
            vec![
                el(PrimitiveKind::Inverter, &[0], 1, 10),
                el(PrimitiveKind::Inverter, &[1], 2, 10),
                el(PrimitiveKind::Inverter, &[2], 0, 10),
            ],
            &[("a", 0)],
        );
        let mut sim = Simulator::new(nl);
        sim.max_events = 1000;
        let a = sim.port("a").unwrap();
        sim.drive(a, Level::L0, 0);
        let err = sim.run_to_quiescence().unwrap_err();
        assert!(matches!(err, SimError::Oscillation { .. }));
    }

    #[test]
    fn run_until_stops_at_time() {
        let nl = netlist(
            2,
            vec![el(PrimitiveKind::Buffer, &[0], 1, 500)],
            &[("a", 0), ("y", 1)],
        );
        let mut sim = Simulator::new(nl);
        let (a, y) = (sim.port("a").unwrap(), sim.port("y").unwrap());
        sim.drive(a, Level::L1, 0);
        sim.run_until(100);
        assert_eq!(sim.value(y), Level::X, "output event still pending");
        sim.run_until(500);
        assert_eq!(sim.value(y), Level::L1);
    }

    #[test]
    fn traces_record_transitions() {
        let nl = netlist(
            2,
            vec![el(PrimitiveKind::Inverter, &[0], 1, 10)],
            &[("a", 0), ("y", 1)],
        );
        let mut sim = Simulator::new(nl);
        let (a, y) = (sim.port("a").unwrap(), sim.port("y").unwrap());
        sim.record(y);
        sim.drive(a, Level::L0, 0);
        sim.drive(a, Level::L1, 100);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.trace(y), &[(10, Level::L1), (110, Level::L0)]);
        let _ = HashMap::<u8, u8>::new();
    }
}
