use std::fmt;

/// A four-valued logic level (IEEE-1164 subset): the value set of the
/// gate-level simulator standing in for SPICE's analog waveforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// Logic low.
    L0,
    /// Logic high.
    L1,
    /// Unknown (uninitialised or conflicting).
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl Level {
    /// From a boolean.
    pub fn from_bool(b: bool) -> Level {
        if b {
            Level::L1
        } else {
            Level::L0
        }
    }

    /// To a boolean, when determinate.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Level::L0 => Some(false),
            Level::L1 => Some(true),
            _ => None,
        }
    }

    /// Logical NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Level {
        match self {
            Level::L0 => Level::L1,
            Level::L1 => Level::L0,
            _ => Level::X,
        }
    }

    /// Logical AND with dominance: `0 AND x = 0` even for unknown `x`.
    pub fn and(self, other: Level) -> Level {
        match (self, other) {
            (Level::L0, _) | (_, Level::L0) => Level::L0,
            (Level::L1, Level::L1) => Level::L1,
            _ => Level::X,
        }
    }

    /// Logical OR with dominance: `1 OR x = 1`.
    pub fn or(self, other: Level) -> Level {
        match (self, other) {
            (Level::L1, _) | (_, Level::L1) => Level::L1,
            (Level::L0, Level::L0) => Level::L0,
            _ => Level::X,
        }
    }

    /// Logical XOR (unknown if either operand is unknown).
    pub fn xor(self, other: Level) -> Level {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Level::from_bool(a ^ b),
            _ => Level::X,
        }
    }

    /// Wired resolution of two drivers: `Z` yields, conflict gives `X`.
    pub fn resolve(self, other: Level) -> Level {
        match (self, other) {
            (Level::Z, x) | (x, Level::Z) => x,
            (a, b) if a == b => a,
            _ => Level::X,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::L0 => write!(f, "0"),
            Level::L1 => write!(f, "1"),
            Level::X => write!(f, "X"),
            Level::Z => write!(f, "Z"),
        }
    }
}

impl From<bool> for Level {
    fn from(b: bool) -> Self {
        Level::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_table() {
        assert_eq!(Level::L0.not(), Level::L1);
        assert_eq!(Level::L1.not(), Level::L0);
        assert_eq!(Level::X.not(), Level::X);
        assert_eq!(Level::Z.not(), Level::X);
    }

    #[test]
    fn and_dominance() {
        assert_eq!(Level::L0.and(Level::X), Level::L0);
        assert_eq!(Level::X.and(Level::L0), Level::L0);
        assert_eq!(Level::L1.and(Level::L1), Level::L1);
        assert_eq!(Level::L1.and(Level::X), Level::X);
        assert_eq!(Level::Z.and(Level::L1), Level::X);
    }

    #[test]
    fn or_dominance() {
        assert_eq!(Level::L1.or(Level::X), Level::L1);
        assert_eq!(Level::L0.or(Level::L0), Level::L0);
        assert_eq!(Level::L0.or(Level::X), Level::X);
    }

    #[test]
    fn xor_strictness() {
        assert_eq!(Level::L1.xor(Level::L0), Level::L1);
        assert_eq!(Level::L1.xor(Level::L1), Level::L0);
        assert_eq!(Level::L1.xor(Level::X), Level::X);
    }

    #[test]
    fn resolution() {
        assert_eq!(Level::Z.resolve(Level::L1), Level::L1);
        assert_eq!(Level::L0.resolve(Level::Z), Level::L0);
        assert_eq!(Level::L0.resolve(Level::L0), Level::L0);
        assert_eq!(Level::L0.resolve(Level::L1), Level::X);
        assert_eq!(Level::Z.resolve(Level::Z), Level::Z);
    }

    #[test]
    fn conversions() {
        assert_eq!(Level::from(true), Level::L1);
        assert_eq!(Level::L0.to_bool(), Some(false));
        assert_eq!(Level::X.to_bool(), None);
        assert_eq!(Level::L1.to_string(), "1");
    }
}
