//! Multi-bit bus conveniences over indexed port families (`a0`, `a1`, …),
//! the naming convention of the standard-cell library's datapath cells.

use crate::level::Level;
use crate::simulator::Simulator;

/// Drives the `width` ports `{prefix}0 … {prefix}{width-1}` with the bits
/// of `value` (bit *i* to port *i*) at time `at`.
///
/// # Panics
///
/// Panics if any port is missing.
pub fn drive_bus(sim: &mut Simulator, prefix: &str, width: usize, value: u64, at: u64) {
    for i in 0..width {
        let port = sim
            .port(&format!("{prefix}{i}"))
            .unwrap_or_else(|| panic!("no port {prefix}{i}"));
        sim.drive(port, Level::from_bool(value >> i & 1 == 1), at);
    }
}

/// Reads `{prefix}0 … {prefix}{width-1}` as an unsigned integer. Returns
/// `None` if any bit is indeterminate (`X`/`Z`).
///
/// # Panics
///
/// Panics if any port is missing.
pub fn read_bus(sim: &Simulator, prefix: &str, width: usize) -> Option<u64> {
    let mut out = 0u64;
    for i in 0..width {
        let port = sim
            .port(&format!("{prefix}{i}"))
            .unwrap_or_else(|| panic!("no port {prefix}{i}"));
        match sim.value(port).to_bool() {
            Some(true) => out |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::{FlatElement, FlatNetlist, NodeId};
    use crate::primitive::PrimitiveKind;
    use std::collections::HashMap;

    /// Two independent inverters as a 2-bit bus.
    fn netlist() -> FlatNetlist {
        FlatNetlist {
            nodes: (0..4).map(|i| format!("n{i}")).collect(),
            elements: vec![
                FlatElement {
                    path: "i0".into(),
                    kind: PrimitiveKind::Inverter,
                    inputs: vec![NodeId(0)],
                    output: NodeId(2),
                    delay_ps: 10,
                    setup_ps: 0,
                },
                FlatElement {
                    path: "i1".into(),
                    kind: PrimitiveKind::Inverter,
                    inputs: vec![NodeId(1)],
                    output: NodeId(3),
                    delay_ps: 10,
                    setup_ps: 0,
                },
            ],
            ports: HashMap::from([
                ("a0".to_string(), NodeId(0)),
                ("a1".to_string(), NodeId(1)),
                ("y0".to_string(), NodeId(2)),
                ("y1".to_string(), NodeId(3)),
            ]),
        }
    }

    #[test]
    fn roundtrip() {
        let mut sim = Simulator::new(netlist());
        drive_bus(&mut sim, "a", 2, 0b10, 0);
        sim.run_to_quiescence().unwrap();
        assert_eq!(read_bus(&sim, "a", 2), Some(0b10));
        assert_eq!(read_bus(&sim, "y", 2), Some(0b01), "inverted");
    }

    #[test]
    fn indeterminate_reads_none() {
        let sim = Simulator::new(netlist());
        assert_eq!(read_bus(&sim, "y", 2), None, "all X initially");
    }

    #[test]
    #[should_panic(expected = "no port a2")]
    fn missing_port_panics() {
        let mut sim = Simulator::new(netlist());
        drive_bus(&mut sim, "a", 3, 0, 0);
    }
}
