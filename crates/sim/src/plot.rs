//! Textual waveform rendering — the `SpicePlot` analog of thesis Fig. 6.3:
//! "graphical display and measurement of SPICE output waveforms", here as
//! terminal text with the same point-to-point measurement facilities the
//! thesis mentions.

use crate::flatten::NodeId;
use crate::level::Level;
use crate::simulator::Simulator;
use std::fmt::Write as _;

/// Renders recorded waveforms of `signals` over `[t0, t1]` picoseconds
/// into a fixed-width character plot. Levels map to `‾` (1), `_` (0),
/// `x` (unknown) and `z` (high-impedance); transitions print `|`.
///
/// Nodes must have been [`Simulator::record`]ed before simulation; without
/// a trace the initial level is assumed unknown.
pub fn render_waveforms(
    sim: &Simulator,
    signals: &[(&str, NodeId)],
    t0: u64,
    t1: u64,
    columns: usize,
) -> String {
    assert!(t1 > t0, "empty time window");
    assert!(columns >= 2, "too few columns");
    let label_width = signals
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0)
        .max(4);
    let dt = (t1 - t0) as f64 / columns as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:label_width$} {} ps .. {} ps ({:.0} ps/col)",
        "", t0, t1, dt
    );
    for (name, node) in signals {
        let _ = write!(out, "{name:label_width$} ");
        let mut prev: Option<Level> = None;
        for col in 0..columns {
            let t = t0 + ((col as f64 + 0.5) * dt) as u64;
            let level = level_at(sim, *node, t);
            let ch = match (prev, level) {
                (Some(p), l) if p != l => '|',
                (_, Level::L1) => '‾',
                (_, Level::L0) => '_',
                (_, Level::X) => 'x',
                (_, Level::Z) => 'z',
            };
            out.push(ch);
            prev = Some(level);
        }
        out.push('\n');
    }
    out
}

/// The level a recorded node held at time `t` (the last transition at or
/// before `t`; unknown before the first).
pub fn level_at(sim: &Simulator, node: NodeId, t: u64) -> Level {
    let trace = sim.trace(node);
    let mut level = Level::X;
    for &(time, l) in trace {
        if time > t {
            break;
        }
        level = l;
    }
    level
}

/// Point-to-point measurement (the thesis's SpicePlot measurements): time
/// of the `n`-th recorded transition of a node, if any.
pub fn nth_transition(sim: &Simulator, node: NodeId, n: usize) -> Option<u64> {
    sim.trace(node).get(n).map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::{FlatElement, FlatNetlist};
    use crate::primitive::PrimitiveKind;
    use std::collections::HashMap;

    fn inverter_netlist() -> FlatNetlist {
        FlatNetlist {
            nodes: vec!["a".into(), "y".into()],
            elements: vec![FlatElement {
                path: "i".into(),
                kind: PrimitiveKind::Inverter,
                inputs: vec![NodeId(0)],
                output: NodeId(1),
                delay_ps: 100,
                setup_ps: 0,
            }],
            ports: HashMap::from([("a".to_string(), NodeId(0)), ("y".to_string(), NodeId(1))]),
        }
    }

    #[test]
    fn renders_transitions() {
        let mut sim = Simulator::new(inverter_netlist());
        let (a, y) = (sim.port("a").unwrap(), sim.port("y").unwrap());
        sim.record(a);
        sim.record(y);
        sim.drive(a, Level::L0, 0);
        sim.drive(a, Level::L1, 500);
        sim.run_to_quiescence().unwrap();

        let plot = render_waveforms(&sim, &[("a", a), ("y", y)], 0, 1000, 20);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 3, "header + two signals");
        assert!(lines[1].contains('_'), "a starts low: {}", lines[1]);
        assert!(lines[1].contains('‾'), "a ends high: {}", lines[1]);
        assert!(lines[1].contains('|'), "transition marked: {}", lines[1]);
        assert!(lines[2].contains('‾') && lines[2].contains('_'));
    }

    #[test]
    fn level_lookup_and_measurement() {
        let mut sim = Simulator::new(inverter_netlist());
        let (a, y) = (sim.port("a").unwrap(), sim.port("y").unwrap());
        sim.record(y);
        sim.drive(a, Level::L0, 0);
        sim.run_to_quiescence().unwrap();
        assert_eq!(level_at(&sim, y, 50), Level::X, "before the gate settles");
        assert_eq!(level_at(&sim, y, 150), Level::L1);
        assert_eq!(nth_transition(&sim, y, 0), Some(100));
        assert_eq!(nth_transition(&sim, y, 1), None);
    }

    #[test]
    #[should_panic(expected = "empty time window")]
    fn rejects_empty_window() {
        let sim = Simulator::new(inverter_netlist());
        let a = sim.port("a").unwrap();
        let _ = render_waveforms(&sim, &[("a", a)], 10, 10, 10);
    }
}
