//! # stem-sim — the external analysis tool substitute (thesis §6.4.2)
//!
//! STEM integrates SPICE as an external program: net-lists are extracted
//! and filed out, the process runs in the background, and results are
//! filed back in, with all dependent windows marked outdated when the
//! cell's netlist changes. This crate reproduces that integration shape
//! with a self-contained analysis engine (see DESIGN.md, substitution
//! table): hierarchical netlist [`flatten`]ing over a [`PrimitiveLibrary`],
//! a SPICE-like deck writer with line↔element correspondence
//! ([`write_deck`]), an event-driven four-valued [`Simulator`], and the
//! [`SimSession`] façade tying them to a design cell with outdating.
//!
//! ```
//! use stem_sim::{flatten, PrimitiveKind, PrimitiveLibrary, PrimitiveSpec, Level};
//! use stem_design::{Design, SignalDir};
//! use stem_geom::Transform;
//!
//! let mut d = Design::new();
//! let inv = d.define_class("INV");
//! d.add_signal(inv, "a", SignalDir::Input);
//! d.add_signal(inv, "y", SignalDir::Output);
//! let mut lib = PrimitiveLibrary::new();
//! lib.register(inv, PrimitiveSpec {
//!     kind: PrimitiveKind::Inverter,
//!     inputs: vec!["a".into()],
//!     output: "y".into(),
//!     delay_ps: 100,
//!     setup_ps: 0,
//! });
//! let flat = flatten(&d, &lib, inv).unwrap();
//! let mut sim = stem_sim::Simulator::new(flat);
//! let (a, y) = (sim.port("a").unwrap(), sim.port("y").unwrap());
//! sim.drive(a, Level::L0, 0);
//! sim.run_to_quiescence().unwrap();
//! assert_eq!(sim.value(y), Level::L1);
//! ```

#![warn(missing_docs)]
mod bus;
mod deck;
mod flatten;
mod level;
mod plot;
mod primitive;
mod session;
mod simulator;
mod vcd;

pub use bus::{drive_bus, read_bus};
pub use deck::{write_deck, Deck};
pub use flatten::{flatten, FlatElement, FlatNetlist, FlattenError, NodeId};
pub use level::Level;
pub use plot::{level_at, nth_transition, render_waveforms};
pub use primitive::{PrimitiveKind, PrimitiveLibrary, PrimitiveSpec};
pub use session::SimSession;
pub use simulator::{SimError, Simulator, TimingViolation};
pub use vcd::write_vcd;
