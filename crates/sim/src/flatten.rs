//! Netlist extraction: flattening a hierarchical design into a flat net
//! list of primitive elements — the "extraction of SPICE net-lists"
//! (thesis §6.4.2) over the gate-level primitive library.

use crate::primitive::{PrimitiveKind, PrimitiveLibrary};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use stem_design::{CellClassId, Design};

/// Handle to a flat electrical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node handle from an index — for hand-built
    /// [`FlatNetlist`]s (whose fields are public precisely so tools and
    /// tests can construct netlists without a `Design`).
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }

    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One flattened primitive element.
#[derive(Debug, Clone)]
pub struct FlatElement {
    /// Hierarchical path (`top/add/fa0`).
    pub path: String,
    /// Behaviour.
    pub kind: PrimitiveKind,
    /// Input nodes, in spec order.
    pub inputs: Vec<NodeId>,
    /// Output node.
    pub output: NodeId,
    /// Propagation delay in picoseconds.
    pub delay_ps: u64,
    /// Setup time in picoseconds (sequential elements).
    pub setup_ps: u64,
}

/// A flattened design: nodes, elements, and the top-level ports.
#[derive(Debug, Clone)]
pub struct FlatNetlist {
    /// Canonical node names (one representative hierarchical key each).
    pub nodes: Vec<String>,
    /// Primitive elements.
    pub elements: Vec<FlatElement>,
    /// Top-level io-signal name → node.
    pub ports: HashMap<String, NodeId>,
}

impl FlatNetlist {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node of a top-level port.
    pub fn port(&self, name: &str) -> Option<NodeId> {
        self.ports.get(name).copied()
    }
}

/// Why flattening failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// A leaf cell (no internal structure) is not a registered primitive.
    UnregisteredLeaf {
        /// The offending class.
        class: CellClassId,
        /// Where it was found.
        path: String,
    },
    /// A primitive spec references a signal the class does not declare.
    BadSpec {
        /// The offending class.
        class: CellClassId,
        /// The missing signal.
        signal: String,
    },
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::UnregisteredLeaf { class, path } => {
                write!(f, "leaf cell {class} at {path:?} has no primitive model")
            }
            FlattenError::BadSpec { class, signal } => {
                write!(
                    f,
                    "primitive spec of {class} names unknown signal {signal:?}"
                )
            }
        }
    }
}

impl Error for FlattenError {}

/// Raw element record accumulated during the walk:
/// `(path, kind, input keys, output key, delay_ps, setup_ps)`.
type RawElement = (String, PrimitiveKind, Vec<String>, String, u64, u64);

/// Union-find over hierarchical terminal keys.
#[derive(Debug, Default)]
struct Merge {
    index: HashMap<String, usize>,
    parent: Vec<usize>,
}

impl Merge {
    fn id(&mut self, key: &str) -> usize {
        if let Some(&i) = self.index.get(key) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.index.insert(key.to_string(), i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: &str, b: &str) {
        let (ia, ib) = (self.id(a), self.id(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Flattens `top` over the primitive library.
///
/// # Errors
///
/// See [`FlattenError`].
pub fn flatten(
    d: &Design,
    lib: &PrimitiveLibrary,
    top: CellClassId,
) -> Result<FlatNetlist, FlattenError> {
    let mut merge = Merge::default();
    // Terminal keys: `{path}:{signal}` for cell pins, `{path}/{net}` for
    // internal nets.
    let mut raw_elements: Vec<RawElement> = Vec::new();
    let top_path = d.class_name(top).to_string();
    walk(d, lib, top, &top_path, &mut merge, &mut raw_elements)?;

    // Ensure top ports exist as keys even when unconnected.
    for s in d.signals(top) {
        merge.id(&format!("{top_path}:{}", s.name));
    }

    // Compact roots into NodeIds with stable, readable names.
    let mut node_of_root: HashMap<usize, NodeId> = HashMap::new();
    let mut nodes: Vec<String> = Vec::new();
    let keys: Vec<(String, usize)> = merge.index.iter().map(|(k, &i)| (k.clone(), i)).collect();
    let mut sorted = keys;
    sorted.sort();
    let mut resolve = |merge: &mut Merge, nodes: &mut Vec<String>, key: &str| -> NodeId {
        let i = merge.id(key);
        let root = merge.find(i);
        *node_of_root.entry(root).or_insert_with(|| {
            let id = NodeId(nodes.len() as u32);
            nodes.push(key.to_string());
            id
        })
    };
    // Resolve in sorted order so canonical names are deterministic.
    for (key, _) in &sorted {
        resolve(&mut merge, &mut nodes, key);
    }

    let mut elements = Vec::new();
    for (path, kind, in_keys, out_key, delay, setup) in raw_elements {
        let inputs = in_keys
            .iter()
            .map(|k| resolve(&mut merge, &mut nodes, k))
            .collect();
        let output = resolve(&mut merge, &mut nodes, &out_key);
        elements.push(FlatElement {
            path,
            kind,
            inputs,
            output,
            delay_ps: delay,
            setup_ps: setup,
        });
    }
    let mut ports = HashMap::new();
    for s in d.signals(top) {
        let key = format!("{top_path}:{}", s.name);
        ports.insert(s.name.clone(), resolve(&mut merge, &mut nodes, &key));
    }
    Ok(FlatNetlist {
        nodes,
        elements,
        ports,
    })
}

fn walk(
    d: &Design,
    lib: &PrimitiveLibrary,
    class: CellClassId,
    path: &str,
    merge: &mut Merge,
    elements: &mut Vec<RawElement>,
) -> Result<(), FlattenError> {
    if let Some(spec) = lib.spec(class) {
        for sig in spec.inputs.iter().chain(std::iter::once(&spec.output)) {
            if d.signal_def(class, sig).is_none() {
                return Err(FlattenError::BadSpec {
                    class,
                    signal: sig.clone(),
                });
            }
        }
        let in_keys = spec.inputs.iter().map(|s| format!("{path}:{s}")).collect();
        let out_key = format!("{path}:{}", spec.output);
        elements.push((
            path.to_string(),
            spec.kind,
            in_keys,
            out_key,
            spec.delay_ps,
            spec.setup_ps,
        ));
        return Ok(());
    }
    let subs = d.subcells(class);
    if subs.is_empty() {
        return Err(FlattenError::UnregisteredLeaf {
            class,
            path: path.to_string(),
        });
    }
    for &net in d.nets_of(class) {
        let nk = format!("{path}/{}", d.net_name(net));
        merge.id(&nk);
        for io in d.net_io_connections(net) {
            merge.union(&nk, &format!("{path}:{io}"));
        }
        for (inst, sig) in d.net_connections(net) {
            let iname = d.instance_name(*inst);
            merge.union(&nk, &format!("{path}/{iname}:{sig}"));
        }
    }
    for &inst in subs {
        let child_path = format!("{path}/{}", d.instance_name(inst));
        walk(d, lib, d.instance_class(inst), &child_path, merge, elements)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::PrimitiveSpec;
    use stem_design::SignalDir;
    use stem_geom::Transform;

    fn inverter(d: &mut Design, lib: &mut PrimitiveLibrary, name: &str) -> CellClassId {
        let c = d.define_class(name);
        d.add_signal(c, "a", SignalDir::Input);
        d.add_signal(c, "y", SignalDir::Output);
        lib.register(
            c,
            PrimitiveSpec {
                kind: PrimitiveKind::Inverter,
                inputs: vec!["a".into()],
                output: "y".into(),
                delay_ps: 100,
                setup_ps: 0,
            },
        );
        c
    }

    #[test]
    fn flattens_two_level_hierarchy() {
        let mut d = Design::new();
        let mut lib = PrimitiveLibrary::new();
        let inv = inverter(&mut d, &mut lib, "INV");

        // BUF = two cascaded inverters.
        let buf = d.define_class("BUF");
        d.add_signal(buf, "in", SignalDir::Input);
        d.add_signal(buf, "out", SignalDir::Output);
        let i1 = d.instantiate(inv, buf, "i1", Transform::IDENTITY).unwrap();
        let i2 = d.instantiate(inv, buf, "i2", Transform::IDENTITY).unwrap();
        let n_in = d.add_net(buf, "nin");
        d.connect_io(n_in, "in").unwrap();
        d.connect(n_in, i1, "a").unwrap();
        let n_mid = d.add_net(buf, "nmid");
        d.connect(n_mid, i1, "y").unwrap();
        d.connect(n_mid, i2, "a").unwrap();
        let n_out = d.add_net(buf, "nout");
        d.connect(n_out, i2, "y").unwrap();
        d.connect_io(n_out, "out").unwrap();

        // TOP = two cascaded BUFs.
        let top = d.define_class("TOP");
        d.add_signal(top, "x", SignalDir::Input);
        d.add_signal(top, "z", SignalDir::Output);
        let b1 = d.instantiate(buf, top, "b1", Transform::IDENTITY).unwrap();
        let b2 = d.instantiate(buf, top, "b2", Transform::IDENTITY).unwrap();
        let nx = d.add_net(top, "nx");
        d.connect_io(nx, "x").unwrap();
        d.connect(nx, b1, "in").unwrap();
        let nm = d.add_net(top, "nm");
        d.connect(nm, b1, "out").unwrap();
        d.connect(nm, b2, "in").unwrap();
        let nz = d.add_net(top, "nz");
        d.connect(nz, b2, "out").unwrap();
        d.connect_io(nz, "z").unwrap();

        let flat = flatten(&d, &lib, top).unwrap();
        assert_eq!(flat.elements.len(), 4, "four inverters after flattening");
        // Chain check: element i's output is element i+1's input.
        let by_path: HashMap<&str, &FlatElement> =
            flat.elements.iter().map(|e| (e.path.as_str(), e)).collect();
        assert_eq!(by_path["TOP/b1/i1"].output, by_path["TOP/b1/i2"].inputs[0]);
        assert_eq!(by_path["TOP/b1/i2"].output, by_path["TOP/b2/i1"].inputs[0]);
        assert_eq!(flat.port("x").unwrap(), by_path["TOP/b1/i1"].inputs[0]);
        assert_eq!(flat.port("z").unwrap(), by_path["TOP/b2/i2"].output);
    }

    #[test]
    fn unregistered_leaf_is_an_error() {
        let mut d = Design::new();
        let lib = PrimitiveLibrary::new();
        let mystery = d.define_class("MYSTERY");
        let top = d.define_class("TOP");
        d.instantiate(mystery, top, "m", Transform::IDENTITY)
            .unwrap();
        let err = flatten(&d, &lib, top).unwrap_err();
        assert!(matches!(err, FlattenError::UnregisteredLeaf { .. }));
    }

    #[test]
    fn bad_spec_is_an_error() {
        let mut d = Design::new();
        let mut lib = PrimitiveLibrary::new();
        let c = d.define_class("C");
        d.add_signal(c, "a", SignalDir::Input);
        lib.register(
            c,
            PrimitiveSpec {
                kind: PrimitiveKind::Buffer,
                inputs: vec!["a".into()],
                output: "nonexistent".into(),
                delay_ps: 1,
                setup_ps: 0,
            },
        );
        let err = flatten(&d, &lib, c).unwrap_err();
        assert!(matches!(err, FlattenError::BadSpec { .. }));
    }

    #[test]
    fn unconnected_ports_still_appear() {
        let mut d = Design::new();
        let mut lib = PrimitiveLibrary::new();
        let inv = inverter(&mut d, &mut lib, "INV");
        let top = d.define_class("TOP");
        d.add_signal(top, "floating", SignalDir::Input);
        d.instantiate(inv, top, "i", Transform::IDENTITY).unwrap();
        let flat = flatten(&d, &lib, top).unwrap();
        assert!(flat.port("floating").is_some());
    }
}
