//! Experiment table generators (DESIGN.md §4). Each function reproduces
//! one thesis figure/claim and returns markdown-ready rows; the
//! `experiments` binary prints them and EXPERIMENTS.md records a run.

use std::time::Instant;

use crate::workloads;
use stem_cells::{alu_fixture, synthetic_pruning_family, CellKit, ADDER_UNIT_WIDTH};
use stem_core::Value;
use stem_design::SignalDir;
use stem_geom::{Point, Rect, Transform};
use stem_modsel::{select_realizations, SelectionOptions, TestKind};
use stem_sim::{flatten, Level, Simulator};

fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// T-E3 — hierarchical propagation evaluates the shared internal network
/// once per change, not once per instance (thesis §5.1, Fig. 5.1).
pub fn t_e3_hierarchy(instance_counts: &[usize]) -> Vec<Vec<String>> {
    const INTERNAL: usize = 200;
    let mut rows = Vec::new();
    for &n in instance_counts {
        let (mut hier, hi, _) = workloads::hierarchical_fanout(INTERNAL, n);
        let (mut flat, fi, _) = workloads::flat_replication(INTERNAL, n);
        hier.reset_stats();
        flat.reset_stats();
        let t0 = Instant::now();
        workloads::drive(&mut hier, hi, 1);
        let t_hier = t0.elapsed();
        let t0 = Instant::now();
        workloads::drive(&mut flat, fi, 1);
        let t_flat = t0.elapsed();
        rows.push(vec![
            n.to_string(),
            hier.stats().inferences.to_string(),
            flat.stats().inferences.to_string(),
            format!(
                "{:.2}×",
                flat.stats().inferences as f64 / hier.stats().inferences as f64
            ),
            ms(t_hier),
            ms(t_flat),
        ]);
    }
    rows
}

/// T-E8 — Fig. 8.1 module selection: which realisation each spec set
/// admits.
pub fn t_e8_alu_selection() -> Vec<Vec<String>> {
    let scenarios: [(&str, f64, i64); 4] = [
        ("tight area (8.1b)", 11.0, 12),
        ("tight delay (8.1c)", 8.0, 22),
        ("relaxed", 11.0, 22),
        ("impossible", 8.0, 12),
    ];
    let mut rows = Vec::new();
    for (name, delay_spec, area_tenths) in scenarios {
        let mut kit = CellKit::new();
        let fx = alu_fixture(&mut kit);
        kit.analyzer
            .constrain_max(&mut kit.design, fx.alu, "in", "out", delay_spec)
            .unwrap();
        let t = kit.design.instance_transform(fx.adder_inst);
        let budget = Rect::with_extent(
            t.apply(Point::ORIGIN),
            ADDER_UNIT_WIDTH * area_tenths / 10,
            20,
        );
        kit.design
            .set_instance_bounding_box(fx.adder_inst, budget)
            .unwrap();
        let out = select_realizations(
            &mut kit.design,
            &mut kit.analyzer,
            fx.adder_inst,
            &SelectionOptions::default(),
        )
        .unwrap();
        let names: Vec<&str> = out
            .valid
            .iter()
            .map(|&c| kit.design.class_name(c))
            .collect();
        rows.push(vec![
            name.to_string(),
            format!("≤ {delay_spec} D"),
            format!("{}.{} A", area_tenths / 10, area_tenths % 10),
            if names.is_empty() {
                "(none)".to_string()
            } else {
                names.join(", ")
            },
        ]);
    }
    rows
}

/// T-E9 — selection efficiency: candidates tested with/without pruning
/// and selective testing (thesis §8.2), over synthetic generic trees.
pub fn t_e9_pruning(sizes: &[(usize, usize)]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &(groups, leaves) in sizes {
        let run = |prune: bool, priorities: Vec<TestKind>| -> (usize, usize, usize) {
            let mut kit = CellKit::new();
            let fam = synthetic_pruning_family(&mut kit, groups, leaves);
            let d = &mut kit.design;
            let top = d.define_class("TOP");
            d.add_signal(top, "a", SignalDir::Input);
            d.set_signal_bit_width(top, "a", 8).unwrap();
            d.add_signal(top, "s", SignalDir::Output);
            d.set_signal_bit_width(top, "s", 8).unwrap();
            let inst = d
                .instantiate(fam.root, top, "add", Transform::IDENTITY)
                .unwrap();
            let na = d.add_net(top, "na");
            d.connect_io(na, "a").unwrap();
            d.connect(na, inst, "a").unwrap();
            let ns = d.add_net(top, "ns");
            d.connect(ns, inst, "s").unwrap();
            d.connect_io(ns, "s").unwrap();
            kit.analyzer.declare_delay(&mut kit.design, top, "a", "s");
            // Spec admits only the first group's ideals (delay 5+3g).
            kit.analyzer
                .constrain_max(&mut kit.design, top, "a", "s", 7.9)
                .unwrap();
            let out = select_realizations(
                &mut kit.design,
                &mut kit.analyzer,
                inst,
                &SelectionOptions { priorities, prune },
            )
            .unwrap();
            (
                out.stats.candidates_tested,
                out.stats.property_tests,
                out.stats.pruned_subtrees,
            )
        };
        let all = || SelectionOptions::default().priorities;
        let (c1, p1, pr1) = run(true, all());
        let (c2, p2, _) = run(false, all());
        let (c3, p3, _) = run(true, vec![TestKind::Delays]);
        rows.push(vec![
            format!("{groups}×{leaves}"),
            format!("{c1} / {p1} / {pr1}"),
            format!("{c2} / {p2}"),
            format!("{c3} / {p3}"),
        ]);
    }
    rows
}

/// T-E10 — the complexity claim of §9.2.3: propagation cost grows with
/// Σ_v #constraints(v), across network shapes.
pub fn t_e10_complexity(sizes: &[usize]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &n in sizes {
        for (shape, build) in [("chain", 0usize), ("star", 1), ("grid", 2)] {
            let (mut net, start) = match build {
                0 => {
                    let (net, vars) = workloads::equality_chain(n);
                    (net, vars[0])
                }
                1 => workloads::equality_star(n),
                _ => {
                    let side = (n as f64).sqrt().ceil() as usize;
                    workloads::equality_grid(side, side)
                }
            };
            let complexity = workloads::complexity_measure(&net);
            net.reset_stats();
            let t0 = Instant::now();
            workloads::drive(&mut net, start, 1);
            let dt = t0.elapsed();
            rows.push(vec![
                shape.to_string(),
                n.to_string(),
                complexity.to_string(),
                net.stats().activations.to_string(),
                ms(dt),
                format!("{:.1}", dt.as_nanos() as f64 / complexity as f64),
            ]);
        }
    }
    rows
}

/// T-E11 — agenda scheduling of functional constraints "reduces redundant
/// calculations of transient results" (§4.2.1).
pub fn t_e11_agenda(fans: &[usize]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &fan in fans {
        let (mut sched, s1, o1) = workloads::fan_in_sum(fan, true);
        let (mut imm, s2, o2) = workloads::fan_in_sum(fan, false);
        sched.reset_stats();
        imm.reset_stats();
        workloads::drive(&mut sched, s1, 3);
        workloads::drive(&mut imm, s2, 3);
        assert_eq!(sched.value(o1), imm.value(o2));
        rows.push(vec![
            fan.to_string(),
            sched.stats().inferences.to_string(),
            imm.stats().inferences.to_string(),
            format!(
                "{:.1}×",
                imm.stats().inferences as f64 / sched.stats().inferences.max(1) as f64
            ),
        ]);
    }
    rows
}

/// T-E7 — hierarchical delay estimates vs. event-driven simulation for
/// ripple-carry adders of growing width (Figs. 7.11/7.12 machinery).
pub fn t_e7_delay(widths: &[usize]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &w in widths {
        let mut kit = CellKit::new();
        let rca = kit.ripple_carry_adder(&format!("RCA{w}"), w);
        let t0 = Instant::now();
        let est = kit
            .analyzer
            .delay(&mut kit.design, rca, "cin", "cout")
            .unwrap()
            .unwrap();
        let t_est = t0.elapsed();

        // Simulate the same critical path: a = 1…1, toggle cin.
        let flat = flatten(&kit.design, &kit.primitives, rca).unwrap();
        let mut sim = Simulator::new(flat);
        for i in 0..w {
            let pa = sim.port(&format!("a{i}")).unwrap();
            let pb = sim.port(&format!("b{i}")).unwrap();
            sim.drive(pa, Level::L1, 0);
            sim.drive(pb, Level::L0, 0);
        }
        let pcin = sim.port("cin").unwrap();
        sim.drive(pcin, Level::L0, 0);
        sim.run_to_quiescence().unwrap();
        let pcout = sim.port("cout").unwrap();
        sim.record(pcin);
        sim.record(pcout);
        let t = sim.time() + 1000;
        sim.drive(pcin, Level::L1, t);
        sim.run_to_quiescence().unwrap();
        let measured = sim.measure_delay(pcin, pcout).unwrap() as f64 / 1000.0;
        rows.push(vec![
            w.to_string(),
            format!("{est:.1}"),
            format!("{measured:.1}"),
            format!("{:.2}", est / measured),
            ms(t_est),
        ]);
    }
    rows
}

/// T-E12 — dependency-directed erasure: removing one constraint resets
/// only its consequences (§4.2.4: the efficiency that "justifies the
/// storage overhead for dependency records").
pub fn t_e12_erasure(sizes: &[usize]) -> Vec<Vec<String>> {
    use stem_core::kinds::Equality;
    let mut rows = Vec::new();
    for &n in sizes {
        // A long chain plus one side branch; removing the branch's
        // constraint must erase only the branch.
        let (mut net, vars) = workloads::equality_chain(n);
        let side = net.add_variable("side");
        let branch = net
            .add_constraint(Equality::new(), [vars[n / 2], side])
            .unwrap();
        workloads::drive(&mut net, vars[0], 7);
        let t0 = Instant::now();
        net.remove_constraint(branch);
        let dt = t0.elapsed();
        let erased = net.variables().filter(|&v| net.value(v).is_nil()).count();
        rows.push(vec![
            n.to_string(),
            erased.to_string(),
            (n + 1 - erased).to_string(),
            ms(dt),
        ]);
    }
    rows
}

/// T-E13 — lazy calculated views (§6.3): reads per recalculation.
pub fn t_e13_lazy_views(reads: usize, changes: usize) -> Vec<Vec<String>> {
    use stem_compilers::CompilerView;
    use stem_design::ChangeKey;

    let mut kit = CellKit::new();
    let fa = kit.full_adder("FA");
    let view = CompilerView::new(&mut kit.design, fa);
    for _ in 0..reads {
        view.data(&mut kit.design).unwrap();
    }
    let after_reads = view.recalc_count();
    for _ in 0..changes {
        kit.design.notify_changed(fa, ChangeKey::Layout);
        view.data(&mut kit.design).unwrap();
    }
    let after_changes = view.recalc_count();
    vec![
        vec![format!("{reads} reads, 0 changes"), after_reads.to_string()],
        vec![
            format!("+{changes} change/read pairs"),
            after_changes.to_string(),
        ],
    ]
}

/// T-E14 — simulator vs. analyzer consistency on the full-adder cell: the
/// worst-case estimate bounds every measured input-to-output delay.
pub fn t_e14_sim_vs_analyzer() -> Vec<Vec<String>> {
    let mut kit = CellKit::new();
    let fa = kit.full_adder("FA");
    let mut rows = Vec::new();
    for (from, to) in [("cin", "cout"), ("cin", "s"), ("a", "cout"), ("a", "s")] {
        let est = kit
            .analyzer
            .delay(&mut kit.design, fa, from, to)
            .unwrap()
            .unwrap();
        // Measure with a path-sensitising input pattern: for cin→* paths
        // prime (a=1, b=0) so the carry chain follows cin; for a→* paths
        // prime (b=0, cin=1) so both outputs follow a.
        let flat = flatten(&kit.design, &kit.primitives, fa).unwrap();
        let mut sim = Simulator::new(flat);
        let (pa, pb, pc) = (
            sim.port("a").unwrap(),
            sim.port("b").unwrap(),
            sim.port("cin").unwrap(),
        );
        if from == "cin" {
            sim.drive(pa, Level::L1, 0);
            sim.drive(pb, Level::L0, 0);
            sim.drive(pc, Level::L0, 0);
        } else {
            sim.drive(pa, Level::L0, 0);
            sim.drive(pb, Level::L0, 0);
            sim.drive(pc, Level::L1, 0);
        }
        sim.run_to_quiescence().unwrap();
        let pin = sim.port(from).unwrap();
        let pout = sim.port(to).unwrap();
        sim.record(pin);
        sim.record(pout);
        let t = sim.time() + 1000;
        sim.drive(pin, Level::L1.resolve(sim.value(pin).not()), t);
        sim.run_to_quiescence().unwrap();
        let measured = sim.measure_delay(pin, pout).map(|ps| ps as f64 / 1000.0);
        rows.push(vec![
            format!("{from} → {to}"),
            format!("{est:.1}"),
            measured
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".into()),
            measured
                .map(|m| (est >= m - 1e-9).to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    rows
}

/// T-E15 — network compilation (§9.3): interpreted propagation vs.
/// straight-line compiled evaluation of functional adder trees.
pub fn t_e15_compiled(sizes: &[usize]) -> Vec<Vec<String>> {
    use stem_core::{compile_functional, Justification};
    let mut rows = Vec::new();
    for &n in sizes {
        // Interpreted: drive every leaf through normal propagation.
        let (mut net, leaves, root) = workloads::adder_tree(n);
        net.reset_stats();
        let t0 = Instant::now();
        for (i, &l) in leaves.iter().enumerate() {
            net.set(l, Value::Int(i as i64), Justification::User)
                .unwrap();
        }
        let t_interp = t0.elapsed();
        let interp_inferences = net.stats().inferences;
        let expected = net.value(root).clone();

        // Compiled: bulk stores, then one plan evaluation.
        let (mut net2, leaves2, root2) = workloads::adder_tree(n);
        let plan = compile_functional(&net2).unwrap();
        net2.reset_stats();
        let t0 = Instant::now();
        net2.set_propagation_enabled(false);
        for (i, &l) in leaves2.iter().enumerate() {
            net2.set(l, Value::Int(i as i64), Justification::User)
                .unwrap();
        }
        net2.set_propagation_enabled(true);
        plan.evaluate(&mut net2).unwrap();
        let t_comp = t0.elapsed();
        assert_eq!(net2.value(root2), &expected);
        rows.push(vec![
            n.to_string(),
            interp_inferences.to_string(),
            net2.stats().inferences.to_string(),
            ms(t_interp),
            ms(t_comp),
            format!("{:.1}×", t_interp.as_secs_f64() / t_comp.as_secs_f64()),
        ]);
    }
    rows
}

/// T-E16 — satisfaction vs. propagation (§2.1/§7.4): the compaction
/// baseline *solves* placements; a STEM network *verifies* them.
pub fn t_e16_compaction(sizes: &[usize]) -> Vec<Vec<String>> {
    use stem_compact::{compact_row, RowSpec};
    use stem_core::kinds::Predicate;
    use stem_core::{Justification, Network};

    let mut rows = Vec::new();
    for &n in sizes {
        let mut spec = RowSpec {
            min_separation: 2,
            ..Default::default()
        };
        for i in 0..n {
            spec.cell(format!("c{i}"), 6 + (i % 5) as i64 * 2);
        }
        for i in (0..n.saturating_sub(10)).step_by(10) {
            spec.exact_offsets.push((i, i + 10, 120));
        }
        let t0 = Instant::now();
        let (sol, ids) = compact_row(&spec).unwrap();
        let t_solve = t0.elapsed();

        // Verify in a STEM predicate network.
        let mut net = Network::new();
        let xs: Vec<_> = (0..n).map(|i| net.add_variable(format!("x{i}"))).collect();
        for i in 0..n - 1 {
            let gap = spec.cells[i].width + 2;
            net.add_constraint_quiet(
                Predicate::custom("minSep", move |vals| {
                    match (vals[0].as_i64(), vals[1].as_i64()) {
                        (Some(a), Some(b)) => b >= a + gap,
                        _ => true,
                    }
                }),
                [xs[i], xs[i + 1]],
            );
        }
        net.set_propagation_enabled(false);
        for (i, &x) in xs.iter().enumerate() {
            net.set(
                x,
                Value::Int(sol.position(ids[i])),
                Justification::Application,
            )
            .unwrap();
        }
        net.set_propagation_enabled(true);
        let t0 = Instant::now();
        let ok = net.check_all().is_empty();
        let t_verify = t0.elapsed();
        rows.push(vec![
            n.to_string(),
            sol.total_extent.to_string(),
            ms(t_solve),
            ms(t_verify),
            ok.to_string(),
        ]);
    }
    rows
}

/// T-E17 — the Fig. 8.1 premise measured from structure: ripple-carry vs.
/// carry-select adders built from the same gate library.
pub fn t_e17_adder_tradeoff(widths: &[usize]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &w in widths {
        let mut kit = CellKit::new();
        let rca = kit.ripple_carry_adder(&format!("RCA{w}"), w);
        let csa = kit.carry_select_adder(&format!("CSA{w}"), w);
        let d_rc = kit
            .analyzer
            .delay(&mut kit.design, rca, "cin", "cout")
            .unwrap()
            .unwrap();
        let d_cs = kit
            .analyzer
            .delay(&mut kit.design, csa, "cin", "cout")
            .unwrap()
            .unwrap();
        let a_rc = kit.design.class_bounding_box(rca).unwrap().area();
        let a_cs = kit.design.class_bounding_box(csa).unwrap().area();
        rows.push(vec![
            w.to_string(),
            format!("{d_rc:.1}"),
            format!("{d_cs:.1}"),
            format!("{:.2}×", d_rc / d_cs),
            a_rc.to_string(),
            a_cs.to_string(),
            format!("{:.2}×", a_cs as f64 / a_rc as f64),
        ]);
    }
    rows
}

/// T-E18 — joint module selection over a two-adder pipeline sharing one
/// delay budget (the §9.3 global-considerations extension).
pub fn t_e18_joint_selection(specs: &[f64]) -> Vec<Vec<String>> {
    use stem_modsel::select_joint_realizations;

    let mut rows = Vec::new();
    for &spec in specs {
        let mut kit = CellKit::new();
        let family = stem_cells::adder8_family(&mut kit);
        let d = &mut kit.design;
        let top = d.define_class("PIPE");
        d.add_signal(top, "in", SignalDir::Input);
        d.set_signal_bit_width(top, "in", 8).unwrap();
        d.add_signal(top, "out", SignalDir::Output);
        d.set_signal_bit_width(top, "out", 8).unwrap();
        let add1 = d
            .instantiate(family.generic, top, "add1", Transform::IDENTITY)
            .unwrap();
        let add2 = d
            .instantiate(
                family.generic,
                top,
                "add2",
                Transform::translation(Point::new(3 * ADDER_UNIT_WIDTH, 0)),
            )
            .unwrap();
        let n_in = d.add_net(top, "n_in");
        d.connect_io(n_in, "in").unwrap();
        d.connect(n_in, add1, "a").unwrap();
        let n_mid = d.add_net(top, "n_mid");
        d.connect(n_mid, add1, "s").unwrap();
        d.connect(n_mid, add2, "a").unwrap();
        let n_out = d.add_net(top, "n_out");
        d.connect(n_out, add2, "s").unwrap();
        d.connect_io(n_out, "out").unwrap();
        kit.analyzer
            .declare_delay(&mut kit.design, top, "in", "out");
        kit.analyzer
            .constrain_max(&mut kit.design, top, "in", "out", spec)
            .unwrap();

        let out = select_joint_realizations(
            &mut kit.design,
            &mut kit.analyzer,
            &[add1, add2],
            &SelectionOptions::default(),
        )
        .unwrap();
        let combos: Vec<String> = out
            .combinations
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&cls| kit.design.class_name(cls).trim_start_matches("ADD8."))
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect();
        rows.push(vec![
            format!("≤ {spec} D"),
            out.combinations.len().to_string(),
            if combos.is_empty() {
                "(none)".to_string()
            } else {
                combos.join(", ")
            },
            out.commits_tried.to_string(),
        ]);
    }
    rows
}

/// Quick self-check that the E1/E2 walk-throughs behave (printed as
/// pass/fail lines rather than a table).
pub fn e1_e2_walkthroughs() -> Vec<String> {
    use stem_core::kinds::{Equality, Functional};
    use stem_core::{Justification, Network};

    let mut lines = Vec::new();
    // E1.
    let mut net = Network::new();
    let v1 = net.add_variable("V1");
    let v2 = net.add_variable("V2");
    let v3 = net.add_variable("V3");
    let v4 = net.add_variable("V4");
    net.add_constraint(Equality::new(), [v1, v2]).unwrap();
    net.add_constraint(Functional::uni_maximum(), [v2, v3, v4])
        .unwrap();
    net.set(v3, Value::Int(7), Justification::User).unwrap();
    net.set(v1, Value::Int(9), Justification::User).unwrap();
    lines.push(format!(
        "E1 Fig4.5: V1:=9 ⇒ V2={} V4={}  [{}]",
        net.value(v2),
        net.value(v4),
        if net.value(v4) == &Value::Int(9) {
            "ok"
        } else {
            "FAIL"
        }
    ));
    // E2.
    let mut cyc = Network::new();
    let c1 = cyc.add_variable("V1");
    let c2 = cyc.add_variable("V2");
    let c3 = cyc.add_variable("V3");
    let plus = |k: i64| {
        Functional::custom("plusConst", move |vals| {
            vals[0].as_i64().map(|x| Value::Int(x + k))
        })
    };
    cyc.add_constraint(plus(1), [c1, c2]).unwrap();
    cyc.add_constraint(plus(3), [c2, c3]).unwrap();
    cyc.add_constraint(plus(2), [c3, c1]).unwrap();
    let rejected = cyc.set(c1, Value::Int(10), Justification::User).is_err();
    let restored = cyc.value(c1).is_nil();
    lines.push(format!(
        "E2 Fig4.9: cycle rejected={rejected} restored={restored}  [{}]",
        if rejected && restored { "ok" } else { "FAIL" }
    ));
    lines
}

/// T-E20 — engine throughput scaling: N independent sessions of
/// equality-chain networks served by 1..k workers, single submitting
/// driver, pipelined batches (bounded queues provide backpressure).
///
/// Each batch is one `Set` on the chain head that floods the whole chain
/// (`chain` assignments per batch). Reported speedups are relative to the
/// 1-worker row; genuine parallel speedup requires as many free cores as
/// workers.
pub fn t_e20_engine_throughput(worker_counts: &[usize]) -> Vec<Vec<String>> {
    use stem_engine::{Command, ConstraintSpec, Engine, EngineConfig, Source};

    const SESSIONS: usize = 16;
    const CHAIN: usize = 200;
    const ROUNDS: i64 = 100;

    let mut rows = Vec::new();
    let mut base_bps = None;
    for &workers in worker_counts {
        let engine = Engine::with_config(EngineConfig {
            workers,
            queue_capacity: 64,
            step_budget: None,
            ..EngineConfig::default()
        });
        let sessions: Vec<_> = (0..SESSIONS).map(|_| engine.create_session()).collect();
        for &s in &sessions {
            let mut cmds: Vec<Command> = (0..CHAIN)
                .map(|i| Command::AddVariable {
                    name: format!("v{i}"),
                })
                .collect();
            for i in 0..CHAIN - 1 {
                cmds.push(Command::AddConstraint {
                    spec: ConstraintSpec::Equality,
                    args: vec![
                        stem_core::VarId::from_index(i),
                        stem_core::VarId::from_index(i + 1),
                    ],
                });
            }
            engine.apply(s, cmds).unwrap();
        }
        let head = stem_core::VarId::from_index(0);
        let t0 = Instant::now();
        let mut tickets = Vec::with_capacity(SESSIONS * ROUNDS as usize);
        for round in 0..ROUNDS {
            for &s in &sessions {
                tickets.push(engine.submit(
                    s,
                    vec![Command::Set {
                        var: head,
                        value: stem_core::Value::Int(round),
                        source: Source::User,
                    }],
                ));
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        let dt = t0.elapsed();
        // Snapshot-and-reset so each measured burst reports its own
        // high-water mark even if the engine were reused for another round.
        let stats = engine.stats_and_reset_queue_hwm();
        let batches = SESSIONS as u64 * ROUNDS as u64;
        let bps = batches as f64 / dt.as_secs_f64();
        let speedup = match base_bps {
            None => {
                base_bps = Some(bps);
                "1.00×".to_string()
            }
            Some(b) => format!("{:.2}×", bps / b),
        };
        rows.push(vec![
            workers.to_string(),
            batches.to_string(),
            stats.assignments.to_string(),
            ms(dt),
            format!("{bps:.0}"),
            speedup,
            stats.queue_depth_hwm.to_string(),
        ]);
    }
    rows
}

/// T-E21 — journaled vs. snapshot rollback on a 200-var equality chain
/// (single session, one worker, value-only batches).
///
/// Two workloads: *commit flood* (every batch sets the chain head to a
/// fresh value and propagation floods all 200 variables) isolates the
/// per-batch checkpoint overhead when the touched set IS the network;
/// *rollback sparse* (the second variable holds a user-pinned value, so a
/// conflicting Set on the head is denied after touching one variable —
/// the §4.2.4 overwrite rule violating mid-propagation) isolates rollback
/// cost when the touched set is tiny. The snapshot strategy pays
/// O(network) for checkpoint and restore either way; the journal pays
/// O(touched) (§9.2.3 cost model). Speedups are journal relative to
/// snapshot per workload.
pub fn t_e21_rollback_strategies() -> Vec<Vec<String>> {
    use stem_engine::{Command, ConstraintSpec, Engine, EngineConfig, RollbackStrategy, Source};

    const CHAIN: usize = 200;
    const ROUNDS: i64 = 2_000;

    let build = |rollback: RollbackStrategy, pin: bool| {
        let engine = Engine::with_config(EngineConfig {
            workers: 1,
            queue_capacity: 64,
            step_budget: None,
            rollback,
            propagation_threads: 1,
        });
        let s = engine.create_session();
        let mut cmds: Vec<Command> = (0..CHAIN)
            .map(|i| Command::AddVariable {
                name: format!("v{i}"),
            })
            .collect();
        for i in 0..CHAIN - 1 {
            cmds.push(Command::AddConstraint {
                spec: ConstraintSpec::Equality,
                args: vec![
                    stem_core::VarId::from_index(i),
                    stem_core::VarId::from_index(i + 1),
                ],
            });
        }
        if pin {
            // User values deny propagation overwrites, so a conflicting
            // Set on the head violates after touching only the head.
            cmds.push(Command::Set {
                var: stem_core::VarId::from_index(1),
                value: stem_core::Value::Int(50),
                source: Source::User,
            });
        }
        engine.apply(s, cmds).unwrap();
        (engine, s)
    };

    let head = stem_core::VarId::from_index(0);
    let run = |rollback: RollbackStrategy, violate: bool| {
        let (engine, s) = build(rollback, violate);
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            let value = if violate {
                stem_core::Value::Int(100)
            } else {
                stem_core::Value::Int(round % 50)
            };
            let result = engine.apply(
                s,
                vec![Command::Set {
                    var: head,
                    value,
                    source: Source::Application,
                }],
            );
            assert_eq!(result.is_err(), violate);
        }
        let dt = t0.elapsed();
        let stats = engine.session_stats(s);
        (dt, stats)
    };

    let mut rows = Vec::new();
    for (workload, violate) in [("commit flood", false), ("rollback sparse", true)] {
        let mut snapshot_bps = 0.0;
        for (label, rollback) in [
            ("snapshot", RollbackStrategy::Snapshot),
            ("journal", RollbackStrategy::Journal),
        ] {
            let (dt, stats) = run(rollback, violate);
            let bps = ROUNDS as f64 / dt.as_secs_f64();
            let speedup = if label == "snapshot" {
                snapshot_bps = bps;
                "1.00×".to_string()
            } else {
                format!("{:.2}×", bps / snapshot_bps)
            };
            rows.push(vec![
                workload.to_string(),
                label.to_string(),
                ROUNDS.to_string(),
                ms(dt),
                format!("{bps:.0}"),
                speedup,
                stats.net_snapshots.to_string(),
                stats.net_clones.to_string(),
            ]);
        }
    }
    rows
}

/// T-E22 — plan-cached vs. agenda propagation on the dense-fanout
/// workload (§9.2.3's "precompiled topological sorts", applied to the
/// dynamic path).
///
/// Steady state: the network is built once, the first `set` compiles the
/// plan (planned arm) or warms the pooled agenda state (agenda arm), and
/// the measured loop re-sets the source with fresh values so every cycle
/// rewrites the whole cone. The agenda arm runs with plan caching
/// disabled — the interpreter ground truth — so the speedup column is the
/// tentpole claim: ≥2× `set` ops/s at dense fanout.
pub fn t_e22_planned_propagation(fans: &[usize]) -> Vec<Vec<String>> {
    use stem_core::Justification;

    const ROUNDS: i64 = 2_000;

    let mut rows = Vec::new();
    for &fan in fans {
        let mut agenda_ops = 0.0;
        for planned in [false, true] {
            let (mut net, src) = workloads::dense_fanout(fan);
            net.set_plan_caching(planned);
            // Warm-up: compile the plan / size the pooled cycle state.
            for i in 0..16 {
                net.set(src, Value::Int(i), Justification::User).unwrap();
            }
            net.reset_stats();
            let t0 = Instant::now();
            for i in 0..ROUNDS {
                net.set(src, Value::Int(100 + i), Justification::User)
                    .unwrap();
            }
            let dt = t0.elapsed();
            let stats = net.stats();
            assert_eq!(
                stats.plan_cache_hits,
                if planned { ROUNDS as u64 } else { 0 },
                "planned arm must serve every measured set from the cache"
            );
            let ops = ROUNDS as f64 / dt.as_secs_f64();
            let speedup = if planned {
                format!("{:.2}×", ops / agenda_ops)
            } else {
                agenda_ops = ops;
                "1.00×".to_string()
            };
            rows.push(vec![
                fan.to_string(),
                if planned { "planned" } else { "agenda" }.to_string(),
                ROUNDS.to_string(),
                stats.assignments.to_string(),
                ms(dt),
                format!("{ops:.0}"),
                speedup,
                stats.plan_cache_hits.to_string(),
            ]);
        }
    }
    rows
}

/// T-E23 — group-commit fsync amortization: N sessions, each on its own
/// thread, each committing `ROUNDS` single-`Set` chain batches against
/// one durable engine in [`stem_engine::Durability::GroupCommit`] mode.
///
/// Every acknowledged batch is on disk before its `apply` returns (the
/// commit-sync guarantee), but concurrent committers share fsyncs: the
/// coordinator absorbs every append that arrives while the current
/// flush is in flight and retires them with one `fsync`. The
/// appends-per-fsync column is the amortization factor; with one session
/// it degenerates to ~1 (commit-sync behaviour), and it climbs with
/// concurrency while batches/s climbs with it.
pub fn t_e23_group_commit(session_counts: &[usize]) -> Vec<Vec<String>> {
    use stem_engine::{
        Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig, Source,
    };

    const CHAIN: usize = 100;
    const ROUNDS: i64 = 60;

    let base = std::env::temp_dir().join(format!("stem-e23-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut rows = Vec::new();
    let mut base_bps = None;
    for &n_sessions in session_counts {
        let engine = Engine::open_with_config(
            base.join(format!("s{n_sessions}")),
            EngineConfig {
                // One worker per session: concurrent *committers* are what
                // the coordinator amortizes over, and sessions shard onto
                // workers — fewer workers would cap the curve, not the
                // session count.
                workers: n_sessions,
                ..EngineConfig::default()
            },
            DurabilityOptions {
                mode: Durability::GroupCommit,
                checkpoint_bytes: 0,
                ..DurabilityOptions::default()
            },
        )
        .expect("open group-commit engine");
        let sessions: Vec<_> = (0..n_sessions).map(|_| engine.create_session()).collect();
        for &s in &sessions {
            let mut cmds: Vec<Command> = (0..CHAIN)
                .map(|i| Command::AddVariable {
                    name: format!("v{i}"),
                })
                .collect();
            for i in 0..CHAIN - 1 {
                cmds.push(Command::AddConstraint {
                    spec: ConstraintSpec::Equality,
                    args: vec![
                        stem_core::VarId::from_index(i),
                        stem_core::VarId::from_index(i + 1),
                    ],
                });
            }
            engine.apply(s, cmds).unwrap();
        }
        let before = engine.stats();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for &s in &sessions {
                let engine = &engine;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        engine
                            .apply(
                                s,
                                vec![Command::Set {
                                    var: stem_core::VarId::from_index(0),
                                    value: Value::Int(round),
                                    source: Source::User,
                                }],
                            )
                            .unwrap();
                    }
                });
            }
        });
        let dt = t0.elapsed();
        let stats = engine.stats();
        let appends = stats.wal_appends - before.wal_appends;
        let syncs = (stats.wal_group_syncs - before.wal_group_syncs).max(1);
        let batches = n_sessions as u64 * ROUNDS as u64;
        let bps = batches as f64 / dt.as_secs_f64();
        let speedup = match base_bps {
            None => {
                base_bps = Some(bps);
                "1.00×".to_string()
            }
            Some(b) => format!("{:.2}×", bps / b),
        };
        rows.push(vec![
            n_sessions.to_string(),
            batches.to_string(),
            appends.to_string(),
            syncs.to_string(),
            format!("{:.2}", appends as f64 / syncs as f64),
            ms(dt),
            format!("{bps:.0}"),
            speedup,
        ]);
        engine.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
    rows
}

/// T-E24 — parallel cone replay: the cached plan of an 8-cone dense
/// fanout (fan 256 — 2 064 executing steps per root write) replayed with
/// growing thread budgets (§9.3's network compilation extended with a
/// partition into independent cones).
///
/// Every arm replays the *same* plan over the same value sequence; the
/// agenda interpreter stays ground truth (the planned-vs-agenda
/// differential sweeps the identical thread counts). Observable state is
/// asserted equal across arms here, so the speedup column is wall-clock
/// only; the replay/cone/fallback columns show whether the partition
/// actually engaged. On a single-core container the curve stays ≈1×
/// (the pool adds coordination it cannot buy back) — the shape claim
/// needs ≥8 hardware threads.
pub fn t_e24_parallel_replay(thread_counts: &[usize]) -> Vec<Vec<String>> {
    use stem_core::Justification;

    const CONES: usize = 8;
    const FAN: usize = 256;
    const ROUNDS: i64 = 2_000;

    let mut rows = Vec::new();
    let mut base_ops = 0.0;
    let mut reference: Option<Vec<(String, Value)>> = None;
    for &threads in thread_counts {
        let (mut net, src) = workloads::par_fanout(CONES, FAN);
        net.set_parallel_threads(threads);
        // Warm-up: the first set compiles the plan (and, with threads,
        // its cone partition).
        for i in 0..16 {
            net.set(src, Value::Int(i), Justification::User).unwrap();
        }
        net.reset_stats();
        let t0 = Instant::now();
        for i in 0..ROUNDS {
            net.set(src, Value::Int(100 + i), Justification::User)
                .unwrap();
        }
        let dt = t0.elapsed();
        let stats = net.stats();
        let par = net.par_stats();
        assert_eq!(
            stats.plan_cache_hits, ROUNDS as u64,
            "every measured set must replay the cached plan"
        );
        let dump: Vec<(String, Value)> = net
            .variables()
            .map(|v| (net.var_name(v).to_string(), net.value(v).clone()))
            .collect();
        match &reference {
            None => reference = Some(dump),
            Some(r) => assert_eq!(r, &dump, "replay must be identical at every thread count"),
        }
        let ops = ROUNDS as f64 / dt.as_secs_f64();
        let speedup = if base_ops == 0.0 {
            base_ops = ops;
            "1.00×".to_string()
        } else {
            format!("{:.2}×", ops / base_ops)
        };
        rows.push(vec![
            threads.to_string(),
            ROUNDS.to_string(),
            par.plan_replays_parallel.to_string(),
            par.cones_executed.to_string(),
            par.parallel_fallbacks.to_string(),
            ms(dt),
            format!("{ops:.0}"),
            speedup,
        ]);
    }
    rows
}
