//! Minimal Criterion-compatible benchmark harness.
//!
//! The repository builds with zero registry access, so the external
//! `criterion` crate is unavailable; this module re-implements the small
//! slice of its API the benches use (`Criterion`, `Bencher`,
//! `BenchmarkGroup`, `BenchmarkId`, `BatchSize`, `criterion_group!`,
//! `criterion_main!`). Bench files keep their structure and only change
//! their import line.
//!
//! Methodology: each benchmark warms up for `warm_up_time`, estimates the
//! per-iteration cost, sizes its samples so `sample_size` samples fill
//! `measurement_time`, then reports min / median / mean over the samples.
//! Setup closures passed to [`Bencher::iter_batched`] run outside the
//! timed region, matching Criterion's semantics.

use std::hint::black_box;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Whether the bench binary was invoked with `--smoke`: a fast regression
/// profile (tiny warm-up/measurement windows) for CI, where the JSON
/// artifacts matter more than statistical depth.
pub fn smoke() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--smoke"))
}

/// One benchmark's summary, as written to the `BENCH_<name>.json` artifact.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id, e.g. `engine/batch_round_trip_chain100`.
    pub id: String,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// Number of samples.
    pub samples: usize,
    /// Iterations per second at the median (`1e9 / median_ns`).
    pub ops_per_sec: f64,
}

fn registry() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Drains every recorded result into `BENCH_<name>.json` (machine-readable
/// regression tracking; one file per bench binary). Called by
/// [`criterion_main!`] with the binary's stem, so plain `cargo bench`
/// produces the artifacts in the working directory.
pub fn export_json(bench_name: &str) {
    let records = std::mem::take(&mut *registry().lock().unwrap());
    if records.is_empty() {
        return;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench_name)));
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"samples\": {}, \"ops_per_sec\": {:.2}}}{}\n",
            json_escape(&r.id),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.ops_per_sec,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = workspace_root().join(format!("BENCH_{bench_name}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {} ({} results)", path.display(), records.len()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Cargo runs benches with the *package* directory as cwd; artifacts
/// belong at the workspace root, found by walking up to `Cargo.lock`.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Derives the bench name from `argv[0]` (cargo names the binary
/// `<bench>-<hash>`) and exports the JSON artifact.
pub fn export_json_auto() {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    // Strip cargo's `-<hex hash>` suffix if present.
    let name = match stem.rsplit_once('-') {
        Some((base, suffix))
            if !base.is_empty() && suffix.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            base
        }
        _ => stem,
    };
    export_json(name);
}

/// How batched inputs are grouped per measurement (accepted for
/// compatibility; the harness always times one routine call at a time, so
/// the variants are equivalent here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter,
/// rendered `name/param` (or just `param` via
/// [`BenchmarkId::from_parameter`]).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("solve", 25)` renders as `solve/25`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// `from_parameter(25)` renders as `25`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

/// The benchmark driver (API-compatible subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the warm-up duration (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement duration (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Sets the number of samples (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.config, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            config,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.config, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    config: Config,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// inside the timed region.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm up and estimate the per-iteration cost.
        let warm_end = Instant::now() + self.config.warm_up;
        let mut spent = Duration::ZERO;
        let mut iters: u32 = 0;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
            if Instant::now() >= warm_end && iters >= 1 {
                break;
            }
        }
        let est = (spent / iters.max(1)).max(Duration::from_nanos(1));
        // Size samples so `sample_size` of them fill the measurement time.
        let per_sample =
            (self.config.measurement.as_nanos() / self.config.sample_size as u128 / est.as_nanos())
                .clamp(1, 1_000_000) as u32;
        self.samples_ns.clear();
        for _ in 0..self.config.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                sample += t.elapsed();
            }
            self.samples_ns
                .push(sample.as_nanos() as f64 / per_sample as f64);
        }
    }
}

fn run_one(name: &str, mut config: Config, mut f: impl FnMut(&mut Bencher)) {
    if smoke() {
        // CI regression profile: enough iterations to populate the JSON
        // artifact, not enough for publication-grade statistics.
        config = Config {
            warm_up: Duration::from_millis(20),
            measurement: Duration::from_millis(60),
            sample_size: 5,
        };
    }
    let mut b = Bencher {
        config,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    b.samples_ns.sort_by(|a, x| a.total_cmp(x));
    let n = b.samples_ns.len();
    let min = b.samples_ns[0];
    let median = if n.is_multiple_of(2) {
        (b.samples_ns[n / 2 - 1] + b.samples_ns[n / 2]) / 2.0
    } else {
        b.samples_ns[n / 2]
    };
    let mean = b.samples_ns.iter().sum::<f64>() / n as f64;
    println!(
        "{name:<48} time: [{} {} {}] ({n} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
    registry().lock().unwrap().push(BenchRecord {
        id: name.to_string(),
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
        samples: n,
        ops_per_sec: 1e9 / median.max(f64::MIN_POSITIVE),
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`; after
/// the groups run, the collected results are exported to
/// `BENCH_<binary>.json` for regression tracking.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::harness::export_json_auto();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
        assert_eq!(fmt_ns(10.0), "10.0 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
    }
}
