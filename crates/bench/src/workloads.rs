//! Constraint-network and design workload builders used by the benches
//! and the experiments binary.

use std::rc::Rc;

use stem_core::kinds::{DomLe, DomainConstraint, EqualLink, Equality, Functional, ImplicitLink};
use stem_core::{
    Activation, ConstraintId, ConstraintKind, DependencyRecord, Interval, Justification, Network,
    Value, VarId, Violation,
};

/// A chain of equality constraints: `v0 = v1 = … = v(n-1)`, linked
/// pairwise. Σ_v #constraints(v) ≈ 2n.
pub fn equality_chain(n: usize) -> (Network, Vec<VarId>) {
    let mut net = Network::new();
    let vars: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("v{i}"))).collect();
    for w in vars.windows(2) {
        net.add_constraint(Equality::new(), [w[0], w[1]]).unwrap();
    }
    (net, vars)
}

/// A star: `hub = spoke_i` for each of `n` spokes (the hub carries `n`
/// constraints). Σ_v #constraints(v) ≈ 2n.
pub fn equality_star(n: usize) -> (Network, VarId) {
    let mut net = Network::new();
    let hub = net.add_variable("hub");
    for i in 0..n {
        let spoke = net.add_variable(format!("s{i}"));
        net.add_constraint(Equality::new(), [hub, spoke]).unwrap();
    }
    (net, hub)
}

/// A `w × h` grid of variables connected right and down by equalities.
/// Σ_v #constraints(v) ≈ 4wh.
pub fn equality_grid(w: usize, h: usize) -> (Network, VarId) {
    let mut net = Network::new();
    let ids: Vec<VarId> = (0..w * h)
        .map(|i| net.add_variable(format!("g{}_{}", i % w, i / w)))
        .collect();
    let at = |x: usize, y: usize| ids[y * w + x];
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                net.add_constraint(Equality::new(), [at(x, y), at(x + 1, y)])
                    .unwrap();
            }
            if y + 1 < h {
                net.add_constraint(Equality::new(), [at(x, y), at(x, y + 1)])
                    .unwrap();
            }
        }
    }
    (net, at(0, 0))
}

/// The Σ_v #constraints(v) complexity measure of thesis §9.2.3.
pub fn complexity_measure(net: &Network) -> usize {
    net.variables().map(|v| net.constraints_of(v).len()).sum()
}

/// A binary tree of `UniAddition` constraints over `n` leaves; returns the
/// leaves and root.
pub fn adder_tree(n: usize) -> (Network, Vec<VarId>, VarId) {
    let mut net = Network::new();
    let leaves: Vec<VarId> = (0..n).map(|i| net.add_variable(format!("l{i}"))).collect();
    let mut layer = leaves.clone();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let out = net.add_variable("sum");
                net.add_constraint(Functional::uni_addition(), [pair[0], pair[1], out])
                    .unwrap();
                next.push(out);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let root = layer[0];
    (net, leaves, root)
}

/// An *immediate* (unscheduled) sum constraint — the control arm of the
/// agenda-batching experiment (E11). Identical semantics to
/// `Functional::uni_addition`, but it recomputes eagerly on every argument
/// change instead of batching on the `functional` agenda.
#[derive(Debug, Clone, Copy)]
pub struct ImmediateSum;

impl ConstraintKind for ImmediateSum {
    fn kind_name(&self) -> &str {
        "immediateSum"
    }

    fn activation(&self) -> Activation {
        Activation::Immediate
    }

    fn should_activate(&self, net: &Network, cid: ConstraintId, changed: VarId) -> bool {
        net.args(cid).last() != Some(&changed)
    }

    fn infer(
        &self,
        net: &mut Network,
        cid: ConstraintId,
        _changed: Option<VarId>,
    ) -> Result<(), Violation> {
        let args = net.args(cid).to_vec();
        let Some((&result, inputs)) = args.split_last() else {
            return Ok(());
        };
        let mut acc = Value::Int(0);
        for &v in inputs {
            let val = net.value(v);
            if val.is_nil() {
                return Ok(());
            }
            acc = acc.numeric_add(val).expect("numeric inputs");
        }
        net.propagate_set(result, acc, cid, DependencyRecord::All)?;
        Ok(())
    }

    fn is_satisfied(&self, _net: &Network, _cid: ConstraintId) -> bool {
        true
    }
}

/// The agenda-batching workload (E11): one source mirrored into `fan`
/// variables that all feed a single sum constraint. With scheduling, one
/// source change costs one sum evaluation; with an immediate sum it costs
/// `fan` evaluations of transient results.
pub fn fan_in_sum(fan: usize, scheduled: bool) -> (Network, VarId, VarId) {
    let mut net = Network::new();
    let src = net.add_variable("src");
    let mirrors: Vec<VarId> = (0..fan)
        .map(|i| {
            let m = net.add_variable(format!("m{i}"));
            net.add_constraint(Equality::new(), [src, m]).unwrap();
            m
        })
        .collect();
    let out = net.add_variable("out");
    let mut args = mirrors;
    args.push(out);
    if scheduled {
        net.add_constraint(Functional::uni_addition(), args)
            .unwrap();
    } else {
        net.add_constraint(ImmediateSum, args).unwrap();
    }
    (net, src, out)
}

/// The dense-fanout workload of E22: one source equality-linked to `fan`
/// mirrors, all feeding a scheduled sum — every `set` on the source
/// rewrites the whole cone, which is exactly the shape the propagation
/// plan cache accelerates (statically single-writer, wide dispatch).
/// Returns the network and the source variable.
pub fn dense_fanout(fan: usize) -> (Network, VarId) {
    let (net, src, _) = fan_in_sum(fan, true);
    (net, src)
}

/// The cone-partitionable workload of E24: one source equality-linked to
/// `cones` heads, each head mirrored into `fan` variables that feed a
/// scheduled per-cone sum. After the root write the propagation plan's
/// step graph splits into `cones` independent components with disjoint
/// write sets — the shape [`stem_core::Network::set_parallel_threads`]
/// replays concurrently. Executing plan steps: `cones × (fan + 2)`.
/// Returns the network and the source variable.
pub fn par_fanout(cones: usize, fan: usize) -> (Network, VarId) {
    let mut net = Network::new();
    let src = net.add_variable("src");
    for i in 0..cones {
        let head = net.add_variable(format!("h{i}"));
        net.add_constraint(Equality::new(), [src, head]).unwrap();
        let mut args = Vec::with_capacity(fan + 1);
        for j in 0..fan {
            let m = net.add_variable(format!("m{i}_{j}"));
            net.add_constraint(Equality::new(), [head, m]).unwrap();
            args.push(m);
        }
        let out = net.add_variable(format!("o{i}"));
        args.push(out);
        net.add_constraint(Functional::uni_addition(), args)
            .unwrap();
    }
    (net, src)
}

/// The two-level hierarchy of thesis Fig. 5.1 (E3), at the constraint
/// level: one shared internal chain of `internal_len` +1 stages computing
/// a "class characteristic", fanned out to `n_instances` external
/// consumers through implicit links. Returns the network, the internal
/// input, and the external outputs.
pub fn hierarchical_fanout(
    internal_len: usize,
    n_instances: usize,
) -> (Network, VarId, Vec<VarId>) {
    let mut net = Network::new();
    let input = net.add_variable("internal.in");
    let mut cur = input;
    for i in 0..internal_len {
        let next = net.add_variable(format!("internal.{i}"));
        net.add_constraint(plus_one(), [cur, next]).unwrap();
        cur = next;
    }
    let class_var = cur; // the class characteristic
    let mut outs = Vec::new();
    for i in 0..n_instances {
        let inst = net.add_variable(format!("inst{i}.char"));
        net.add_constraint(ImplicitLink::new(EqualLink), [class_var, inst])
            .unwrap();
        let out = net.add_variable(format!("inst{i}.out"));
        net.add_constraint(plus_one(), [inst, out]).unwrap();
        outs.push(out);
    }
    (net, input, outs)
}

/// The flat control arm of E3: the internal chain is *replicated* once per
/// instance ("without hierarchical constraint propagation, the lower level
/// constraints … would be propagated twice: once for each of the two upper
/// level networks containing them", Fig. 5.1). All replicas share the same
/// input variable.
pub fn flat_replication(internal_len: usize, n_instances: usize) -> (Network, VarId, Vec<VarId>) {
    let mut net = Network::new();
    let input = net.add_variable("in");
    let mut outs = Vec::new();
    for i in 0..n_instances {
        let mut cur = input;
        for j in 0..internal_len {
            let next = net.add_variable(format!("r{i}.{j}"));
            net.add_constraint(plus_one(), [cur, next]).unwrap();
            cur = next;
        }
        let out = net.add_variable(format!("r{i}.out"));
        net.add_constraint(plus_one(), [cur, out]).unwrap();
        outs.push(out);
    }
    (net, input, outs)
}

/// The domain fixpoint workload: a root interval variable with `fan`
/// bidirectional `x ≤ yᵢ` propagators, every variable seeded `[0, 100]`.
/// Tightening the root re-narrows every target's lower bound, so one
/// `set` runs a `fan`-wide propagator fixpoint; both sides of each
/// inequality can write, so the cone is multi-writer and the run stays
/// on the agenda interpreter. Returns the network and the root.
pub fn domain_fanout(fan: usize) -> (Network, VarId) {
    let mut net = Network::new();
    let x = net.add_variable("x");
    net.set(
        x,
        Value::Interval(Interval::new(0, 100)),
        Justification::User,
    )
    .unwrap();
    for i in 0..fan {
        let y = net.add_variable(format!("y{i}"));
        net.set(
            y,
            Value::Interval(Interval::new(0, 100)),
            Justification::User,
        )
        .unwrap();
        net.add_constraint(DomainConstraint::new(DomLe::le(0)), [x, y])
            .unwrap();
    }
    (net, x)
}

/// The subsumption workload: a root `x ∈ [0, 4096]` watched by `n`
/// *directional* `x ≤ yᵢ` propagators whose targets sit far above the
/// root's reach (`yᵢ ∈ [5000, 10000]`), so every propagator proves
/// itself entailed on first contact — a root-independent witness
/// (`x.hi ≤ yᵢ.lo`) that survives any in-range root write. Directional
/// propagators are plannable, so the root's cone compiles and the
/// pruned arm measures the plan-replay subsumption skip against a twin
/// with [`stem_core::Network::set_subsumption`] off. Returns the
/// network and the root.
pub fn subsumed_fanout(n: usize) -> (Network, VarId) {
    let mut net = Network::new();
    let x = net.add_variable("x");
    net.set(
        x,
        Value::Interval(Interval::new(0, 4096)),
        Justification::User,
    )
    .unwrap();
    for i in 0..n {
        let y = net.add_variable(format!("y{i}"));
        net.set(
            y,
            Value::Interval(Interval::new(5000, 10_000)),
            Justification::User,
        )
        .unwrap();
        net.add_constraint(DomainConstraint::new(DomLe::directional(0, 1)), [x, y])
            .unwrap();
    }
    (net, x)
}

fn plus_one() -> Functional {
    Functional::custom("plusOne", |vals| {
        vals[0].as_i64().map(|x| Value::Int(x + 1))
    })
}

/// Drives a workload once: external user assignment of `value`.
pub fn drive(net: &mut Network, var: VarId, value: i64) {
    net.set(var, Value::Int(value), Justification::User)
        .expect("workloads are consistent");
}

/// Convenience: a shared Rc'd equality kind for bulk wiring.
pub fn shared_equality() -> Rc<dyn ConstraintKind> {
    Rc::new(Equality::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_floods() {
        let (mut net, vars) = equality_chain(10);
        drive(&mut net, vars[0], 3);
        assert_eq!(net.value(vars[9]), &Value::Int(3));
        assert_eq!(complexity_measure(&net), 18);
    }

    #[test]
    fn star_floods() {
        let (mut net, hub) = equality_star(8);
        drive(&mut net, hub, 5);
        for v in net.variables() {
            assert_eq!(net.value(v), &Value::Int(5));
        }
    }

    #[test]
    fn grid_floods() {
        let (mut net, corner) = equality_grid(5, 4);
        drive(&mut net, corner, 2);
        for v in net.variables() {
            assert_eq!(net.value(v), &Value::Int(2));
        }
    }

    #[test]
    fn adder_tree_sums() {
        let (mut net, leaves, root) = adder_tree(8);
        for (i, &l) in leaves.iter().enumerate() {
            drive(&mut net, l, i as i64);
        }
        assert_eq!(net.value(root), &Value::Int(28));
    }

    #[test]
    fn par_fanout_sums_per_cone_and_partitions() {
        let (mut net, src) = par_fanout(4, 3);
        net.set_parallel_threads(2);
        net.set_parallel_min_steps(1);
        drive(&mut net, src, 5);
        // Each cone's output is fan × the source value.
        let outs: Vec<_> = net
            .variables()
            .filter(|&v| net.var_name(v).starts_with('o'))
            .collect();
        assert_eq!(outs.len(), 4);
        for v in outs {
            assert_eq!(net.value(v), &Value::Int(15));
        }
        assert_eq!(net.plan_parallel_cones(src), Some(4));
    }

    #[test]
    fn fan_in_results_match_but_costs_differ() {
        let (mut sched, s1, o1) = fan_in_sum(6, true);
        let (mut imm, s2, o2) = fan_in_sum(6, false);
        sched.reset_stats();
        imm.reset_stats();
        drive(&mut sched, s1, 2);
        drive(&mut imm, s2, 2);
        assert_eq!(sched.value(o1), &Value::Int(12));
        assert_eq!(imm.value(o2), &Value::Int(12));
        assert!(
            imm.stats().inferences > sched.stats().inferences,
            "immediate recomputation is more expensive: {} vs {}",
            imm.stats().inferences,
            sched.stats().inferences
        );
    }

    #[test]
    fn hierarchy_beats_flat_replication() {
        let (mut hier, hi, houts) = hierarchical_fanout(20, 8);
        let (mut flat, fi, fouts) = flat_replication(20, 8);
        hier.reset_stats();
        flat.reset_stats();
        drive(&mut hier, hi, 0);
        drive(&mut flat, fi, 0);
        // Same results…
        for (&a, &b) in houts.iter().zip(&fouts) {
            assert_eq!(hier.value(a), flat.value(b));
            assert_eq!(hier.value(a), &Value::Int(21), "20 chain stages + 1");
        }
        // …but the shared internal chain evaluated once, not 8 times.
        assert!(hier.stats().inferences * 4 < flat.stats().inferences);
    }
}
