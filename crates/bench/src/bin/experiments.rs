//! Regenerates every experiment table of DESIGN.md §4 / EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p stem-bench --bin experiments`

use stem_bench::{experiments, render_table};

fn main() {
    println!("# STEM reproduction — experiment tables\n");
    println!("(see DESIGN.md §4 for the experiment index; absolute timings");
    println!("depend on the machine — the shapes are what the thesis claims)");

    println!("\n### E1/E2 — chapter 4 walk-throughs\n");
    for line in experiments::e1_e2_walkthroughs() {
        println!("{line}");
    }

    print!(
        "{}",
        render_table(
            "T-E3 — hierarchical vs. flat propagation (Fig. 5.1): shared internal network of 200 stages",
            &["instances", "inferences (hier)", "inferences (flat)", "saving", "hier ms", "flat ms"],
            &experiments::t_e3_hierarchy(&[1, 2, 4, 8, 16, 32]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E7 — hierarchical delay estimates vs. simulation (ripple-carry adders)",
            &[
                "width",
                "analyzer est (ns)",
                "simulated (ns)",
                "est/meas",
                "est ms"
            ],
            &experiments::t_e7_delay(&[2, 4, 8, 16]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E8 — Fig. 8.1 ALU module selection",
            &["scenario", "delay spec", "adder area budget", "selected"],
            &experiments::t_e8_alu_selection(),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E9 — selection effort (candidates / property tests / pruned)",
            &[
                "tree (groups×leaves)",
                "prune + all tests",
                "no prune + all tests",
                "prune + delays only",
            ],
            &experiments::t_e9_pruning(&[(2, 2), (4, 8), (8, 16), (16, 32)]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E10 — complexity ∝ Σ_v #constraints(v) (§9.2.3)",
            &[
                "shape",
                "n",
                "Σ #constraints",
                "activations",
                "ms",
                "ns per unit"
            ],
            &experiments::t_e10_complexity(&[100, 400, 1600, 6400]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E11 — agenda batching of functional constraints (§4.2.1)",
            &[
                "fan-in",
                "inferences (scheduled)",
                "inferences (immediate)",
                "saving"
            ],
            &experiments::t_e11_agenda(&[2, 8, 32, 128]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E12 — dependency-directed erasure on constraint removal (§4.2.4)",
            &["chain length", "erased vars", "surviving vars", "ms"],
            &experiments::t_e12_erasure(&[100, 1000, 10000]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E13 — lazy calculated views (§6.3): recalculations",
            &["access pattern", "recalculations"],
            &experiments::t_e13_lazy_views(100, 5),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E14 — full adder: analyzer bound vs. simulated delay",
            &["path", "analyzer est (ns)", "simulated (ns)", "est ≥ meas"],
            &experiments::t_e14_sim_vs_analyzer(),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E15 — compiled vs. interpreted evaluation (§9.3 network compilation)",
            &[
                "leaves",
                "inferences (interp)",
                "inferences (compiled)",
                "interp ms",
                "compiled ms",
                "speedup"
            ],
            &experiments::t_e15_compiled(&[64, 256, 1024]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E16 — satisfaction solves, propagation verifies (§2.1/§7.4 baseline)",
            &[
                "row cells",
                "compacted extent",
                "solve ms",
                "verify ms",
                "verified"
            ],
            &experiments::t_e16_compaction(&[50, 200, 800]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E17 — Fig. 8.1's premise measured from gate structure: ripple vs. carry-select",
            &[
                "width",
                "RC delay (ns)",
                "CS delay (ns)",
                "speedup",
                "RC area",
                "CS area",
                "area cost"
            ],
            &experiments::t_e17_adder_tradeoff(&[4, 8, 16]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E18 — joint selection over a two-adder pipeline (shared delay budget)",
            &[
                "pipeline spec",
                "valid combos",
                "combinations",
                "commits tried"
            ],
            &experiments::t_e18_joint_selection(&[18.0, 14.0, 10.0]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E20 — engine throughput: 16 sessions, 200-var chains, pipelined single-Set batches",
            &[
                "workers",
                "batches",
                "assignments",
                "ms",
                "batches/s",
                "speedup",
                "queue HWM"
            ],
            &experiments::t_e20_engine_throughput(&[1, 2, 4]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E21 — journaled vs. snapshot rollback: 200-var chain, value-only batches",
            &[
                "workload",
                "strategy",
                "batches",
                "ms",
                "batches/s",
                "speedup",
                "net snapshots",
                "net clones"
            ],
            &experiments::t_e21_rollback_strategies(),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E22 — plan-cached vs. agenda propagation: dense-fanout steady-state sets",
            &[
                "fanout",
                "path",
                "sets",
                "assignments",
                "ms",
                "sets/s",
                "speedup",
                "plan hits"
            ],
            &experiments::t_e22_planned_propagation(&[16, 64, 256]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E23 — group-commit fsync amortization: concurrent sessions, durable single-Set batches",
            &[
                "sessions",
                "batches",
                "WAL appends",
                "fsyncs",
                "appends/fsync",
                "ms",
                "batches/s",
                "speedup"
            ],
            &experiments::t_e23_group_commit(&[1, 2, 4, 8]),
        )
    );

    print!(
        "{}",
        render_table(
            "T-E24 — parallel cone replay: 8-cone dense fanout (fan 256), cached plan, thread sweep",
            &[
                "threads",
                "sets",
                "parallel replays",
                "cones",
                "fallbacks",
                "ms",
                "sets/s",
                "speedup"
            ],
            &experiments::t_e24_parallel_replay(&[1, 2, 4, 8]),
        )
    );
}
