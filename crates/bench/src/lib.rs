//! # stem-bench — workloads and experiment tables
//!
//! Shared workload builders for the Criterion benches and the
//! `experiments` binary (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results).

#![warn(missing_docs)]
pub mod harness;
pub mod workloads;

pub mod experiments;

/// Renders rows as a markdown table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n### {title}\n");
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let t = render_table(
            "T",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("### T"));
        assert!(t.contains("| 1 | 2 |"));
        assert!(t.contains("|---|---|"));
    }
}
