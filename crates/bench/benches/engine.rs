//! Engine-level benches: batch round-trip latency through a worker and
//! pipelined multi-session throughput (T-E19's workload at bench scale).

use stem_bench::harness::{BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Value, VarId};
use stem_engine::{Command, ConstraintSpec, Engine, EngineConfig, Source};

fn chain_session(engine: &Engine, len: usize) -> stem_engine::SessionId {
    let s = engine.create_session();
    let mut cmds: Vec<Command> = (0..len)
        .map(|i| Command::AddVariable {
            name: format!("v{i}"),
        })
        .collect();
    for i in 0..len - 1 {
        cmds.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![VarId::from_index(i), VarId::from_index(i + 1)],
        });
    }
    engine.apply(s, cmds).unwrap();
    s
}

/// One `Set` batch applied synchronously: submit → propagate a 100-var
/// equality chain → reply. Measures the full engine round trip.
fn batch_round_trip(c: &mut Criterion) {
    let engine = Engine::new(1);
    let session = chain_session(&engine, 100);
    let head = VarId::from_index(0);
    let mut tick = 0i64;
    c.bench_function("engine/batch_round_trip_chain100", |b| {
        b.iter(|| {
            tick += 1;
            engine
                .apply(
                    session,
                    vec![Command::Set {
                        var: head,
                        value: Value::Int(tick),
                        source: Source::User,
                    }],
                )
                .unwrap()
        })
    });
}

/// Pipelined throughput over 8 sessions for several worker counts: all
/// batches are submitted before any ticket is awaited, so workers drain
/// their queues concurrently.
fn pipelined_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/pipelined_8x50");
    for &workers in &[1usize, 2, 4] {
        let engine = Engine::with_config(EngineConfig {
            workers,
            queue_capacity: 128,
            step_budget: None,
        });
        let sessions: Vec<_> = (0..8).map(|_| chain_session(&engine, 100)).collect();
        let head = VarId::from_index(0);
        let mut tick = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                tick += 1;
                let tickets: Vec<_> = (0..50)
                    .flat_map(|round| {
                        sessions
                            .iter()
                            .map(move |&s| (s, round))
                            .collect::<Vec<_>>()
                    })
                    .map(|(s, round)| {
                        engine.submit(
                            s,
                            vec![Command::Set {
                                var: head,
                                value: Value::Int(tick * 1000 + round),
                                source: Source::User,
                            }],
                        )
                    })
                    .collect();
                for t in tickets {
                    t.wait().unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, batch_round_trip, pipelined_throughput);
criterion_main!(benches);
