//! Engine-level benches: batch round-trip latency through a worker and
//! pipelined multi-session throughput (T-E19's workload at bench scale).

use stem_bench::harness::{smoke, BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Value, VarId};
use stem_engine::{
    Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig, RollbackStrategy,
    Source,
};

fn chain_session(engine: &Engine, len: usize) -> stem_engine::SessionId {
    let s = engine.create_session();
    let mut cmds: Vec<Command> = (0..len)
        .map(|i| Command::AddVariable {
            name: format!("v{i}"),
        })
        .collect();
    for i in 0..len - 1 {
        cmds.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![VarId::from_index(i), VarId::from_index(i + 1)],
        });
    }
    engine.apply(s, cmds).unwrap();
    s
}

/// One `Set` batch applied synchronously: submit → propagate a 100-var
/// equality chain → reply. Measures the full engine round trip.
fn batch_round_trip(c: &mut Criterion) {
    let engine = Engine::new(1);
    let session = chain_session(&engine, 100);
    let head = VarId::from_index(0);
    let mut tick = 0i64;
    c.bench_function("engine/batch_round_trip_chain100", |b| {
        b.iter(|| {
            tick += 1;
            engine
                .apply(
                    session,
                    vec![Command::Set {
                        var: head,
                        value: Value::Int(tick),
                        source: Source::User,
                    }],
                )
                .unwrap()
        })
    });
}

/// Pipelined throughput over 8 sessions for several worker counts: all
/// batches are submitted before any ticket is awaited, so workers drain
/// their queues concurrently.
fn pipelined_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/pipelined_8x50");
    for &workers in &[1usize, 2, 4] {
        let engine = Engine::with_config(EngineConfig {
            workers,
            queue_capacity: 128,
            step_budget: None,
            ..EngineConfig::default()
        });
        let sessions: Vec<_> = (0..8).map(|_| chain_session(&engine, 100)).collect();
        let head = VarId::from_index(0);
        let mut tick = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                tick += 1;
                let tickets: Vec<_> = (0..50)
                    .flat_map(|round| {
                        sessions
                            .iter()
                            .map(move |&s| (s, round))
                            .collect::<Vec<_>>()
                    })
                    .map(|(s, round)| {
                        engine.submit(
                            s,
                            vec![Command::Set {
                                var: head,
                                value: Value::Int(tick * 1000 + round),
                                source: Source::User,
                            }],
                        )
                    })
                    .collect();
                for t in tickets {
                    t.wait().unwrap();
                }
            })
        });
    }
    group.finish();
}

/// A session of `n` variables where only two are ever touched: an
/// equality `v0 = v1` with a `v1 ≤ 60` tripwire. A violating `Set v0`
/// touches exactly two variables regardless of `n`.
fn sparse_session(engine: &Engine, n: usize) -> stem_engine::SessionId {
    let s = engine.create_session();
    let mut next = 0usize;
    while next < n {
        let hi = (next + 10_000).min(n);
        let cmds: Vec<Command> = (next..hi)
            .map(|i| Command::AddVariable {
                name: format!("v{i}"),
            })
            .collect();
        engine.apply(s, cmds).unwrap();
        next = hi;
    }
    engine
        .apply(
            s,
            vec![
                Command::AddConstraint {
                    spec: ConstraintSpec::Equality,
                    args: vec![VarId::from_index(0), VarId::from_index(1)],
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::LeConst(Value::Int(60)),
                    args: vec![VarId::from_index(1)],
                },
            ],
        )
        .unwrap();
    s
}

/// Rollback latency of a violating two-variable batch as network size
/// grows. The journaled path replays two pre-images whatever the size;
/// the legacy snapshot path copies every variable, so its curve exposes
/// the O(network) cost the journal removes (§9.2.3 cost model).
fn rollback_latency(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    let mut group = c.benchmark_group("engine/rollback_latency");
    for &(strategy, label) in &[
        (RollbackStrategy::Journal, "journal"),
        (RollbackStrategy::Snapshot, "snapshot"),
    ] {
        for &n in sizes {
            let engine = Engine::with_config(EngineConfig {
                workers: 1,
                rollback: strategy,
                ..EngineConfig::default()
            });
            let session = sparse_session(&engine, n);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    engine
                        .apply(
                            session,
                            vec![Command::Set {
                                var: VarId::from_index(0),
                                value: Value::Int(100),
                                source: Source::Application,
                            }],
                        )
                        .unwrap_err()
                })
            });
        }
    }
    group.finish();
}

/// WAL overhead on the batch round trip: the same chain-100 `Set`
/// workload as `batch_round_trip`, against a volatile engine, an
/// interval-sync durable engine (append per commit, fsync on a 25 ms
/// timer — group commit), and a commit-sync engine (fsync per batch).
/// The regression gate holds `interval_sync` within 15% of `volatile`;
/// `commit_sync` measures the price of an on-disk ack and is reported,
/// not gated against the in-memory baseline.
fn durability_overhead(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("stem-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let variants: &[(&str, Option<Durability>)] = &[
        ("volatile", None),
        (
            "interval_sync",
            Some(Durability::IntervalSync {
                interval: std::time::Duration::from_millis(25),
            }),
        ),
        ("commit_sync", Some(Durability::CommitSync)),
        // Single serial submitter: group commit still pays one fsync per
        // batch (nobody to share with), so this leg prices the
        // coordinator's overhead against commit_sync; the amortization
        // curve lives in T-E23 and BENCH_server.json.
        ("group_commit", Some(Durability::GroupCommit)),
    ];
    let mut group = c.benchmark_group("engine/durability_chain100");
    for &(label, mode) in variants {
        let engine = match mode {
            None => Engine::new(1),
            Some(mode) => Engine::open_with_config(
                base.join(label),
                EngineConfig {
                    workers: 1,
                    ..EngineConfig::default()
                },
                DurabilityOptions {
                    mode,
                    checkpoint_bytes: 0, // no checkpoint jitter mid-measurement
                    ..DurabilityOptions::default()
                },
            )
            .expect("open durable bench engine"),
        };
        let session = chain_session(&engine, 100);
        let head = VarId::from_index(0);
        let mut tick = 0i64;
        group.bench_function(label, |b| {
            b.iter(|| {
                tick += 1;
                engine
                    .apply(
                        session,
                        vec![Command::Set {
                            var: head,
                            value: Value::Int(tick),
                            source: Source::User,
                        }],
                    )
                    .unwrap()
            })
        });
        engine.shutdown();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(
    benches,
    batch_round_trip,
    pipelined_throughput,
    rollback_latency,
    durability_overhead
);
criterion_main!(benches);
