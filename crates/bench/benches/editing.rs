//! Bench E12: network editing — constraint addition with re-propagation
//! (Fig. 4.13) and removal with dependency-directed erasure (Fig. 4.14).

use stem_bench::harness::{BatchSize, BenchmarkId, Criterion};
use stem_bench::workloads;
use stem_bench::{criterion_group, criterion_main};
use stem_core::kinds::Equality;

fn add_constraint(c: &mut Criterion) {
    let mut g = c.benchmark_group("editing/add_constraint");
    for n in [100usize, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (mut net, vars) = workloads::equality_chain(n);
                    workloads::drive(&mut net, vars[0], 7);
                    let side = net.add_variable("side");
                    (net, vars, side)
                },
                |(mut net, vars, side)| {
                    // Attaching pulls the chain's value into the new var.
                    net.add_constraint(Equality::new(), [vars[n / 2], side])
                        .unwrap();
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn remove_constraint(c: &mut Criterion) {
    let mut g = c.benchmark_group("editing/remove_constraint");
    for n in [100usize, 1000] {
        // Removing the middle link of a fully propagated chain erases the
        // downstream half only (dependency-directed).
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (mut net, vars) = workloads::equality_chain(n);
                    workloads::drive(&mut net, vars[0], 7);
                    // The middle constraint is cid n/2 - 1 by construction;
                    // recover it via the variable's constraint list.
                    let mid = vars[n / 2];
                    let cid = net.constraints_of(mid)[0];
                    (net, cid)
                },
                |(mut net, cid)| {
                    net.remove_constraint(cid);
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes; pass
/// `-- --sample-size 100` etc. on the command line for precision runs.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = add_constraint, remove_constraint);
criterion_main!(benches);
