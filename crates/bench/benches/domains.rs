//! Domain-propagation benchmarks (DESIGN.md §5j): propagator fixpoint
//! throughput across fanout widths, and the runtime-subsumption pruning
//! win on compiled plan replay.
//!
//! `fixpoint` measures one journaled tighten-then-rollback round trip on
//! the multi-writer `x ≤ yᵢ` fan: the set narrows every target through
//! the agenda fixpoint loop and the rollback restores the whole touched
//! set, so each iteration performs identical work. `subsumed_prune`
//! measures a root write replayed through a 256-step compiled plan whose
//! every propagator has proved itself entailed: the `pruned` arm skips
//! each step at the liveness check, the `unpruned` twin (subsumption
//! switched off) runs the full interval math every time. The CI gate
//! (`tools/bench_compare.py`) holds pruned/unpruned ≥ 1.3× on any host.

use stem_bench::harness::Criterion;
use stem_bench::workloads;
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Interval, Justification, PlanStatus, Value};

fn iv(lo: i64, hi: i64) -> Value {
    Value::Interval(Interval::new(lo, hi))
}

/// Fixpoint throughput: tighten the root, let `fan` inequalities narrow
/// their targets, roll the journal back to the seeded state.
fn fixpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("domains/fixpoint");
    for fan in [16usize, 64, 256] {
        let (mut net, x) = workloads::domain_fanout(fan);
        let tightenings_before = net.stats().domain_tightenings;
        for _ in 0..4 {
            net.begin_journal();
            net.set(x, iv(10, 90), Justification::User).unwrap();
            net.rollback_journal();
        }
        assert!(
            net.stats().domain_tightenings >= tightenings_before + 4 * fan as u64,
            "warm-up must narrow every fan target each round"
        );
        g.bench_function(format!("{fan}"), |b| {
            b.iter(|| {
                net.begin_journal();
                net.set(x, iv(10, 90), Justification::User).unwrap();
                net.rollback_journal();
            })
        });
    }
    g.finish();
}

/// Entailed-constraint pruning on plan replay, vs. the identical network
/// with runtime subsumption disabled. The sawtooth keeps every write a
/// real change (63 refinements, then one widening that revalidates the
/// marks) while staying inside the entailment witness.
fn subsumed_prune(c: &mut Criterion) {
    let mut g = c.benchmark_group("domains/subsumed_prune");
    const N: usize = 256;
    for pruned in [true, false] {
        let path = if pruned { "pruned" } else { "unpruned" };
        let (mut net, x) = workloads::subsumed_fanout(N);
        net.set_subsumption(pruned);
        let mut i = 0u64;
        let sawtooth = |net: &mut stem_core::Network, i: &mut u64| {
            *i += 1;
            let hi = 4096 - 64 * ((*i % 64) as i64);
            net.set(x, iv(0, hi), Justification::User).unwrap();
        };
        for _ in 0..16 {
            sawtooth(&mut net, &mut i);
        }
        assert!(
            matches!(net.plan_status(x), PlanStatus::Ready { .. }),
            "warm-up must compile the root's plan"
        );
        assert_eq!(
            net.subsumed_count(),
            if pruned { N } else { 0 },
            "warm-up must leave the marks in the arm's configuration"
        );
        g.bench_function(format!("{path}/{N}"), |b| {
            b.iter(|| sawtooth(&mut net, &mut i))
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = fixpoint, subsumed_prune
);
criterion_main!(benches);
