//! Server-level benches over real loopback TCP: pipelined batch
//! throughput through the wire protocol, and replication lag — the
//! seal → fetch → ingest cycle that moves one commit from a leader
//! server to a queryable follower.

use stem_bench::harness::{BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Value, VarId};
use stem_engine::{
    Command, ConstraintSpec, Durability, DurabilityOptions, Engine, EngineConfig, Source,
};
use stem_server::{Client, Cluster, ClusterOptions, Server};

fn set_head(tick: i64) -> Command {
    Command::Set {
        var: VarId::from_index(0),
        value: Value::Int(tick),
        source: Source::User,
    }
}

fn chain_session(client: &mut Client, len: usize) -> stem_engine::SessionId {
    let s = client.open().expect("open");
    let mut cmds: Vec<Command> = (0..len)
        .map(|i| Command::AddVariable {
            name: format!("v{i}"),
        })
        .collect();
    for i in 0..len - 1 {
        cmds.push(Command::AddConstraint {
            spec: ConstraintSpec::Equality,
            args: vec![VarId::from_index(i), VarId::from_index(i + 1)],
        });
    }
    client.apply(s, &cmds).expect("transport").expect("chain");
    s
}

/// Round trips through the socket at pipeline depths 1 and 32: depth 1
/// is the request/reply latency floor (encode, frame, TCP, decode,
/// engine, and back); depth 32 keeps the connection's submission queue
/// full, so framing and propagation overlap. One iteration = `depth`
/// batches, so ops/s are burst rates — compare depths by multiplying
/// back up.
fn loopback_pipeline(c: &mut Criterion) {
    let server = Server::spawn(Engine::new(2), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let session = chain_session(&mut client, 100);
    let mut group = c.benchmark_group("server/loopback_chain100");
    let mut tick = 0i64;
    for &depth in &[1usize, 32] {
        group.bench_with_input(BenchmarkId::new("pipeline", depth), &depth, |b, &depth| {
            b.iter(|| {
                for _ in 0..depth {
                    tick += 1;
                    client.submit(session, &[set_head(tick)]).expect("submit");
                }
                let results = client.drain().expect("drain");
                assert!(results.iter().all(Result::is_ok));
                results.len()
            })
        });
    }
    group.finish();
}

/// The same pipelined loopback workload, but routed: the server fronts
/// a two-shard volatile [`Cluster`] instead of a bare engine, so every
/// batch pays the router's id translation and shard-roster read lock on
/// top of the wire. Compared against `server/loopback_chain100` by the
/// CI ratio gate — routing must stay within 15% of direct submission.
fn routed_pipeline(c: &mut Criterion) {
    let cluster = Cluster::volatile(ClusterOptions {
        shards: 2,
        workers_per_shard: 1,
        ship_interval: None,
        ..ClusterOptions::default()
    });
    let server = Server::spawn(cluster, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let session = chain_session(&mut client, 100);
    let mut group = c.benchmark_group("server/routed_chain100");
    let mut tick = 0i64;
    for &depth in &[1usize, 32] {
        group.bench_with_input(BenchmarkId::new("pipeline", depth), &depth, |b, &depth| {
            b.iter(|| {
                for _ in 0..depth {
                    tick += 1;
                    client.submit(session, &[set_head(tick)]).expect("submit");
                }
                let results = client.drain().expect("drain");
                assert!(results.iter().all(Result::is_ok));
                results.len()
            })
        });
    }
    group.finish();
}

/// Replication lag, end to end over two sockets: the leader commits one
/// durable batch, seals its WAL, and the newly sealed segments are
/// fetched from the leader server and ingested into a follower server.
/// One iteration = one commit made queryable on the replica.
fn replication_lag(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("stem-bench-ship-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let leader_engine = Engine::open_with_config(
        &dir,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        DurabilityOptions {
            mode: Durability::GroupCommit,
            // Small segments: each commit seals into its own shipping unit.
            segment_bytes: 64,
            checkpoint_bytes: 0,
            ..DurabilityOptions::default()
        },
    )
    .expect("open leader");
    let leader_srv = Server::spawn(leader_engine, "127.0.0.1:0").expect("bind leader");
    let follower_srv = Server::spawn(Engine::replica(1), "127.0.0.1:0").expect("bind follower");
    let mut leader = Client::connect(leader_srv.local_addr()).expect("connect leader");
    let mut follower = Client::connect(follower_srv.local_addr()).expect("connect follower");
    let session = chain_session(&mut leader, 20);
    // Ship the session skeleton so the measured loop ships exactly one
    // commit per iteration.
    let mut shipped = 0u64;
    let mut tick = 0i64;
    let mut ship_new = |leader: &mut Client, follower: &mut Client| {
        let mut applied = 0;
        for ix in leader.seal_wal().expect("seal") {
            if ix < shipped {
                continue;
            }
            let bytes = leader.fetch_segment(ix).expect("fetch");
            applied += follower.ingest_segment(&bytes).expect("ingest").0;
            shipped = ix + 1;
        }
        applied
    };
    ship_new(&mut leader, &mut follower);
    c.bench_function("server/replication_lag_1commit", |b| {
        b.iter(|| {
            tick += 1;
            leader
                .apply(session, &[set_head(tick)])
                .expect("transport")
                .expect("commit");
            let applied = ship_new(&mut leader, &mut follower);
            assert!(applied >= 1, "each iteration must ship its commit");
            applied
        })
    });
    drop(leader);
    drop(follower);
    drop(leader_srv);
    drop(follower_srv);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, loopback_pipeline, routed_pipeline, replication_lag);
criterion_main!(benches);
