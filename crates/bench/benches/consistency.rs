//! Bench E13: consistency maintenance (§6.3) — lazy calculated views and
//! update-constraint erasure vs. eager recomputation.

use stem_bench::harness::{BatchSize, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_cells::CellKit;
use stem_compilers::CompilerView;
use stem_design::ChangeKey;

/// Many reads, few changes: the lazy view recalculates only after changes.
fn lazy_views(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistency/lazy_views");
    g.sample_size(20);
    g.bench_function("lazy_100_reads_5_changes", |b| {
        b.iter_batched(
            || {
                let mut kit = CellKit::new();
                let fa = kit.full_adder("FA");
                let view = CompilerView::new(&mut kit.design, fa);
                (kit, fa, view)
            },
            |(mut kit, fa, view)| {
                for round in 0..5 {
                    kit.design.notify_changed(fa, ChangeKey::Layout);
                    for _ in 0..20 {
                        view.data(&mut kit.design).unwrap();
                    }
                    let _ = round;
                }
                assert_eq!(view.recalc_count(), 5);
                kit
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("eager_100_reads_5_changes", |b| {
        b.iter_batched(
            || {
                let mut kit = CellKit::new();
                let fa = kit.full_adder("FA");
                (kit, fa)
            },
            |(mut kit, fa)| {
                // Eager strategy: recompute the view data on every read.
                for round in 0..5 {
                    kit.design.notify_changed(fa, ChangeKey::Layout);
                    for _ in 0..20 {
                        let view = CompilerView::new(&mut kit.design, fa);
                        view.data(&mut kit.design).unwrap();
                        view.release(&mut kit.design);
                    }
                    let _ = round;
                }
                kit
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes; pass
/// `-- --sample-size 100` etc. on the command line for precision runs.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = lazy_views);
criterion_main!(benches);
