//! Bench E7: hierarchical delay networks (§7.3) — build + evaluate cost
//! and incremental re-propagation cost for ripple-carry adders.

use stem_bench::harness::{BatchSize, BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_cells::CellKit;

fn build_and_evaluate(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay/hier_network");
    g.sample_size(20);
    for w in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("build", w), &w, |b, &w| {
            b.iter_batched(
                || {
                    let mut kit = CellKit::new();
                    let rca = kit.ripple_carry_adder(&format!("RCA{w}"), w);
                    (kit, rca)
                },
                |(mut kit, rca)| {
                    let t = kit
                        .analyzer
                        .delay(&mut kit.design, rca, "cin", "cout")
                        .unwrap()
                        .unwrap();
                    assert!(t > 0.0);
                    kit
                },
                BatchSize::SmallInput,
            )
        });
        // Incremental: once built, a leaf re-characterisation propagates
        // up without rebuilding ("propagated up the design hierarchy as
        // soon as they are available", §7.3).
        g.bench_with_input(BenchmarkId::new("repropagate", w), &w, |b, &w| {
            b.iter_batched(
                || {
                    let mut kit = CellKit::new();
                    let rca = kit.ripple_carry_adder(&format!("RCA{w}"), w);
                    kit.analyzer
                        .delay(&mut kit.design, rca, "cin", "cout")
                        .unwrap()
                        .unwrap();
                    let and2 = kit.gates.and2;
                    (kit, and2, 0u32)
                },
                |(mut kit, and2, _)| {
                    // Alternate the AND gate's characteristic delay.
                    kit.analyzer.clear_estimate(&mut kit.design, and2, "a", "y");
                    kit.analyzer
                        .set_estimate(&mut kit.design, and2, "a", "y", 1.6)
                        .unwrap();
                    kit
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E17 — the ripple vs. carry-select trade-off, timed end-to-end: build
/// the structural adder and evaluate its carry-path estimate.
fn adder_tradeoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay/adder_tradeoff");
    g.sample_size(10);
    g.bench_function("ripple8", |b| {
        b.iter_batched(
            CellKit::new,
            |mut kit| {
                let rca = kit.ripple_carry_adder("RCA8", 8);
                let t = kit
                    .analyzer
                    .delay(&mut kit.design, rca, "cin", "cout")
                    .unwrap()
                    .unwrap();
                assert!(t > 0.0);
                kit
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("carry_select8", |b| {
        b.iter_batched(
            CellKit::new,
            |mut kit| {
                let csa = kit.carry_select_adder("CSA8", 8);
                let t = kit
                    .analyzer
                    .delay(&mut kit.design, csa, "cin", "cout")
                    .unwrap()
                    .unwrap();
                assert!(t > 0.0);
                kit
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes; pass
/// `-- --sample-size 100` etc. on the command line for precision runs.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = build_and_evaluate, adder_tradeoff);
criterion_main!(benches);
