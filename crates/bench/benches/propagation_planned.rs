//! Bench E22: plan-cached vs. agenda propagation (§9.2.3's "precompiled
//! topological sorts" applied to the dynamic `set` path).
//!
//! Unlike the construction-heavy benches, these measure *steady state*:
//! the network is built and warmed outside the timed region (the first
//! `set` compiles the plan), and each iteration is one `set` on the
//! source with a fresh value, so every cycle rewrites the whole cone and
//! the planned arm replays its cached plan.

use stem_bench::harness::Criterion;
use stem_bench::workloads;
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Justification, PlanStatus, Value};

/// Steady-state `set` throughput on the dense-fanout cone, planned vs.
/// agenda, across fanout widths.
fn dense_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/dense_fanout");
    for fan in [16usize, 64, 256] {
        for planned in [false, true] {
            let path = if planned { "planned" } else { "agenda" };
            let (mut net, src) = workloads::dense_fanout(fan);
            net.set_plan_caching(planned);
            for i in 0..16 {
                net.set(src, Value::Int(i), Justification::User).unwrap();
            }
            assert_eq!(
                matches!(net.plan_status(src), PlanStatus::Ready { .. }),
                planned,
                "warm-up must leave the cache in the arm's configuration"
            );
            let mut i = 100i64;
            g.bench_function(format!("{path}/{fan}"), |b| {
                b.iter(|| {
                    i += 1;
                    net.set(src, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Parallel cone replay vs. the identical plan replayed sequentially, on
/// the cone-partitionable fanout (8 independent cones per root write).
/// The `par_seq` arm runs with a one-thread budget, `parallel` with
/// eight. Below the default 256-step partition floor (fan 16, 144
/// executing steps) the parallel arm falls back to sequential replay, so
/// the two arms must stay within noise of each other there — the CI
/// gate (`tools/bench_compare.py`) enforces parallel/par_seq ≥ 2.5× at
/// fan 256 and ≥ 0.95× at fan 16 on machines with ≥ 8 cores.
fn parallel_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/dense_fanout");
    const CONES: usize = 8;
    for fan in [16usize, 64, 256] {
        for threads in [1usize, 8] {
            let path = if threads == 1 { "par_seq" } else { "parallel" };
            let (mut net, src) = workloads::par_fanout(CONES, fan);
            net.set_parallel_threads(threads);
            for i in 0..16 {
                net.set(src, Value::Int(i), Justification::User).unwrap();
            }
            let partitioned = threads > 1 && CONES * (fan + 2) >= net.parallel_min_steps();
            assert_eq!(
                net.plan_parallel_cones(src),
                partitioned.then_some(CONES),
                "warm-up must leave the partition in the arm's configuration \
                 (threads={threads}, fan={fan})"
            );
            let mut i = 100i64;
            g.bench_function(format!("{path}/{fan}"), |b| {
                b.iter(|| {
                    i += 1;
                    net.set(src, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Same comparison on a pairwise equality star (every spoke its own
/// constraint — maximal dispatch count per cycle).
fn equality_star(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/equality_star");
    for n in [64usize, 256] {
        for planned in [false, true] {
            let path = if planned { "planned" } else { "agenda" };
            let (mut net, hub) = workloads::equality_star(n);
            net.set_plan_caching(planned);
            for i in 0..16 {
                net.set(hub, Value::Int(i), Justification::User).unwrap();
            }
            let mut i = 100i64;
            g.bench_function(format!("{path}/{n}"), |b| {
                b.iter(|| {
                    i += 1;
                    net.set(hub, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Invalidate-and-recompile cost: a structural toggle between sets forces
/// a recompilation every iteration — the worst case for the cache, which
/// must still stay within sight of the pure agenda path.
fn recompile_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/recompile_churn");
    for fan in [64usize] {
        let (mut net, src) = workloads::dense_fanout(fan);
        let probe = {
            use stem_core::kinds::Predicate;
            let v = net.add_variable("probe_guard");
            net.add_constraint(Predicate::le_const(Value::Int(i64::MAX)), [v])
                .unwrap()
        };
        for i in 0..16 {
            net.set(src, Value::Int(i), Justification::User).unwrap();
        }
        let mut i = 100i64;
        let mut on = true;
        g.bench_function(format!("toggle_between_sets/{fan}"), |b| {
            b.iter(|| {
                i += 1;
                on = !on;
                net.set_constraint_enabled(probe, on);
                net.set(src, Value::Int(i), Justification::User).unwrap();
            })
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = dense_fanout, parallel_replay, equality_star, recompile_churn
);
criterion_main!(benches);
