//! Bench E22: plan-cached vs. agenda propagation (§9.2.3's "precompiled
//! topological sorts" applied to the dynamic `set` path).
//!
//! Unlike the construction-heavy benches, these measure *steady state*:
//! the network is built and warmed outside the timed region (the first
//! `set` compiles the plan), and each iteration is one `set` on the
//! source with a fresh value, so every cycle rewrites the whole cone and
//! the planned arm replays its cached plan.

use stem_bench::harness::Criterion;
use stem_bench::workloads;
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Justification, PlanStatus, Value};

/// Steady-state `set` throughput on the dense-fanout cone, planned vs.
/// agenda, across fanout widths.
fn dense_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/dense_fanout");
    for fan in [16usize, 64, 256] {
        for planned in [false, true] {
            let path = if planned { "planned" } else { "agenda" };
            let (mut net, src) = workloads::dense_fanout(fan);
            net.set_plan_caching(planned);
            for i in 0..16 {
                net.set(src, Value::Int(i), Justification::User).unwrap();
            }
            assert_eq!(
                matches!(net.plan_status(src), PlanStatus::Ready { .. }),
                planned,
                "warm-up must leave the cache in the arm's configuration"
            );
            let mut i = 100i64;
            g.bench_function(format!("{path}/{fan}"), |b| {
                b.iter(|| {
                    i += 1;
                    net.set(src, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Parallel cone replay vs. the identical plan replayed sequentially, on
/// the cone-partitionable fanout (8 independent cones per root write).
/// The `par_seq` arm runs with a one-thread budget, `parallel` with
/// eight. Below the default 256-step partition floor (fan 16, 144
/// executing steps) the parallel arm falls back to sequential replay.
/// At fan 64 a partition compiles (528 steps) but every cone is only 66
/// steps — below the default 128-step per-task cost floor
/// (`set_parallel_cone_min_steps`) — so the replay takes the inline
/// path instead of paying pool hand-off for sub-microsecond cones. The
/// CI gate (`tools/bench_compare.py`) enforces parallel/par_seq ≥ 0.95×
/// at every fan on any machine, and ≥ 2.5× at fan 256 with ≥ 8 cores.
fn parallel_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/dense_fanout");
    const CONES: usize = 8;
    for fan in [16usize, 64, 256] {
        for threads in [1usize, 8] {
            let path = if threads == 1 { "par_seq" } else { "parallel" };
            let (mut net, src) = workloads::par_fanout(CONES, fan);
            net.set_parallel_threads(threads);
            for i in 0..16 {
                net.set(src, Value::Int(i), Justification::User).unwrap();
            }
            let partitioned = threads > 1 && CONES * (fan + 2) >= net.parallel_min_steps();
            assert_eq!(
                net.plan_parallel_cones(src),
                partitioned.then_some(CONES),
                "warm-up must leave the partition in the arm's configuration \
                 (threads={threads}, fan={fan})"
            );
            let mut i = 100i64;
            g.bench_function(format!("{path}/{fan}"), |b| {
                b.iter(|| {
                    i += 1;
                    net.set(src, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Same comparison on a pairwise equality star (every spoke its own
/// constraint — maximal dispatch count per cycle).
fn equality_star(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/equality_star");
    for n in [64usize, 256] {
        for planned in [false, true] {
            let path = if planned { "planned" } else { "agenda" };
            let (mut net, hub) = workloads::equality_star(n);
            net.set_plan_caching(planned);
            for i in 0..16 {
                net.set(hub, Value::Int(i), Justification::User).unwrap();
            }
            let mut i = 100i64;
            g.bench_function(format!("{path}/{n}"), |b| {
                b.iter(|| {
                    i += 1;
                    net.set(hub, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Structural-edit churn: a constraint toggle between sets, swept over
/// fanout widths in two shapes. `toggle_between_sets` flips a predicate
/// on a standalone guard variable whose footprint is disjoint from the
/// measured cone — under per-root dirty tracking the cone's plan
/// survives the edit, so the arm runs at cache-hit speed (this is the
/// O(touched) invalidation win; the old global generation bump
/// recompiled the cone every iteration). `toggle_in_cone` flips a
/// predicate directly on the source variable, so every iteration
/// genuinely invalidates and recompiles the cone's plan — the honest
/// worst case, which must still stay within sight of the agenda path.
fn recompile_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/recompile_churn");
    for fan in [16usize, 64, 256] {
        for in_cone in [false, true] {
            let name = if in_cone {
                "toggle_in_cone"
            } else {
                "toggle_between_sets"
            };
            let (mut net, src) = workloads::dense_fanout(fan);
            let probe = {
                use stem_core::kinds::Predicate;
                let target = if in_cone {
                    src
                } else {
                    net.add_variable("probe_guard")
                };
                net.add_constraint(Predicate::le_const(Value::Int(i64::MAX)), [target])
                    .unwrap()
            };
            for i in 0..16 {
                net.set(src, Value::Int(i), Justification::User).unwrap();
            }
            let mut i = 100i64;
            let mut on = true;
            g.bench_function(format!("{name}/{fan}"), |b| {
                b.iter(|| {
                    i += 1;
                    on = !on;
                    net.set_constraint_enabled(probe, on);
                    net.set(src, Value::Int(i), Justification::User).unwrap();
                })
            });
        }
    }
    g.finish();
}

/// Pool dispatch overhead on a plan too small to profit from it: four
/// 6-step cones, with the partition floor dropped so a partition
/// compiles anyway. Every cone sits far below the default 128-step
/// per-task cost floor, so the `par` arm must take the inline replay
/// path and stay within noise of `seq` — the regression this floor
/// fixed was exactly this shape paying pool hand-off per replay.
fn dispatch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/dispatch_overhead");
    const CONES: usize = 4;
    const FAN: usize = 4;
    for threads in [1usize, 8] {
        let path = if threads == 1 { "seq" } else { "par" };
        let (mut net, src) = workloads::par_fanout(CONES, FAN);
        net.set_parallel_threads(threads);
        net.set_parallel_min_steps(1);
        for i in 0..16 {
            net.set(src, Value::Int(i), Justification::User).unwrap();
        }
        assert_eq!(
            net.plan_parallel_cones(src),
            (threads > 1).then_some(CONES),
            "warm-up must leave the partition in the arm's configuration"
        );
        let mut i = 100i64;
        g.bench_function(format!("{path}/{CONES}x{FAN}"), |b| {
            b.iter(|| {
                i += 1;
                net.set(src, Value::Int(i), Justification::User).unwrap();
            })
        });
    }
    g.finish();
}

/// Intra-cone wavefront pipelining: the dense fanout is ONE giant cone
/// (src → mirrors → a single shared sum), so cone partitioning finds
/// nothing to split — with a thread budget the levelizer pipelines the
/// cone's steps layer-by-layer across the pool instead. On a one-CPU
/// host this measures pure pipelining overhead (the id is recorded for
/// tracking, not ratio-gated below 8 cores).
fn wavefront_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation_planned/dense_fanout");
    let fan = 256usize;
    let (mut net, src) = workloads::dense_fanout(fan);
    net.set_parallel_threads(8);
    for i in 0..16 {
        net.set(src, Value::Int(i), Justification::User).unwrap();
    }
    // 258 executing steps clear the 256-step partition floor; the
    // single cone levelizes (one cone, widest layer = the mirrors).
    assert_eq!(
        net.plan_parallel_cones(src),
        Some(1),
        "warm-up must leave a wavefront plan in the cache"
    );
    let mut i = 100i64;
    g.bench_function(format!("wave/{fan}"), |b| {
        b.iter(|| {
            i += 1;
            net.set(src, Value::Int(i), Justification::User).unwrap();
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = dense_fanout, parallel_replay, wavefront_replay, equality_star, recompile_churn,
        dispatch_overhead
);
criterion_main!(benches);
