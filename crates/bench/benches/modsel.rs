//! Bench E9: module selection efficiency (§8.2) — generate-and-test with
//! and without tree pruning and selective testing.

use stem_bench::harness::{BatchSize, BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_cells::{synthetic_pruning_family, CellKit};
use stem_design::{CellInstanceId, SignalDir};
use stem_geom::Transform;
use stem_modsel::{select_realizations, SelectionOptions, TestKind};

fn context(groups: usize, leaves: usize) -> (CellKit, CellInstanceId) {
    let mut kit = CellKit::new();
    let fam = synthetic_pruning_family(&mut kit, groups, leaves);
    let d = &mut kit.design;
    let top = d.define_class("TOP");
    d.add_signal(top, "a", SignalDir::Input);
    d.set_signal_bit_width(top, "a", 8).unwrap();
    d.add_signal(top, "s", SignalDir::Output);
    d.set_signal_bit_width(top, "s", 8).unwrap();
    let inst = d
        .instantiate(fam.root, top, "add", Transform::IDENTITY)
        .unwrap();
    let na = d.add_net(top, "na");
    d.connect_io(na, "a").unwrap();
    d.connect(na, inst, "a").unwrap();
    let ns = d.add_net(top, "ns");
    d.connect(ns, inst, "s").unwrap();
    d.connect_io(ns, "s").unwrap();
    kit.analyzer.declare_delay(&mut kit.design, top, "a", "s");
    kit.analyzer
        .constrain_max(&mut kit.design, top, "a", "s", 7.9)
        .unwrap();
    (kit, inst)
}

fn pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("modsel/pruning");
    g.sample_size(20);
    for (groups, leaves) in [(4usize, 8usize), (8, 16)] {
        let label = format!("{groups}x{leaves}");
        g.bench_with_input(
            BenchmarkId::new("pruned", &label),
            &(groups, leaves),
            |b, &(gr, lv)| {
                b.iter_batched(
                    || context(gr, lv),
                    |(mut kit, inst)| {
                        let out = select_realizations(
                            &mut kit.design,
                            &mut kit.analyzer,
                            inst,
                            &SelectionOptions::default(),
                        )
                        .unwrap();
                        assert!(!out.valid.is_empty());
                        kit
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("unpruned", &label),
            &(groups, leaves),
            |b, &(gr, lv)| {
                b.iter_batched(
                    || context(gr, lv),
                    |(mut kit, inst)| {
                        let out = select_realizations(
                            &mut kit.design,
                            &mut kit.analyzer,
                            inst,
                            &SelectionOptions {
                                prune: false,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                        assert!(!out.valid.is_empty());
                        kit
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("delays_only", &label),
            &(groups, leaves),
            |b, &(gr, lv)| {
                b.iter_batched(
                    || context(gr, lv),
                    |(mut kit, inst)| {
                        let out = select_realizations(
                            &mut kit.design,
                            &mut kit.analyzer,
                            inst,
                            &SelectionOptions {
                                priorities: vec![TestKind::Delays],
                                prune: true,
                            },
                        )
                        .unwrap();
                        assert!(!out.valid.is_empty());
                        kit
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

/// E18 — joint selection over a two-adder pipeline (backtracking with
/// snapshot rollback).
fn joint(c: &mut Criterion) {
    use stem_cells::{adder8_family, ADDER_UNIT_WIDTH};
    use stem_geom::Point;
    use stem_modsel::select_joint_realizations;

    let mut g = c.benchmark_group("modsel/joint");
    g.sample_size(15);
    g.bench_function("two_adder_pipeline", |b| {
        b.iter_batched(
            || {
                let mut kit = CellKit::new();
                let family = adder8_family(&mut kit);
                let d = &mut kit.design;
                let top = d.define_class("PIPE");
                d.add_signal(top, "in", SignalDir::Input);
                d.set_signal_bit_width(top, "in", 8).unwrap();
                d.add_signal(top, "out", SignalDir::Output);
                d.set_signal_bit_width(top, "out", 8).unwrap();
                let a1 = d
                    .instantiate(family.generic, top, "a1", Transform::IDENTITY)
                    .unwrap();
                let a2 = d
                    .instantiate(
                        family.generic,
                        top,
                        "a2",
                        Transform::translation(Point::new(3 * ADDER_UNIT_WIDTH, 0)),
                    )
                    .unwrap();
                let n1 = d.add_net(top, "n1");
                d.connect_io(n1, "in").unwrap();
                d.connect(n1, a1, "a").unwrap();
                let n2 = d.add_net(top, "n2");
                d.connect(n2, a1, "s").unwrap();
                d.connect(n2, a2, "a").unwrap();
                let n3 = d.add_net(top, "n3");
                d.connect(n3, a2, "s").unwrap();
                d.connect_io(n3, "out").unwrap();
                kit.analyzer
                    .declare_delay(&mut kit.design, top, "in", "out");
                kit.analyzer
                    .constrain_max(&mut kit.design, top, "in", "out", 14.0)
                    .unwrap();
                (kit, a1, a2)
            },
            |(mut kit, a1, a2)| {
                let out = select_joint_realizations(
                    &mut kit.design,
                    &mut kit.analyzer,
                    &[a1, a2],
                    &SelectionOptions::default(),
                )
                .unwrap();
                assert_eq!(out.combinations.len(), 3);
                kit
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes; pass
/// `-- --sample-size 100` etc. on the command line for precision runs.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = pruning, joint);
criterion_main!(benches);
