//! Bench E3: hierarchical constraint propagation (Fig. 5.1) — a shared
//! internal network evaluated once vs. flat per-instance replication.

use stem_bench::harness::{BatchSize, BenchmarkId, Criterion};
use stem_bench::workloads;
use stem_bench::{criterion_group, criterion_main};

const INTERNAL: usize = 200;

fn internal_once(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy/internal_once");
    for n in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, &n| {
            b.iter_batched(
                || workloads::hierarchical_fanout(INTERNAL, n),
                |(mut net, input, _)| {
                    workloads::drive(&mut net, input, 1);
                    net
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("flat", n), &n, |b, &n| {
            b.iter_batched(
                || workloads::flat_replication(INTERNAL, n),
                |(mut net, input, _)| {
                    workloads::drive(&mut net, input, 1);
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes; pass
/// `-- --sample-size 100` etc. on the command line for precision runs.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = internal_once);
criterion_main!(benches);
