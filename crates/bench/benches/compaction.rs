//! Bench E16: constraint satisfaction (Electric-style longest-path
//! compaction, thesis §2.1) solving layout placements that propagation
//! can only verify (§7.4's division of labour).

use stem_bench::harness::{BatchSize, BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_compact::RowSpec;
use stem_core::kinds::Predicate;
use stem_core::{Justification, Network, Value};

fn row(n: usize) -> RowSpec {
    let mut spec = RowSpec {
        min_separation: 2,
        ..Default::default()
    };
    for i in 0..n {
        spec.cell(format!("c{i}"), 6 + (i % 5) as i64 * 2);
    }
    // Sparse long-range exact offsets to exercise the cycle handling.
    for i in (0..n.saturating_sub(10)).step_by(10) {
        spec.exact_offsets.push((i, i + 10, 120));
    }
    spec
}

fn solve_vs_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("compaction/solve_vs_verify");
    for n in [50usize, 200, 800] {
        g.bench_with_input(BenchmarkId::new("solve", n), &n, |b, &n| {
            let spec = row(n);
            b.iter(|| stem_compact::compact_row(&spec).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("verify", n), &n, |b, &n| {
            // Verification with a STEM predicate network: assign all
            // solved positions and sweep.
            let spec = row(n);
            let (sol, ids) = stem_compact::compact_row(&spec).unwrap();
            let positions: Vec<i64> = ids.iter().map(|&e| sol.position(e)).collect();
            let widths: Vec<i64> = spec.cells.iter().map(|c| c.width).collect();
            b.iter_batched(
                || {
                    let mut net = Network::new();
                    let xs: Vec<_> = (0..n).map(|i| net.add_variable(format!("x{i}"))).collect();
                    for i in 0..n - 1 {
                        let gap = widths[i] + 2;
                        net.add_constraint_quiet(
                            Predicate::custom("minSep", move |vals| {
                                match (vals[0].as_i64(), vals[1].as_i64()) {
                                    (Some(a), Some(b)) => b >= a + gap,
                                    _ => true,
                                }
                            }),
                            [xs[i], xs[i + 1]],
                        );
                    }
                    (net, xs)
                },
                |(mut net, xs)| {
                    net.set_propagation_enabled(false);
                    for (i, &x) in xs.iter().enumerate() {
                        net.set(x, Value::Int(positions[i]), Justification::Application)
                            .unwrap();
                    }
                    net.set_propagation_enabled(true);
                    assert!(net.check_all().is_empty());
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = solve_vs_verify);
criterion_main!(benches);
