//! `stem-persist` micro- and macro-benches: raw WAL append throughput
//! (buffered and fsync-per-record), snapshot write cost, and end-to-end
//! engine recovery time from a log tail versus from a checkpoint.

use std::path::PathBuf;
use stem_bench::harness::{BenchmarkId, Criterion};
use stem_bench::{criterion_group, criterion_main};
use stem_core::{Value, VarId};
use stem_engine::{Command, DurabilityOptions, Engine, EngineConfig, SessionId, Source};
use stem_persist::{
    PersistCommand, PersistSource, Snapshot, Store, StoreOptions, SyncPolicy, WalRecord,
};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stem-bench-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn sample_record(seq: u64) -> WalRecord {
    WalRecord::Batch {
        session: 0,
        seq,
        key: 0,
        commands: vec![
            PersistCommand::Set {
                var: VarId::from_index(0),
                value: Value::Int(seq as i64),
                source: PersistSource::User,
            },
            PersistCommand::Set {
                var: VarId::from_index(1),
                value: Value::Int(-(seq as i64)),
                source: PersistSource::Application,
            },
        ],
    }
}

/// Raw append throughput of a two-command batch record. `deferred`
/// buffers (interval-sync's per-commit cost); `fsync` is commit-sync's.
fn wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/wal_append_2cmd");
    for &(label, sync) in &[
        ("deferred", SyncPolicy::Deferred),
        ("fsync", SyncPolicy::Always),
    ] {
        let dir = temp_dir(label);
        let (mut store, _) = Store::open(
            &dir,
            StoreOptions {
                segment_bytes: 64 << 20, // no rotation mid-measurement
                sync,
                ..StoreOptions::default()
            },
        )
        .expect("open store");
        let mut seq = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                seq += 1;
                store.append(&sample_record(seq)).expect("append")
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Snapshot write cost for a 1000-variable session image.
fn snapshot_write(c: &mut Criterion) {
    let dir = temp_dir("snapshot");
    let (mut store, _) = Store::open(&dir, StoreOptions::default()).expect("open store");
    let state = {
        // A realistic image is produced by gathering a live network; for
        // the write-path bench the shape (1000 vars) is what matters.
        let mut s = stem_persist::SessionState::default();
        for i in 0..1000 {
            s.vars.push((
                format!("v{i}"),
                Value::Int(i as i64),
                stem_core::Justification::User,
            ));
        }
        s
    };
    let mut n = 0u64;
    c.bench_function("persist/snapshot_write_1kvar", |b| {
        b.iter(|| {
            n += 1;
            let snap = Snapshot {
                next_session: 1,
                closed: Vec::new(),
                sessions: vec![(0, n, state.clone())],
            };
            store.write_snapshot(&snap, &[]).expect("snapshot")
        })
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a durable engine directory: one session, a 50-variable
/// equality chain, then `batches` single-`Set` commits. With
/// `checkpointed`, a snapshot covers everything and the log tail is
/// empty; otherwise recovery replays every batch.
fn build_recovery_dir(tag: &str, batches: usize, checkpointed: bool) -> PathBuf {
    let dir = temp_dir(tag);
    let engine = Engine::open_with_config(
        &dir,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        DurabilityOptions {
            checkpoint_bytes: 0,
            ..DurabilityOptions::default()
        },
    )
    .expect("open build engine");
    let s = engine.create_session();
    let mut cmds: Vec<Command> = (0..50)
        .map(|i| Command::AddVariable {
            name: format!("v{i}"),
        })
        .collect();
    for i in 0..49 {
        cmds.push(Command::AddConstraint {
            spec: stem_engine::ConstraintSpec::Equality,
            args: vec![VarId::from_index(i), VarId::from_index(i + 1)],
        });
    }
    engine.apply(s, cmds).unwrap();
    for i in 0..batches {
        engine
            .apply(
                s,
                vec![Command::Set {
                    var: VarId::from_index(0),
                    value: Value::Int(i as i64),
                    source: Source::User,
                }],
            )
            .unwrap();
    }
    if checkpointed {
        engine.checkpoint().expect("checkpoint");
    }
    engine.shutdown();
    dir
}

/// End-to-end `Engine::open` on a prebuilt directory: log-tail replay
/// versus snapshot restore for the same 500-commit history. The
/// `session_stats` call fences on the worker, so the timed region covers
/// the full rebuild of the session's network.
fn recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/recovery_500set");
    group.sample_size(10);
    for &(label, checkpointed) in &[("log_replay", false), ("snapshot", true)] {
        let dir = build_recovery_dir(label, 500, checkpointed);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter_batched(
                // Drop the 8-byte segments each reopen leaves behind so
                // the directory doesn't grow across iterations.
                || {
                    for e in std::fs::read_dir(&dir).unwrap() {
                        let e = e.unwrap();
                        if e.metadata().unwrap().len() == 8 {
                            let _ = std::fs::remove_file(e.path());
                        }
                    }
                },
                |()| {
                    let engine = Engine::open(&dir).expect("recover");
                    let stats = engine.session_stats(SessionId(0));
                    assert!(stats.n_variables >= 50);
                    engine.shutdown();
                },
                stem_bench::harness::BatchSize::PerIteration,
            )
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, wal_append, snapshot_write, recovery_time);
criterion_main!(benches);
