//! Benches E1/E2/E10/E11: raw propagation cost of the core engine.

use stem_bench::harness::{BatchSize, BenchmarkId, Criterion};
use stem_bench::workloads;
use stem_bench::{criterion_group, criterion_main};
use stem_core::kinds::{Equality, Functional};
use stem_core::{Justification, Network, Value};

/// E1 — the Fig. 4.5 network: one user assignment through an equality and
/// a scheduled maximum.
fn simple_network(c: &mut Criterion) {
    c.bench_function("propagation/simple_network", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new();
                let v1 = net.add_variable("V1");
                let v2 = net.add_variable("V2");
                let v3 = net.add_variable("V3");
                let v4 = net.add_variable("V4");
                net.add_constraint(Equality::new(), [v1, v2]).unwrap();
                net.add_constraint(Functional::uni_maximum(), [v2, v3, v4])
                    .unwrap();
                net.set(v3, Value::Int(7), Justification::User).unwrap();
                (net, v1)
            },
            |(mut net, v1)| {
                net.set(v1, Value::Int(9), Justification::User).unwrap();
                net
            },
            BatchSize::SmallInput,
        )
    });
}

/// E2 — the Fig. 4.9 cycle: violation detection plus full restoration.
fn cycle_detect(c: &mut Criterion) {
    c.bench_function("propagation/cycle_detect", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new();
                let v1 = net.add_variable("V1");
                let v2 = net.add_variable("V2");
                let v3 = net.add_variable("V3");
                let plus = |k: i64| {
                    Functional::custom("plusConst", move |vals| {
                        vals[0].as_i64().map(|x| Value::Int(x + k))
                    })
                };
                net.add_constraint(plus(1), [v1, v2]).unwrap();
                net.add_constraint(plus(3), [v2, v3]).unwrap();
                net.add_constraint(plus(2), [v3, v1]).unwrap();
                (net, v1)
            },
            |(mut net, v1)| {
                let err = net.set(v1, Value::Int(10), Justification::User);
                assert!(err.is_err());
                net
            },
            BatchSize::SmallInput,
        )
    });
}

/// E10 — the §9.2.3 complexity claim: flood time across shapes and sizes.
fn complexity_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation/complexity_scaling");
    for n in [100usize, 400, 1600] {
        g.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            b.iter_batched(
                || workloads::equality_chain(n),
                |(mut net, vars)| {
                    workloads::drive(&mut net, vars[0], 1);
                    net
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("star", n), &n, |b, &n| {
            b.iter_batched(
                || workloads::equality_star(n),
                |(mut net, hub)| {
                    workloads::drive(&mut net, hub, 1);
                    net
                },
                BatchSize::SmallInput,
            )
        });
        let side = (n as f64).sqrt() as usize;
        g.bench_with_input(BenchmarkId::new("grid", n), &side, |b, &side| {
            b.iter_batched(
                || workloads::equality_grid(side, side),
                |(mut net, corner)| {
                    workloads::drive(&mut net, corner, 1);
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E11 — agenda batching vs. immediate recomputation of a wide sum.
fn agenda_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation/agenda_batching");
    for fan in [8usize, 64] {
        g.bench_with_input(BenchmarkId::new("scheduled", fan), &fan, |b, &fan| {
            b.iter_batched(
                || workloads::fan_in_sum(fan, true),
                |(mut net, src, _)| {
                    workloads::drive(&mut net, src, 3);
                    net
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("immediate", fan), &fan, |b, &fan| {
            b.iter_batched(
                || workloads::fan_in_sum(fan, false),
                |(mut net, src, _)| {
                    workloads::drive(&mut net, src, 3);
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E15 — compiled straight-line evaluation vs. interpreted propagation
/// over a functional adder tree (§9.3 network compilation).
fn compiled_vs_interpreted(c: &mut Criterion) {
    use stem_core::compile_functional;
    let mut g = c.benchmark_group("propagation/compiled_vs_interpreted");
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, &n| {
            b.iter_batched(
                || workloads::adder_tree(n),
                |(mut net, leaves, _)| {
                    for (i, &l) in leaves.iter().enumerate() {
                        net.set(l, Value::Int(i as i64), Justification::User)
                            .unwrap();
                    }
                    net
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (net, leaves, root) = workloads::adder_tree(n);
                    let plan = compile_functional(&net).unwrap();
                    (net, leaves, root, plan)
                },
                |(mut net, leaves, _, plan)| {
                    net.set_propagation_enabled(false);
                    for (i, &l) in leaves.iter().enumerate() {
                        net.set(l, Value::Int(i as i64), Justification::User)
                            .unwrap();
                    }
                    net.set_propagation_enabled(true);
                    plan.evaluate(&mut net).unwrap();
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E22 — steady-state `set`s served by the propagation plan cache vs.
/// the agenda interpreter on the dense-fanout cone. The full sweep lives
/// in the `propagation_planned` bench; these two entries keep the
/// headline comparison in `BENCH_propagation.json` for regression
/// tracking.
fn planned_dense_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation/planned_dense_fanout");
    for planned in [false, true] {
        let path = if planned { "planned" } else { "agenda" };
        let (mut net, src) = workloads::dense_fanout(64);
        net.set_plan_caching(planned);
        for i in 0..16 {
            net.set(src, Value::Int(i), Justification::User).unwrap();
        }
        let mut i = 100i64;
        g.bench_function(format!("{path}/64"), |b| {
            b.iter(|| {
                i += 1;
                net.set(src, Value::Int(i), Justification::User).unwrap();
            })
        });
    }
    g.finish();
}

/// Quick profile so `cargo bench --workspace` finishes in minutes; pass
/// `-- --sample-size 100` etc. on the command line for precision runs.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(15)
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    simple_network,
    cycle_detect,
    complexity_scaling,
    agenda_batching,
    compiled_vs_interpreted,
    planned_dense_fanout
);
criterion_main!(benches);
