#!/usr/bin/env python3
"""Compare smoke-bench JSON output against the checked-in baseline.

Usage:
  tools/bench_compare.py                  # compare BENCH_*.json vs BENCH_baseline.json
  tools/bench_compare.py --update         # rewrite BENCH_baseline.json from current JSONs
  tools/bench_compare.py --write-baseline # run every smoke bench fresh, then rewrite
  tools/bench_compare.py --threshold 0.4  # custom allowed fractional ops/s drop

Exit status 1 if any benchmark id present in both current output and the
baseline regressed by more than the threshold (default 25% ops/s drop).
Smoke runs are short (5 samples), so the comparison uses median-derived
ops/s and a generous threshold: this is a tripwire for order-of-magnitude
mistakes (accidental debug profile, quadratic blowup, plan cache silently
disabled), not a micro-benchmark referee. New ids are reported and pass;
ids that vanished from the current run fail, since a silently dropped
benchmark is exactly what a regression gate must notice.

Besides the absolute floors, RATIO_GATES checks relative speedups between
arms of the same run (e.g. parallel vs. sequential plan replay) — those
cancel machine speed out, but are only enforced on hosts with enough CPUs
to make thread scaling observable.

Stdlib only — the repo is hermetic and this must run offline.
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(ROOT, "BENCH_baseline.json")

# Relative gates: (numerator id, denominator id, minimum ops/s ratio,
# minimum host CPUs to enforce). Unlike the absolute floors these compare
# two arms of the *same* run, so machine speed cancels out — but each
# gate names the core count below which it is warn-skipped rather than
# enforced: thread-scaling ratios need real cores behind the pool (a
# 1-core CI container cannot exhibit an 8-thread speedup), while
# overhead gates like routed-vs-direct hold on any host.
RATIO_GATES = [
    # Parallel cone replay must buy ≥2.5× at wide fanout…
    ("propagation_planned/dense_fanout/parallel/256",
     "propagation_planned/dense_fanout/par_seq/256", 2.5, 8),
    # …and must never cost more than noise at ANY fanout, on any host.
    # Fan 16 falls back below the 256-step partition floor; fan 64
    # partitions but each 66-step cone sits below the 128-step per-task
    # cost floor, so the replay inlines instead of paying pool hand-off
    # (this gate caught the regression that floor fixed — it ran 0.73×
    # when every 66-step cone crossed the pool); fan 256 pools for real.
    # The 1-core thresholds carry heavy slack: on a single-CPU builder
    # identical-code arms swing ±30% run to run, so these are tripwires
    # for the order-of-magnitude dispatch regression, and the honest
    # ≥0.95× claims move to the 8-core tier where noise is observable.
    ("propagation_planned/dense_fanout/parallel/16",
     "propagation_planned/dense_fanout/par_seq/16", 0.95, 8),
    ("propagation_planned/dense_fanout/parallel/16",
     "propagation_planned/dense_fanout/par_seq/16", 0.65, 1),
    ("propagation_planned/dense_fanout/parallel/64",
     "propagation_planned/dense_fanout/par_seq/64", 0.95, 8),
    ("propagation_planned/dense_fanout/parallel/64",
     "propagation_planned/dense_fanout/par_seq/64", 0.9, 1),
    ("propagation_planned/dense_fanout/parallel/256",
     "propagation_planned/dense_fanout/par_seq/256", 0.95, 8),
    ("propagation_planned/dense_fanout/parallel/256",
     "propagation_planned/dense_fanout/par_seq/256", 0.75, 1),
    # A partition of sub-floor cones must take the inline path: the par
    # arm of the dispatch-overhead micro-bench may not pay pool tax
    # (pooled, this shape measured 0.1-0.3×; inline it sits at ~1.0×).
    ("propagation_planned/dispatch_overhead/par/4x4",
     "propagation_planned/dispatch_overhead/seq/4x4", 0.8, 1),
    # Per-root dirty tracking: a structural toggle whose footprint is
    # disjoint from the measured cone must leave its plan alive, so the
    # churn arm runs within 2× of pure cache-hit replay (the old global
    # generation bump recompiled every iteration, ~5-6× slower).
    ("propagation_planned/recompile_churn/toggle_between_sets/64",
     "propagation_planned/dense_fanout/planned/64", 0.5, 1),
    # The cluster router's tax on a pipelined submit (id translation plus
    # the shard-roster read lock) must stay within 15% of hitting the
    # engine directly — enforced everywhere, it measures overhead, not
    # parallel speedup.
    ("server/routed_chain100/pipeline/32",
     "server/loopback_chain100/pipeline/32", 0.85, 1),
    # Runtime subsumption: replaying a plan whose 256 propagators have
    # all proved themselves entailed must beat the never-pruned twin by
    # ≥1.3× — a pure dispatch-avoidance ratio, so it holds on any host
    # (measured ~30× when the skip sits before the infer call).
    ("domains/subsumed_prune/pruned/256",
     "domains/subsumed_prune/unpruned/256", 1.3, 1),
]


def check_ratio_gates(current):
    """Enforce RATIO_GATES against the current run.

    Returns `(failures, skipped)`: the numerator ids of enforced gates
    that failed, and `(gate, reason)` pairs for every gate that was NOT
    enforced this run — because an id was absent or because the host has
    too few CPUs — so the caller can surface them in the end-of-run
    summary instead of letting coverage silently shrink.
    """
    cores = os.cpu_count() or 1
    failures, skipped = [], []
    for num, den, min_ratio, min_cores in RATIO_GATES:
        gate = f"{num} / {den} (need ≥ {min_ratio}x @ {min_cores}+ cores)"
        enforce = cores >= min_cores
        if num not in current or den not in current:
            missing = [i for i in (num, den) if i not in current]
            reason = f"id(s) absent from current run: {', '.join(missing)}"
            print(f"bench-compare: WARN ratio gate skipped, {reason}")
            skipped.append((gate, reason))
            continue
        ratio = current[num] / current[den] if current[den] else float("inf")
        ok = ratio >= min_ratio
        mark = "ok" if ok else ("FAIL" if enforce else "warn")
        suffix = "" if enforce else (
            f" [not enforced: {cores} CPU(s) < {min_cores}]")
        print(f"  [{mark:>4}] {num} / {den}: {ratio:.2f}x "
              f"(need ≥ {min_ratio}x){suffix}")
        if enforce and not ok:
            failures.append(num)
        if not enforce:
            reason = (f"host has {cores} CPU(s), gate needs ≥ {min_cores}; "
                      f"measured {ratio:.2f}x "
                      + ("(would have passed)" if ok else "(would have FAILED)"))
            skipped.append((gate, reason))
    return failures, skipped


def load_current():
    """Merge every BENCH_<bench>.json (except the baseline) into id -> ops/s.

    Throughput is derived from `min_ns` (best sampled iteration), not the
    median: on a loaded single-CPU builder the median of a 5-sample smoke
    run swings ±40% with background load, while the best case — which a
    real regression cannot fake — stays within a few percent.

    Records the benches emit that the baseline schema doesn't know about —
    a missing `min_ns`/`ops_per_sec`, an id-less record from a newer bench
    runner — are warned about and skipped, never a crash: the gate must
    keep working while the bench suite grows ahead of the baseline.
    """
    merged = {}
    for path in sorted(glob.glob(os.path.join(ROOT, "BENCH_*.json"))):
        if os.path.basename(path) == os.path.basename(BASELINE):
            continue
        with open(path) as f:
            doc = json.load(f)
        for r in doc.get("results", []):
            bid = r.get("id")
            if bid is None:
                print(f"bench-compare: WARN {os.path.basename(path)}: "
                      f"skipping record without an 'id': {r}")
                continue
            if r.get("min_ns"):
                ops = 1e9 / r["min_ns"]
            elif r.get("ops_per_sec"):
                ops = r["ops_per_sec"]
            else:
                print(f"bench-compare: WARN {os.path.basename(path)}: {bid} has "
                      f"neither 'min_ns' nor 'ops_per_sec'; skipping")
                continue
            merged[bid] = ops
    return merged


def bench_names():
    """Every [[bench]] target declared by the bench crate, in file order."""
    manifest = os.path.join(ROOT, "crates", "bench", "Cargo.toml")
    with open(manifest) as f:
        text = f.read()
    return re.findall(r'\[\[bench\]\]\s*\nname = "([^"]+)"', text)


def run_smoke_benches():
    """Run every smoke bench fresh, regenerating each BENCH_<name>.json."""
    names = bench_names()
    if not names:
        print("bench-compare: no [[bench]] targets found in crates/bench/Cargo.toml")
        return False
    for name in names:
        print(f"bench-compare: running smoke bench '{name}'")
        proc = subprocess.run(
            ["cargo", "bench", "--offline", "-p", "stem-bench",
             "--bench", name, "--", "--smoke"],
            cwd=ROOT,
        )
        if proc.returncode != 0:
            print(f"bench-compare: bench '{name}' failed (exit {proc.returncode})")
            return False
    return True


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--update", action="store_true", help="rewrite the baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help="run every smoke bench fresh (cargo bench -- --smoke), then "
                         "rewrite the baseline from the regenerated JSONs; combine with "
                         "--merge-min to only lower existing floors")
    ap.add_argument("--merge-min", action="store_true",
                    help="like --update, but keep the elementwise min with any existing "
                         "baseline — run the smoke benches several times with this to "
                         "record a conservative floor that background load cannot dip under")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional ops/s drop (default 0.25)")
    args = ap.parse_args()

    if args.write_baseline:
        if not run_smoke_benches():
            return 1

    current = load_current()
    if not current:
        print("bench-compare: no BENCH_*.json results found — run the smoke benches first")
        return 1

    if args.update or args.merge_min or args.write_baseline:
        if args.merge_min and os.path.exists(BASELINE):
            with open(BASELINE) as f:
                prior = json.load(f)["results"]
            for k, v in prior.items():
                current[k] = min(v, current.get(k, v))
        doc = {
            "comment": "ops/s floor for ci.sh --bench-compare; regenerate with tools/bench_compare.py --update, then tighten with repeated smoke runs + --merge-min",
            "results": {k: round(v, 2) for k, v in sorted(current.items())},
        }
        with open(BASELINE, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"bench-compare: wrote {len(current)} baseline entries to {BASELINE}")
        return 0

    if not os.path.exists(BASELINE):
        print(f"bench-compare: missing {BASELINE} (run with --update to create it)")
        return 1
    with open(BASELINE) as f:
        baseline = json.load(f).get("results", {})

    failures, missing = [], []
    for bid, base_ops in sorted(baseline.items()):
        cur_ops = current.get(bid)
        if cur_ops is None:
            missing.append(bid)
            continue
        ratio = cur_ops / base_ops if base_ops else float("inf")
        mark = "FAIL" if ratio < 1.0 - args.threshold else "ok"
        print(f"  [{mark:>4}] {bid}: {cur_ops:>12.0f} ops/s vs baseline {base_ops:>12.0f} ({ratio:.2f}x)")
        if mark == "FAIL":
            failures.append(bid)
    new_ids = sorted(set(current) - set(baseline))
    for bid in new_ids:
        print(f"  [ new] {bid}: {current[bid]:.0f} ops/s (not in baseline)")
    if new_ids:
        print(f"bench-compare: WARN {len(new_ids)} id(s) not in baseline (pass, "
              f"ungated): {', '.join(new_ids)} — refresh with --update/--merge-min")

    ratio_failures, ratio_skipped = check_ratio_gates(current)

    if ratio_skipped:
        print(f"bench-compare: {len(ratio_skipped)} ratio gate(s) not "
              f"enforced this run:")
        for gate, reason in ratio_skipped:
            print(f"  [skip] {gate} — {reason}")
    if missing:
        print(f"bench-compare: {len(missing)} baseline id(s) absent from current run: {', '.join(missing)}")
    if failures:
        print(f"bench-compare: {len(failures)} regression(s) beyond {args.threshold:.0%}: {', '.join(failures)}")
    if ratio_failures:
        print(f"bench-compare: {len(ratio_failures)} ratio gate(s) failed: {', '.join(ratio_failures)}")
    if failures or missing or ratio_failures:
        return 1
    print(f"bench-compare: {len(baseline)} benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
