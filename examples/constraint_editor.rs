//! A scripted session with the constraint editor's functions (thesis
//! §5.4): walk a network, trace antecedents and consequences, instantiate
//! and remove constraints, assign values, and toggle propagation —
//! everything the Smalltalk editor window offered, as library calls.
//!
//! Run with: `cargo run --example constraint_editor`

use stem::core::kinds::{Equality, Functional, Predicate};
use stem::core::{Justification, Network, NetworkInspector, Value};

fn main() {
    // A small delay-budget network: two stage delays, their sum, a spec.
    let mut net = Network::new();
    let stage1 = net.add_variable("stage1.delay");
    let stage2 = net.add_variable("stage2.delay");
    let total = net.add_variable("total.delay");
    let mirror = net.add_variable("report.delay");
    net.add_constraint(Functional::uni_addition(), [stage1, stage2, total])
        .unwrap();
    net.add_constraint(Equality::new(), [total, mirror])
        .unwrap();
    let spec = net
        .add_constraint(Predicate::le_const(Value::Float(10.0)), [total])
        .unwrap();

    net.set(stage1, Value::Float(4.0), Justification::User)
        .unwrap();
    net.set(stage2, Value::Float(5.0), Justification::User)
        .unwrap();

    println!("── walk through the network (the editor's list panes):\n");
    let insp = NetworkInspector::new(&net);
    print!("{}", insp.dump());

    println!("\n── \"trace all antecedents of a variable value\":\n");
    print!("{}", insp.trace_antecedents(mirror));

    println!("\n── \"trace all consequences of a variable\":\n");
    print!("{}", insp.trace_consequences(stage1));

    // Make value assignments through the editor.
    println!("\n── assign stage2 := 7 (would break the 10 ns spec):");
    match net.set(stage2, Value::Float(7.0), Justification::User) {
        Err(v) => println!("   violation reported and state restored: {v}"),
        Ok(()) => unreachable!(),
    }
    println!("   stage2 is still {}", net.value(stage2));

    // "Turn off or on constraint propagation in the system."
    println!("\n── disable propagation (CPSwitch), make the edit anyway:");
    net.set_propagation_enabled(false);
    net.set(stage2, Value::Float(7.0), Justification::User)
        .unwrap();
    println!("   stage2 = {} with checking deferred", net.value(stage2));
    net.set_propagation_enabled(true);
    for v in net.check_all() {
        println!("   recovery sweep finds: {v}");
    }

    // "Instantiate or remove a constraint … through the constraint editor."
    println!("\n── remove the violated spec constraint and re-propagate:");
    net.remove_constraint(spec);
    net.set(stage2, Value::Float(7.0), Justification::User)
        .unwrap();
    println!(
        "   total recomputed to {}; violations now: {}",
        net.value(total),
        if net.check_all().is_empty() {
            "none"
        } else {
            "some"
        }
    );

    println!("\n── relax instead: new spec ≤ 12 ns over the same variable:");
    let relaxed = net
        .add_constraint(Predicate::le_const(Value::Float(12.0)), [total])
        .unwrap();
    println!("   installed {relaxed}; network says:");
    // Recompute the (stale) sum by re-asserting an input.
    net.set(stage1, Value::Float(4.0), Justification::User)
        .unwrap();
    net.set(stage2, Value::Float(7.0), Justification::User)
        .unwrap();
    let insp = NetworkInspector::new(&net);
    print!("{}", insp.violations());

    // Per-constraint disable — the finer control of §9.3.
    println!("── disable just the relaxed spec (§9.3 extension):");
    net.set_constraint_enabled(relaxed, false);
    net.set(stage2, Value::Float(20.0), Justification::User)
        .unwrap();
    println!(
        "   stage2 = {} accepted while the spec sleeps; total = {}",
        net.value(stage2),
        net.value(total)
    );
    net.set_constraint_enabled(relaxed, true);
    println!(
        "   re-enabled: check_all reports {} violation(s)",
        net.check_all().len()
    );
}
