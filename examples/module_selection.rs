//! Module selection — thesis Fig. 8.1.
//!
//! An ALU contains a *generic* 8-bit adder instance. Depending on the
//! design constraints of the ALU, module selection picks a different
//! realisation: a tight area spec selects the ripple-carry adder
//! (`ADD8.RC`), a tight delay spec selects the carry-select adder
//! (`ADD8.CS`).
//!
//! Run with: `cargo run --example module_selection`

use stem::cells::{alu_fixture, CellKit, ADDER_UNIT_WIDTH};
use stem::geom::{Point, Rect};
use stem::modsel::{select_realizations, SelectionOptions};

fn scenario(name: &str, delay_spec_d: f64, adder_area_tenths: i64) {
    let mut kit = CellKit::new();
    let fx = alu_fixture(&mut kit);
    println!("\n── scenario: {name}");
    println!(
        "   ALU delay spec ≤ {delay_spec_d} D, adder area budget {}.{} A",
        adder_area_tenths / 10,
        adder_area_tenths % 10
    );

    kit.analyzer
        .constrain_max(&mut kit.design, fx.alu, "in", "out", delay_spec_d)
        .unwrap();
    let t = kit.design.instance_transform(fx.adder_inst);
    let budget = Rect::with_extent(
        t.apply(Point::ORIGIN),
        ADDER_UNIT_WIDTH * adder_area_tenths / 10,
        20,
    );
    kit.design
        .set_instance_bounding_box(fx.adder_inst, budget)
        .unwrap();

    let out = select_realizations(
        &mut kit.design,
        &mut kit.analyzer,
        fx.adder_inst,
        &SelectionOptions::default(),
    )
    .unwrap();

    print!("   valid realisations:");
    if out.valid.is_empty() {
        print!(" (none)");
    }
    for c in &out.valid {
        print!(" {}", kit.design.class_name(*c));
    }
    println!();
    println!(
        "   search effort: {} candidates tested, {} property tests, {} subtrees pruned",
        out.stats.candidates_tested, out.stats.property_tests, out.stats.pruned_subtrees
    );
}

fn main() {
    println!("Fig. 8.1 — ADD8 has two subclasses:");
    println!("  ADD8.RC  delay 8D, area 1.0A  (ripple carry)");
    println!("  ADD8.CS  delay 5D, area 2.2A  (carry select)");
    println!("The ALU adds 3D of logic-unit delay and 2A of area in front.");

    // Fig. 8.1(b): tight area spec → ripple carry.
    scenario("tight area (Fig. 8.1b)", 11.0, 12);
    // Fig. 8.1(c): tight delay spec → carry select.
    scenario("tight delay (Fig. 8.1c)", 8.0, 22);
    // Relaxed: both qualify; "a more intelligent module selection
    // algorithm is necessary to differentiate relative merits" (§8.3).
    scenario("relaxed specs", 11.0, 22);
    // Impossible: neither fits.
    scenario("impossible specs", 8.0, 12);
}
