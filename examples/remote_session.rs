//! Remote sessions: the STEM engine behind a TCP socket.
//!
//! Demonstrates `stem-server` (DESIGN.md §5g): a [`stem::server::Server`]
//! wraps an engine behind the in-tree binary protocol, and a
//! [`stem::server::Client`] drives it like a local engine — session
//! open, transactional batches, value and justification queries,
//! violation traces — with explicit pipelining: many batches in flight
//! on one connection, replies collected in order.
//!
//! Run with: `cargo run --example remote_session`

use stem::core::{Value, VarId};
use stem::engine::{BatchError, Command, ConstraintSpec, Engine, Source};
use stem::server::{Client, Server};

fn set(ix: usize, v: i64) -> Command {
    Command::Set {
        var: VarId::from_index(ix),
        value: Value::Int(v),
        source: Source::User,
    }
}

fn main() {
    // Spawn the service on an ephemeral loopback port. In a deployment
    // this is its own process (possibly on a durable engine — any engine
    // works: volatile, durable, or a read-only replica).
    let server = Server::spawn(Engine::new(2), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    println!("stem-server listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");

    // A design fragment: sum = a + b, with a ceiling on the sum.
    let session = client.open().expect("open session");
    println!("opened remote session {session}");
    client
        .apply(
            session,
            &[
                Command::AddVariable { name: "a".into() },
                Command::AddVariable { name: "b".into() },
                Command::AddVariable { name: "sum".into() },
                Command::AddConstraint {
                    spec: ConstraintSpec::Sum,
                    args: vec![
                        VarId::from_index(0),
                        VarId::from_index(1),
                        VarId::from_index(2),
                    ],
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::LeConst(Value::Int(100)),
                    args: vec![VarId::from_index(2)],
                },
            ],
        )
        .expect("transport")
        .expect("skeleton applies");

    // ------------------------------------------------------------------
    // Pipelining: queue a burst of batches without waiting, then drain.
    // Replies come back in submission order — one reply per batch.
    // ------------------------------------------------------------------
    for i in 0..10 {
        client
            .submit(session, &[set(0, i), set(1, 10 * i)])
            .expect("queue batch");
    }
    let results = client.drain().expect("drain pipeline");
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!("pipelined 10 batches on one connection: {ok} committed");

    // Query values and provenance over the wire.
    let sum = client
        .value(session, VarId::from_index(2))
        .expect("transport")
        .expect("sum is set");
    println!("sum = {sum}");
    for (name, value, just) in client.dump(session).expect("dump") {
        println!("  {name} = {value}  ({just})");
    }

    // A violating batch rolls back atomically and reports the trace.
    match client
        .apply(session, &[set(0, 70), set(1, 70)])
        .expect("transport")
    {
        Err(BatchError::Violation { index, violation }) => {
            println!("command {index} refused: {violation}");
        }
        other => panic!("ceiling should have fired, got {other:?}"),
    }
    let violations = client.violations(session).expect("check");
    println!(
        "after rollback the session is consistent again ({} violations)",
        violations.len()
    );
    assert_eq!(
        client
            .value(session, VarId::from_index(2))
            .expect("transport")
            .expect("sum survives"),
        Value::Int(99),
        "rolled-back batch must leave the last committed state"
    );

    // Server-side counters, fetched remotely.
    let stats = client.stats().expect("stats");
    println!(
        "engine served {} batches ({} ok) across the socket",
        stats.batches, stats.batches_ok
    );

    // A clean shutdown: the client asks, the server acknowledges and
    // stops accepting; `wait()` unblocks whoever is hosting the server.
    client.shutdown_server().expect("shutdown");
    server.wait();
    println!("server shut down on request");
}
