//! Timing closure across both engines: the delay analyzer's worst-case
//! estimate (thesis ch. 7) determines the minimum clock period, and the
//! event-driven simulator's setup checker (the ch. 6 external-tool
//! substitute) confirms it — with waveforms rendered the way the thesis's
//! SpicePlot window did.
//!
//! Run with: `cargo run --example timing_closure`

use stem::cells::{CellKit, DFF_SETUP_NS};
use stem::sim::{drive_bus, flatten, read_bus, render_waveforms, write_vcd, Level};

fn main() {
    let mut kit = CellKit::new();
    let acc = kit.accumulator("ACC4", 4);

    // Static timing: the worst register-to-register path.
    let add = kit.design.class_by_name("ACC4_ADD").unwrap();
    let comb = kit
        .analyzer
        .delay(&mut kit.design, add, "a0", "s3")
        .unwrap()
        .unwrap();
    let clk_to_q = 2.0;
    let min_period = clk_to_q + comb + DFF_SETUP_NS;
    println!("static timing (delay analyzer):");
    println!("  clk→q {clk_to_q} ns + adder {comb} ns + setup {DFF_SETUP_NS} ns");
    println!("  minimum clock period: {min_period:.1} ns\n");

    // Dynamic confirmation: run the accumulator at 2× the bound.
    let flat = flatten(&kit.design, &kit.primitives, acc).unwrap();
    let mut sim = stem::sim::Simulator::new(flat);
    let clk = sim.port("clk").unwrap();
    let acc0 = sim.port("acc0").unwrap();
    let acc1 = sim.port("acc1").unwrap();
    sim.record(clk);
    sim.record(acc0);
    sim.record(acc1);
    sim.drive(clk, Level::L0, 0);
    sim.run_to_quiescence().unwrap();
    let t0 = sim.time() + 1;
    for i in 0..4 {
        let q = sim
            .netlist()
            .ports
            .get(&format!("acc{i}"))
            .copied()
            .unwrap();
        sim.drive(q, Level::L0, t0);
    }
    sim.run_to_quiescence().unwrap();
    let t = sim.time() + 1;
    drive_bus(&mut sim, "in", 4, 1, t);
    sim.run_to_quiescence().unwrap();

    let period = (min_period * 2.0 * 1000.0) as u64;
    let start = sim.time() + 1000;
    for cycle in 0..3u64 {
        sim.drive(clk, Level::L1, start + cycle * period);
        sim.drive(clk, Level::L0, start + cycle * period + period / 2);
    }
    sim.run_to_quiescence().unwrap();
    println!(
        "simulated 3 cycles at {:.1} ns: accumulator = {:?}, setup violations = {}",
        period as f64 / 1000.0,
        read_bus(&sim, "acc", 4),
        sim.timing_violations().len()
    );

    println!("\nwaveforms (SpicePlot-style):");
    print!(
        "{}",
        render_waveforms(
            &sim,
            &[("clk", clk), ("acc0", acc0), ("acc1", acc1)],
            start.saturating_sub(2000),
            sim.time(),
            64,
        )
    );

    println!("\nfirst lines of the VCD dump for external viewers:");
    for line in write_vcd(&sim, &[("clk", clk), ("acc0", acc0), ("acc1", acc1)])
        .lines()
        .take(10)
    {
        println!("  | {line}");
    }

    // And the failure mode: clock inside the setup window of a toggling d.
    println!("\ndriving a bare flip-flop with data 0.1 ns before the edge:");
    let dff = kit.gates.dff;
    let flat = flatten(&kit.design, &kit.primitives, dff).unwrap();
    let mut sim = stem::sim::Simulator::new(flat);
    let (d, c, q) = (
        sim.port("d").unwrap(),
        sim.port("clk").unwrap(),
        sim.port("q").unwrap(),
    );
    sim.drive(c, Level::L0, 0);
    sim.drive(d, Level::L0, 0);
    sim.run_to_quiescence().unwrap();
    let edge = sim.time() + 2000;
    sim.drive(d, Level::L1, edge - 100);
    sim.drive(c, Level::L1, edge);
    sim.run_to_quiescence().unwrap();
    println!("  q = {} (metastable)", sim.value(q));
    for v in sim.timing_violations() {
        println!(
            "  violation: {} sampled data only {} ps old (needs {} ps)",
            v.element, v.data_age, v.required
        );
    }
}
