//! Durable sessions: kill the engine, reopen the directory, keep working.
//!
//! Demonstrates `stem-persist` (DESIGN.md §5f): an engine rooted on a
//! directory appends every committed batch to a write-ahead log before
//! acknowledging it, checkpoints compact the log into a snapshot, and
//! `Engine::open` rebuilds every session — values, justifications,
//! constraints, violation state — exactly as of the last acknowledged
//! commit.
//!
//! Run with: `cargo run --example durable_session`

use stem::core::{ConstraintId, Value, VarId};
use stem::engine::{
    Command, ConstraintSpec, Durability, DurabilityOptions, Engine, Output, Source,
};

fn main() {
    let dir = std::env::temp_dir().join(format!("stem-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ------------------------------------------------------------------
    // Lifetime 1: build a design session on a durable engine.
    // ------------------------------------------------------------------
    let session;
    {
        // Engine::open defaults to commit-sync: an acknowledged batch is
        // on disk. (IntervalSync trades a bounded loss window for group
        // commit; see DurabilityOptions.)
        let engine = Engine::open(&dir).expect("open durable engine");
        println!("durability: {:?}", engine.durability());

        session = engine.create_session();
        engine
            .apply(
                session,
                vec![
                    Command::AddVariable { name: "a".into() },
                    Command::AddVariable { name: "b".into() },
                    Command::AddVariable { name: "sum".into() },
                ],
            )
            .unwrap();
        engine
            .apply(
                session,
                vec![Command::AddConstraint {
                    spec: ConstraintSpec::Sum,
                    args: vec![
                        VarId::from_index(0),
                        VarId::from_index(1),
                        VarId::from_index(2),
                    ],
                }],
            )
            .unwrap();
        engine
            .apply(
                session,
                vec![
                    Command::Set {
                        var: VarId::from_index(0),
                        value: Value::Int(2),
                        source: Source::User,
                    },
                    Command::Set {
                        var: VarId::from_index(1),
                        value: Value::Int(3),
                        source: Source::User,
                    },
                ],
            )
            .unwrap();

        let stats = engine.stats();
        println!(
            "lifetime 1: {} WAL appends, {} WAL bytes — then the process \"dies\"",
            stats.wal_appends, stats.wal_bytes
        );
        // No graceful shutdown: the engine is dropped mid-flight. Every
        // acknowledged batch is already in the log.
    }

    // ------------------------------------------------------------------
    // Lifetime 2: reopen the directory — the session is back.
    // ------------------------------------------------------------------
    {
        let engine = Engine::open(&dir).expect("recover");
        let dump = match engine
            .apply(session, vec![Command::DumpValues])
            .unwrap()
            .outputs
            .remove(0)
        {
            Output::Dump(d) => d,
            other => panic!("expected dump, got {other:?}"),
        };
        println!("recovered session {session}:");
        for (name, value, just) in &dump {
            println!("  {name} = {value}  ({just})");
        }
        assert_eq!(dump[2].1, Value::Int(5), "sum survived the crash");
        println!("recoveries: {}", engine.stats().recoveries);

        // The recovered network is fully live: propagation still runs.
        engine
            .apply(
                session,
                vec![Command::Set {
                    var: VarId::from_index(0),
                    value: Value::Int(10),
                    source: Source::User,
                }],
            )
            .unwrap();

        // A checkpoint folds the log into a snapshot so the next recovery
        // replays (almost) nothing.
        engine.checkpoint().expect("checkpoint");
        println!("snapshots written: {}", engine.stats().snapshots_written);
        engine.shutdown();
    }

    // ------------------------------------------------------------------
    // Lifetime 3: recovery from snapshot + tail; structure edits too.
    // ------------------------------------------------------------------
    {
        let engine = Engine::open_with_config(
            &dir,
            stem::engine::EngineConfig::default(),
            DurabilityOptions {
                mode: Durability::IntervalSync {
                    interval: std::time::Duration::from_millis(25),
                },
                ..DurabilityOptions::default()
            },
        )
        .expect("recover from snapshot");
        engine
            .apply(
                session,
                vec![Command::RemoveConstraint {
                    constraint: ConstraintId::from_index(0),
                }],
            )
            .unwrap();
        let sum = match engine
            .apply(
                session,
                vec![Command::Get {
                    var: VarId::from_index(2),
                }],
            )
            .unwrap()
            .outputs
            .remove(0)
        {
            Output::Value(v) => v,
            other => panic!("expected value, got {other:?}"),
        };
        println!("after removing the constraint, sum = {sum} (erased)");
        engine.shutdown(); // clean shutdown syncs deferred writes
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("done");
}
