//! Quickstart: the constraint-propagation core in five minutes.
//!
//! Reproduces the propagation walk-through of thesis Fig. 4.5, a cyclic
//! violation (Fig. 4.9), and a dependency-analysis trace (§4.2.4).
//!
//! Run with: `cargo run --example quickstart`

use stem::core::kinds::{Equality, Functional, Predicate};
use stem::core::{Justification, Network, NetworkInspector, Value};

fn main() {
    // ------------------------------------------------------------------
    // Fig. 4.5: V1 = V2, V4 = max(V2, V3).
    // ------------------------------------------------------------------
    let mut net = Network::new();
    let v1 = net.add_variable("V1");
    let v2 = net.add_variable("V2");
    let v3 = net.add_variable("V3");
    let v4 = net.add_variable("V4");
    net.add_constraint(Equality::new(), [v1, v2]).unwrap();
    net.add_constraint(Functional::uni_maximum(), [v2, v3, v4])
        .unwrap();

    net.set(v3, Value::Int(7), Justification::User).unwrap();
    net.set(v1, Value::Int(7), Justification::User).unwrap();
    println!("initial state (all satisfy their constraints):");
    let insp = NetworkInspector::new(&net);
    print!("{}", insp.dump());

    println!("\nuser sets V1 := 9 — propagation floods the network:");
    net.set(v1, Value::Int(9), Justification::User).unwrap();
    println!(
        "  V2 = {}  (through the equality constraint)",
        net.value(v2)
    );
    println!("  V4 = {}  (max of V2=9 and V3=7)", net.value(v4));

    // Every propagated value is justified; walk its antecedents.
    println!("\ndependency analysis — why does V4 hold 9?");
    let insp = NetworkInspector::new(&net);
    print!("{}", insp.trace_antecedents(v4));

    // ------------------------------------------------------------------
    // Fig. 4.9: an unsatisfiable cycle.
    // ------------------------------------------------------------------
    println!("\ncyclic network: V2 = V1+1, V3 = V2+3, V1 = V3+2");
    let mut cyc = Network::new();
    let c1 = cyc.add_variable("V1");
    let c2 = cyc.add_variable("V2");
    let c3 = cyc.add_variable("V3");
    let plus = |k: i64| {
        Functional::custom("plusConst", move |vals| {
            vals[0].as_i64().map(|x| Value::Int(x + k))
        })
    };
    cyc.add_constraint(plus(1), [c1, c2]).unwrap();
    cyc.add_constraint(plus(3), [c2, c3]).unwrap();
    cyc.add_constraint(plus(2), [c3, c1]).unwrap();
    match cyc.set(c1, Value::Int(10), Justification::User) {
        Err(v) => println!("  rejected, as it must be: {v}"),
        Ok(()) => unreachable!("the cycle cannot be satisfied"),
    }
    println!(
        "  after restoration: V1={} V2={} V3={}",
        cyc.value(c1),
        cyc.value(c2),
        cyc.value(c3)
    );

    // ------------------------------------------------------------------
    // Specifications as predicates: validity feedback (§5.2).
    // ------------------------------------------------------------------
    println!("\na delay specification: delay <= 120");
    let mut spec = Network::new();
    let delay = spec.add_variable("delay");
    spec.add_constraint(Predicate::le_const(Value::Float(120.0)), [delay])
        .unwrap();
    assert!(spec
        .set(delay, Value::Float(100.0), Justification::Application)
        .is_ok());
    println!("  100 ns accepted");
    match spec.set(delay, Value::Float(130.0), Justification::Application) {
        Err(v) => println!("  130 ns rejected: {v}"),
        Ok(()) => unreachable!(),
    }
    println!("  value after rejection: {} (restored)", spec.value(delay));
}
