//! Tool integration and consistency maintenance — thesis ch. 6.
//!
//! Builds a 4-bit ripple-carry adder from gate-level full adders, compiles
//! a tiled row with the module compilers through lazily recalculated
//! compiler views (Fig. 6.2), then runs the external-analysis round trip
//! of Fig. 6.3: extract a SPICE-like deck, simulate, read results back,
//! and watch the session go stale when the netlist is edited.
//!
//! Run with: `cargo run --example tool_integration`

use stem::cells::CellKit;
use stem::compilers::{CompilerView, VectorCompiler};
use stem::design::ChangeKey;
use stem::sim::{Level, SimSession};

fn main() {
    let mut kit = CellKit::new();

    // ------------------------------------------------------------------
    // A structural 4-bit adder from full-adder slices.
    // ------------------------------------------------------------------
    let rca = kit.ripple_carry_adder("RCA4", 4);
    println!(
        "built RCA4: {} subcells, {} nets",
        kit.design.subcells(rca).len(),
        kit.design.nets_of(rca).len()
    );

    // ------------------------------------------------------------------
    // Module compilers + lazy views (Fig. 6.2): tile the full adder.
    // ------------------------------------------------------------------
    let fa = kit.design.class_by_name("RCA4_FA").unwrap();
    let view = CompilerView::new(&mut kit.design, fa);
    let row = kit.design.define_class("FA_ROW8");
    let built = VectorCompiler::new(fa, 8)
        .compile(&mut kit.design, row)
        .unwrap();
    println!(
        "compiled FA_ROW8: {} instances, {} nets, {} exported io-signals",
        built.instances.len(),
        built.nets.len(),
        built.exported.len()
    );
    let data = view.data(&mut kit.design).unwrap();
    println!(
        "compiler view of the slice: bbox {} with {}/{}/{}/{} pins on T/B/L/R (recalculated {}×)",
        data.bbox,
        data.pins.top.len(),
        data.pins.bottom.len(),
        data.pins.left.len(),
        data.pins.right.len(),
        view.recalc_count()
    );
    // A layout-only change erases the view; the next read recalculates.
    kit.design.notify_changed(fa, ChangeKey::Layout);
    view.data(&mut kit.design).unwrap();
    println!(
        "after a layout change the view recalculated: {}×",
        view.recalc_count()
    );

    // ------------------------------------------------------------------
    // The external-tool round trip (Fig. 6.3).
    // ------------------------------------------------------------------
    let session = SimSession::open(&mut kit.design, &kit.primitives, rca).unwrap();
    println!(
        "\nextracted deck for RCA4 ({} element cards); first lines:",
        session.deck().n_cards()
    );
    for line in session.deck().text.lines().take(6) {
        println!("  | {line}");
    }

    // "Run spice": 7 + 9 = 16 on the simulated silicon.
    let mut sim = session.simulator();
    let (a, b) = (7u64, 9u64);
    for i in 0..4 {
        let pa = sim.port(&format!("a{i}")).unwrap();
        let pb = sim.port(&format!("b{i}")).unwrap();
        sim.drive(pa, Level::from_bool(a >> i & 1 == 1), 0);
        sim.drive(pb, Level::from_bool(b >> i & 1 == 1), 0);
    }
    sim.drive(sim.port("cin").unwrap(), Level::L0, 0);
    let end = sim.run_to_quiescence().unwrap();
    let mut s = 0u64;
    for i in 0..4 {
        if sim.value(sim.port(&format!("s{i}")).unwrap()) == Level::L1 {
            s |= 1 << i;
        }
    }
    let cout = sim.value(sim.port("cout").unwrap()) == Level::L1;
    println!("\nsimulated {a} + {b} = {s} carry {cout} (quiescent after {end} ps)");

    // Editing the netlist outdates the session, like the thesis's window
    // labels.
    println!("\nsession outdated? {}", session.is_outdated());
    let net = kit.design.nets_of(rca)[0];
    let (inst, sig) = kit.design.net_connections(net)[0].clone();
    kit.design.disconnect(net, inst, &sig).unwrap();
    println!(
        "after disconnecting a pin: outdated? {}",
        session.is_outdated()
    );
    kit.design.connect(net, inst, &sig).unwrap();
    let mut session = session;
    session.refresh(&mut kit.design, &kit.primitives).unwrap();
    println!("after refresh: outdated? {}", session.is_outdated());
    session.close(&mut kit.design);

    // ------------------------------------------------------------------
    // Delay checking agrees with the simulated timing order.
    // ------------------------------------------------------------------
    let est = kit
        .analyzer
        .delay(&mut kit.design, rca, "cin", "cout")
        .unwrap()
        .unwrap();
    println!("\nanalyzer worst-case cin→cout estimate: {est:.1} ns");
}
