//! Engine sessions: the concurrent multi-session propagation service.
//!
//! Demonstrates `stem-engine` (DESIGN.md §5c): independent design
//! sessions sharded across a worker pool, transactional batches that
//! either commit atomically or roll back on violation, backpressure,
//! step budgets, and engine-level statistics.
//!
//! Run with: `cargo run --example engine_sessions`

use stem::core::{Value, VarId};
use stem::engine::{BatchError, Command, ConstraintSpec, Engine, EngineConfig, Source};

fn main() {
    // ------------------------------------------------------------------
    // An engine with 4 workers; sessions are sharded session_id % 4.
    // ------------------------------------------------------------------
    let engine = Engine::with_config(EngineConfig {
        workers: 4,
        queue_capacity: 64,
        step_budget: Some(10_000),
        ..EngineConfig::default()
    });

    // Two independent design sessions — different networks, possibly
    // different workers, never blocking one another.
    let alice = engine.create_session();
    let bob = engine.create_session();
    println!(
        "sessions: {alice} and {bob} on {} workers",
        engine.workers()
    );

    // ------------------------------------------------------------------
    // A structural batch builds alice's network atomically: ids are
    // allocated sequentially, so the batch can reference the variables
    // it creates (v0, v1) in the constraint it adds.
    // ------------------------------------------------------------------
    let (width, height) = (VarId::from_index(0), VarId::from_index(1));
    engine
        .apply(
            alice,
            vec![
                Command::AddVariable {
                    name: "width".into(),
                },
                Command::AddVariable {
                    name: "height".into(),
                },
                Command::AddConstraint {
                    spec: ConstraintSpec::Equality,
                    args: vec![width, height],
                },
                Command::Set {
                    var: width,
                    value: Value::Int(40),
                    source: Source::User,
                },
            ],
        )
        .unwrap();
    let out = engine
        .apply(alice, vec![Command::Get { var: height }])
        .unwrap();
    println!(
        "alice: width := 40 propagated, height = {:?}",
        out.outputs[0]
    );

    // Bob's session is untouched by any of that — it is a different
    // network entirely.
    let out = engine
        .apply(
            bob,
            vec![
                Command::AddVariable {
                    name: "area".into(),
                },
                Command::Set {
                    var: VarId::from_index(0),
                    value: Value::Int(800),
                    source: Source::Application,
                },
            ],
        )
        .unwrap();
    println!(
        "bob:   independent network, {} propagation wave(s)",
        out.waves
    );

    // ------------------------------------------------------------------
    // Rollback: a batch that ends in a violation leaves no trace. The
    // equality constraint protects alice's user-justified width=40, so
    // setting height to a conflicting value violates — and the earlier
    // commands of the *same batch* are rolled back with it.
    // ------------------------------------------------------------------
    let err = engine
        .apply(
            alice,
            vec![
                Command::AddVariable {
                    name: "junk".into(),
                },
                Command::Set {
                    var: height,
                    value: Value::Int(99),
                    source: Source::Application,
                },
            ],
        )
        .unwrap_err();
    match err {
        BatchError::Violation { index, violation } => {
            println!("alice: batch violated at command {index}: {violation}");
        }
        other => println!("alice: unexpected error {other}"),
    }
    let out = engine.apply(alice, vec![Command::DumpValues]).unwrap();
    println!(
        "alice: after rollback the network is unchanged: {:?}",
        out.outputs[0]
    );

    // ------------------------------------------------------------------
    // Engine statistics aggregate across all sessions and workers.
    // ------------------------------------------------------------------
    let stats = engine.stats();
    println!(
        "stats: {} batches ({} ok), {} violations, {} rollbacks, {} assignments",
        stats.batches, stats.batches_ok, stats.violations, stats.rollbacks, stats.assignments
    );

    engine.shutdown();
}
