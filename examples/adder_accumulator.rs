//! The ADDER / ACCUMULATOR story of thesis §5.1 — hierarchical constraint
//! propagation supporting a least-commitment design flow.
//!
//! A designer specifies an 8-bit ADDER with a "120 ns or less" delay spec,
//! uses it (together with a REGISTER) inside an ACCUMULATOR with a
//! "160 ns or less" overall spec, and then refines component
//! characteristics bottom-up. Characteristics propagate up the hierarchy
//! and are checked against specifications at every level, as soon as they
//! become available.
//!
//! Run with: `cargo run --example adder_accumulator`

use stem::checking::{DelayAnalyzer, ElectricalParams};
use stem::design::{Design, SignalDir};
use stem::geom::Transform;

fn main() {
    let mut d = Design::new();
    let mut an = DelayAnalyzer::new();

    // ------------------------------------------------------------------
    // Top-down: interfaces and specifications first (least commitment —
    // no internal structures are designed yet).
    // ------------------------------------------------------------------
    let adder = d.define_class("ADDER");
    d.add_signal(adder, "a", SignalDir::Input);
    d.add_signal(adder, "sum", SignalDir::Output);
    d.set_signal_bit_width(adder, "a", 8).unwrap();
    d.set_signal_bit_width(adder, "sum", 8).unwrap();
    an.declare_delay(&mut d, adder, "a", "sum");
    an.constrain_max(&mut d, adder, "a", "sum", 120.0).unwrap();
    an.set_electrical(
        adder,
        "sum",
        ElectricalParams {
            out_resistance: 1.0,
            ..Default::default()
        },
    );
    println!("ADDER declared with spec: delay(a→sum) ≤ 120 ns");

    let register = d.define_class("REGISTER");
    d.add_signal(register, "d", SignalDir::Input);
    d.add_signal(register, "q", SignalDir::Output);
    d.set_signal_bit_width(register, "d", 8).unwrap();
    d.set_signal_bit_width(register, "q", 8).unwrap();
    an.declare_delay(&mut d, register, "d", "q");

    let obuf = d.define_class("OBUF");
    d.add_signal(obuf, "in", SignalDir::Input);
    d.add_signal(obuf, "out", SignalDir::Output);
    d.set_signal_bit_width(obuf, "in", 8).unwrap();
    d.set_signal_bit_width(obuf, "out", 8).unwrap();
    an.declare_delay(&mut d, obuf, "in", "out");
    an.set_estimate(&mut d, obuf, "in", "out", 0.0).unwrap();
    an.set_electrical(
        obuf,
        "in",
        ElectricalParams {
            in_capacitance: 10.0, // 1 kΩ × 10 pF = 10 ns of loading
            ..Default::default()
        },
    );

    // The ACCUMULATOR: REGISTER → ADDER → output buffer.
    let acc = d.define_class("ACCUMULATOR");
    d.add_signal(acc, "in", SignalDir::Input);
    d.add_signal(acc, "out", SignalDir::Output);
    an.declare_delay(&mut d, acc, "in", "out");
    an.constrain_max(&mut d, acc, "in", "out", 160.0).unwrap();
    println!("ACCUMULATOR declared with spec: delay(in→out) ≤ 160 ns");

    let reg = d
        .instantiate(register, acc, "reg", Transform::IDENTITY)
        .unwrap();
    let add = d
        .instantiate(adder, acc, "add", Transform::IDENTITY)
        .unwrap();
    let buf = d
        .instantiate(obuf, acc, "buf", Transform::IDENTITY)
        .unwrap();
    let n_in = d.add_net(acc, "n_in");
    d.connect_io(n_in, "in").unwrap();
    d.connect(n_in, reg, "d").unwrap();
    let n_mid = d.add_net(acc, "n_mid");
    d.connect(n_mid, reg, "q").unwrap();
    d.connect(n_mid, add, "a").unwrap();
    let n_sum = d.add_net(acc, "n_sum");
    d.connect(n_sum, add, "sum").unwrap();
    d.connect(n_sum, buf, "in").unwrap();
    let n_out = d.add_net(acc, "n_out");
    d.connect(n_out, buf, "out").unwrap();
    d.connect_io(n_out, "out").unwrap();

    // ------------------------------------------------------------------
    // Bottom-up: characteristics arrive and propagate up the hierarchy.
    // ------------------------------------------------------------------
    println!("\nregister characterised at 60 ns; adder still unknown:");
    an.set_estimate(&mut d, register, "d", "q", 60.0).unwrap();
    let total = an.delay(&mut d, acc, "in", "out").unwrap();
    println!("  accumulator delay: {total:?} (incomplete — adder missing)");

    println!("\nadder characterised at 100 ns (+10 ns output loading):");
    match an.set_estimate(&mut d, adder, "a", "sum", 100.0) {
        Err(v) => {
            println!("  the moment the characteristic becomes available, hierarchical");
            println!("  propagation checks it against the ACCUMULATOR spec: {v}");
            println!("  60 + (100 + 10) = 170 ns > 160 ns — and the value is rolled back.");
        }
        Ok(()) => unreachable!("170 ns cannot satisfy the 160 ns spec"),
    }

    // Least commitment: the spec constrains only the *sum* — a faster
    // register relaxes the adder's implicit budget.
    println!("\na faster register (45 ns) relaxes the adder's implicit budget:");
    an.clear_estimate(&mut d, register, "d", "q");
    an.set_estimate(&mut d, register, "d", "q", 45.0).unwrap();
    an.set_estimate(&mut d, adder, "a", "sum", 100.0).unwrap();
    let total = an.delay(&mut d, acc, "in", "out").unwrap().unwrap();
    println!("  the same 100 ns adder is now accepted: 45 + 110 = {total} ns ≤ 160 ns");

    // The adder's own 120 ns spec still constrains its internal design.
    println!("\nre-characterising the adder at 125 ns violates its own spec:");
    an.clear_estimate(&mut d, adder, "a", "sum");
    match an.set_estimate(&mut d, adder, "a", "sum", 125.0) {
        Err(v) => println!("  rejected: {v}"),
        Ok(()) => unreachable!(),
    }
    an.set_estimate(&mut d, adder, "a", "sum", 100.0).unwrap();
    let total = an.delay(&mut d, acc, "in", "out").unwrap().unwrap();
    println!("  final design: adder 100 ns, accumulator {total} ns — all specs met");
}
