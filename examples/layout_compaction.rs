//! The Electric-style satisfaction baseline (thesis §2.1) next to STEM's
//! propagation: the compactor *solves* a standard-cell row placement by
//! longest paths; a STEM predicate network *verifies* it; and the
//! centering relation that linear inequalities cannot express (§2.1.1) is
//! a single functional constraint in STEM.
//!
//! Run with: `cargo run --example layout_compaction`

use stem::compact::{compact_row, RowSpec};
use stem::core::kinds::{Functional, Predicate};
use stem::core::{Justification, Network, Value};

fn main() {
    // ------------------------------------------------------------------
    // Solve: a row of cells with design-rule separations, one alignment.
    // ------------------------------------------------------------------
    let mut spec = RowSpec {
        min_separation: 2,
        ..Default::default()
    };
    let cells = [
        ("inv", 6i64),
        ("nand", 8),
        ("ff", 12),
        ("nand2", 8),
        ("buf", 6),
    ];
    for (name, w) in cells {
        spec.cell(name, w);
    }
    // Routing requires cell 3 to start exactly 40λ past cell 0.
    spec.exact_offsets.push((0, 3, 40));
    let (sol, ids) = compact_row(&spec).unwrap();
    println!("compacted row ({}λ total):", sol.total_extent);
    for (i, (name, w)) in cells.iter().enumerate() {
        println!(
            "  {name:6} x = {:3}  width {w:2}  right edge {:3}",
            sol.position(ids[i]),
            sol.right_edge(ids[i])
        );
    }

    // ------------------------------------------------------------------
    // Verify with STEM propagation: load positions into a predicate
    // network — the division of labour of §7.4.
    // ------------------------------------------------------------------
    let mut net = Network::new();
    let xs: Vec<_> = cells
        .iter()
        .map(|(n, _)| net.add_variable(format!("x_{n}")))
        .collect();
    for i in 0..cells.len() - 1 {
        let gap = cells[i].1 + 2;
        net.add_constraint(
            Predicate::custom("minSep", move |vals| {
                match (vals[0].as_i64(), vals[1].as_i64()) {
                    (Some(a), Some(b)) => b >= a + gap,
                    _ => true,
                }
            }),
            [xs[i], xs[i + 1]],
        )
        .unwrap();
    }
    for (i, &x) in xs.iter().enumerate() {
        net.set(
            x,
            Value::Int(sol.position(ids[i])),
            Justification::Application,
        )
        .unwrap();
    }
    println!(
        "\nSTEM verification of the placement: {}",
        if net.check_all().is_empty() {
            "clean"
        } else {
            "VIOLATED"
        }
    );
    match net.set(
        xs[1],
        Value::Int(sol.position(ids[1]) - 1),
        Justification::User,
    ) {
        Err(v) => println!("nudging 'nand' 1λ left is caught: {v}"),
        Ok(()) => unreachable!(),
    }

    // ------------------------------------------------------------------
    // §2.1.1's limitation, and STEM's answer.
    // ------------------------------------------------------------------
    println!("\ncentering (inexpressible as linear inequalities, §2.1.1):");
    let mut net = Network::new();
    let left = net.add_variable("left");
    let right = net.add_variable("right");
    let mid = net.add_variable("mid");
    net.add_constraint(
        Functional::custom("centerOf", |vals| {
            Some(Value::Int((vals[0].as_i64()? + vals[1].as_i64()?) / 2))
        }),
        [left, right, mid],
    )
    .unwrap();
    net.set(left, Value::Int(0), Justification::User).unwrap();
    net.set(right, Value::Int(100), Justification::User)
        .unwrap();
    println!(
        "  anchors 0 / 100 → centred component at {}",
        net.value(mid)
    );
    net.set(right, Value::Int(60), Justification::User).unwrap();
    println!(
        "  move right anchor to 60 → re-centred at {}",
        net.value(mid)
    );
}
