//! Domain propagation: intervals, finite sets, and the fixpoint protocol.
//!
//! Walks the DESIGN.md §5j subsystem end to end: bounds-consistent
//! narrowing through `x + y = z`, finite-set `all_different`, a domain
//! wipeout rejected and rolled back like any other violation, and
//! runtime subsumption pruning entailed constraints out of the hot path.
//!
//! Run with: `cargo run --example domain_session`

use stem::core::kinds::{AllDiff, DomAdd, DomLe, DomainConstraint};
use stem::core::{FinSet, Interval, Justification, Network, Value};

fn iv(lo: i64, hi: i64) -> Value {
    Value::Interval(Interval::new(lo, hi))
}

fn main() {
    // ------------------------------------------------------------------
    // Bounds-consistent arithmetic: x + y = z over interval domains.
    // ------------------------------------------------------------------
    let mut net = Network::new();
    let x = net.add_variable("x");
    let y = net.add_variable("y");
    let z = net.add_variable("z");
    net.set(x, iv(0, 100), Justification::User).unwrap();
    net.set(y, iv(0, 100), Justification::User).unwrap();
    net.set(z, iv(0, 100), Justification::User).unwrap();
    net.add_constraint(DomainConstraint::new(DomAdd::all()), [x, y, z])
        .unwrap();

    println!("x + y = z, all three seeded to [0, 100]:");
    println!(
        "  x = {}  y = {}  z = {}",
        net.value(x),
        net.value(y),
        net.value(z)
    );

    // Tightening z squeezes both addends; tightening x squeezes z back.
    net.set(z, iv(0, 30), Justification::User).unwrap();
    net.set(x, iv(10, 100), Justification::User).unwrap();
    println!("after z := [0,30], x := [10,100] — the fixpoint narrows everything:");
    println!(
        "  x = {}  y = {}  z = {}",
        net.value(x),
        net.value(y),
        net.value(z)
    );

    // ------------------------------------------------------------------
    // Finite sets: all_different over bit-set domains.
    // ------------------------------------------------------------------
    println!("\nthree slots over the value set {{0,1,2}}, all different:");
    let mut alloc = Network::new();
    let slots: Vec<_> = (0..3)
        .map(|i| {
            let v = alloc.add_variable(format!("slot{i}"));
            alloc
                .set(v, Value::FinSet(FinSet::new(0b111)), Justification::User)
                .unwrap();
            v
        })
        .collect();
    alloc
        .add_constraint(DomainConstraint::new(AllDiff::new()), slots.clone())
        .unwrap();

    // Pinning slot0 removes its value everywhere; pinning slot1 leaves
    // slot2 a singleton by elimination.
    alloc
        .set(
            slots[0],
            Value::FinSet(FinSet::new(0b001)),
            Justification::User,
        )
        .unwrap();
    alloc
        .set(
            slots[1],
            Value::FinSet(FinSet::new(0b010)),
            Justification::User,
        )
        .unwrap();
    for (i, &s) in slots.iter().enumerate() {
        println!("  slot{i} = {}", alloc.value(s));
    }

    // ------------------------------------------------------------------
    // Wipeout: an over-constrained write is a violation, and the journal
    // restores every narrowed domain — same contract as thesis cycles.
    // ------------------------------------------------------------------
    println!("\nforcing z below x's reach empties a domain:");
    match net.set(z, iv(0, 5), Justification::User) {
        Err(v) => println!("  rejected, state restored: {v}"),
        Ok(()) => unreachable!("x ≥ 10 makes z ≤ 5 unsatisfiable"),
    }
    println!(
        "  x = {}  y = {}  z = {}",
        net.value(x),
        net.value(y),
        net.value(z)
    );

    // ------------------------------------------------------------------
    // Runtime subsumption: an entailed inequality proves it can never
    // act again and compiled replays skip it until something widens.
    // ------------------------------------------------------------------
    println!("\na ≤ b with a in [0,10], b in [50,60] — entailed on first contact:");
    let mut sub = Network::new();
    let a = sub.add_variable("a");
    let b = sub.add_variable("b");
    sub.set(a, iv(0, 10), Justification::User).unwrap();
    sub.set(b, iv(50, 60), Justification::User).unwrap();
    sub.add_constraint(DomainConstraint::new(DomLe::directional(0, 0)), [a, b])
        .unwrap();
    sub.set(a, iv(0, 9), Justification::User).unwrap();
    println!("  subsumed constraints: {}", sub.subsumed_count());

    // Widening a watched variable revalidates the mark conservatively.
    sub.set(b, iv(0, 60), Justification::User).unwrap();
    println!("  after b widens to [0,60]: {}", sub.subsumed_count());

    let stats = net.stats();
    println!(
        "\narithmetic network counters: {} tightenings, {} wipeouts, {} subsumed prunes",
        stats.domain_tightenings, stats.wipeouts, stats.subsumed_pruned
    );
}
